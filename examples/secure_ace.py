#!/usr/bin/env python
"""Security walkthrough: SSL channels + KeyNote authorization (Chapter 3).

Builds an SSL+KeyNote ACE, registers users with different credentials, and
shows the Fig. 10 flow: allowed commands succeed, everything else is
denied, and delegation chains (POLICY -> admin -> user) work.

Run:  python examples/secure_ace.py
"""

from repro import ACECmdLine, ACEEnvironment
from repro.core import CallError, SecurityMode
from repro.security.crypto import KeyPair
from repro.security.keynote import Assertion
from repro.services.devices import VCC4CameraDaemon


def main() -> None:
    env = ACEEnvironment(seed=99, security=SecurityMode.SSL_KEYNOTE)
    env.add_infrastructure("infra", with_wss=False, with_idmon=False)
    podium = env.add_workstation("podium", room="hawk")
    camera = env.add_device(VCC4CameraDaemon, "camera", podium, room="hawk")

    # The installation administrator: POLICY trusts this key for the ACE.
    admin = env.admin_keypair()

    # Alice may view (getState) and power the camera; Bob may only view.
    alice = KeyPair.generate(env.rng.py("alice"))
    bob = KeyPair.generate(env.rng.py("bob"))
    for kp in (alice, bob):
        env.ctx.security.register_principal(kp.principal(), kp.public)

    alice_cred = Assertion(
        admin.principal(), f'"{alice.principal()}"',
        'command == "getState" -> "permit"; command == "power" -> "permit";',
        comment="alice: operator rights on devices",
    ).sign(admin)
    bob_cred = Assertion(
        admin.principal(), f'"{bob.principal()}"',
        'command == "getState" -> "permit";',
        comment="bob: read-only",
    ).sign(admin)

    env.boot()
    authdb = env.daemon("authdb")
    authdb.install(alice.principal(), alice_cred)
    authdb.install(bob.principal(), bob_cred)
    print("credential installed for alice:\n" +
          "\n".join("    " + line for line in alice_cred.to_text().splitlines()[:5]) +
          "\n    ...")

    def attempt(who, kp, command):
        def go():
            client = env.client(podium, principal=kp.principal(), keypair=kp)
            try:
                conn = yield from client.connect(camera.address)
            except CallError as exc:
                return f"{who}: ATTACH REFUSED ({exc})"
            try:
                reply = yield from conn.call(command)
                return f"{who}: {command.name} -> OK {dict(list(reply.args.items())[:3])}"
            except CallError as exc:
                return f"{who}: {command.name} -> DENIED ({exc})"
            finally:
                conn.close()

        return env.run(go())

    print("\nFig. 10 in action (every command checked against AuthDB+KeyNote):")
    print("  " + attempt("alice", alice, ACECmdLine("power", state="on")))
    print("  " + attempt("alice", alice, ACECmdLine("getState")))
    print("  " + attempt("alice", alice, ACECmdLine("setZoom", factor=2.0)))
    print("  " + attempt("bob  ", bob, ACECmdLine("getState")))
    print("  " + attempt("bob  ", bob, ACECmdLine("power", state="off")))

    # An impostor who claims alice's principal without her key:
    mallory = KeyPair.generate(env.rng.py("mallory"))
    def impostor():
        from repro.core import ServiceClient

        client = ServiceClient(env.ctx, podium, principal=alice.principal(),
                               keypair=mallory)
        try:
            yield from client.connect(camera.address)
            return "impostor: attached ?!"
        except CallError as exc:
            return f"impostor claiming alice: REFUSED ({exc})"

    print("  " + env.run(impostor()))

    print("\nall traffic above ran over SecureChannels "
          "(DH handshake + keystream cipher + HMAC records)")


if __name__ == "__main__":
    main()
