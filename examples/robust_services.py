#!/usr/bin/env python
"""Failure handling: leases, the restart manager, and the persistent store.

Crash a device daemon's host (leases purge it from the ASD), crash a
managed robust application (restart manager recovers it with its state),
and kill a store replica (the cluster keeps serving, the rejoined replica
resyncs) — §2.4, §5.2–5.3, Chapter 6.

Run:  python examples/robust_services.py
"""

from repro import ACECmdLine, ACEEnvironment
from repro.apps.robust import CheckpointingCounterApp, RestartManagerDaemon
from repro.services.devices import VCC4CameraDaemon


def main() -> None:
    env = ACEEnvironment(seed=77, lease_duration=6.0)
    env.add_infrastructure("infra", with_wss=False, with_idmon=False,
                           srm_poll_interval=2.0)
    env.add_workstation("w1", room="lab")
    env.add_workstation("w2", room="lab")
    cam_host = env.add_workstation("cam-host", room="hawk")
    env.add_device(VCC4CameraDaemon, "camera", cam_host, room="hawk")
    env.add_persistent_store(replicas=3, sync_interval=1.0)
    env.registry.register(
        "counter", lambda ctx, host, args: CheckpointingCounterApp(ctx, host, args))
    env.add_daemon(RestartManagerDaemon(env.ctx, "restartmgr", env.net.host("infra"),
                                        room="machineroom", sweep_interval=4.0))
    env.boot()
    env.run_for(3.0)
    asd = env.daemon("asd")
    print(f"[t={env.sim.now:6.1f}] booted; directory holds: {sorted(asd.records)}")

    # ---- 1. Lease purge -------------------------------------------------
    print(f"\n[t={env.sim.now:6.1f}] crashing the camera's host ...")
    env.net.crash_host("cam-host")
    env.run_for(env.ctx.lease_duration * 1.6)
    print(f"[t={env.sim.now:6.1f}] 'camera' in directory after ~1.5 leases: "
          f"{'camera' in asd.records} (lease expiry purged it)")

    # ---- 2. Managed robust application ----------------------------------
    def manage():
        client = env.client(env.net.host("infra"), principal="admin")
        return (yield from client.call_once(
            env.daemon("restartmgr").address,
            ACECmdLine("manageApp", app="counter", app_id="demo", cls="robust",
                       args="app_id=demo interval=0.2", host="w1"),
        ))

    reply = env.run(manage())
    print(f"\n[t={env.sim.now:6.1f}] robust counter launched on "
          f"{reply['host']} (pid {reply['pid']})")
    env.run_for(5.0)
    app = env.daemon("hal.w1").apps[reply["pid"]]
    print(f"[t={env.sim.now:6.1f}] counter at {app.count}, "
          f"checkpointing to the store every tick")

    print(f"[t={env.sim.now:6.1f}] killing host w1 (app AND its HAL die) ...")
    env.net.crash_host("w1")
    env.run_for(20.0)
    managed = env.daemon("restartmgr").managed["demo"]
    new_app = env.daemon(f"hal.{managed.host}").apps[managed.pid]
    print(f"[t={env.sim.now:6.1f}] recovered on {managed.host!r}: "
          f"restored_from={new_app.restored_from}, now at {new_app.count} "
          f"(restarts={managed.restarts})")

    # ---- 3. Store replica failure ----------------------------------------
    client = env.store_client(env.net.host("infra"))

    def store_demo():
        yield from client.put("/demo/config", {"mode": "presentation"})
        env.net.crash_host("store2")
        value = yield from client.get("/demo/config")
        yield from client.put("/demo/written-during-outage", {"ok": "1"})
        return value

    value = env.run(store_demo())
    print(f"\n[t={env.sim.now:6.1f}] store with 1 replica down still serves: "
          f"{value}")
    env.net.restart_host("store2")
    from repro.store.server import PersistentStoreDaemon

    reborn = PersistentStoreDaemon(env.ctx, "ps2r", env.net.host("store2"),
                                   port=env.daemon("ps2").port + 50,
                                   room="machineroom", sync_interval=1.0)
    reborn.set_peers([env.daemon("ps1").address, env.daemon("ps3").address])
    env.daemons["ps2r"] = reborn
    reborn.start()
    env.run_for(8.0)
    print(f"[t={env.sim.now:6.1f}] restarted replica resynced "
          f"{len(reborn.namespace)} objects via anti-entropy")


if __name__ == "__main__":
    main()
