#!/usr/bin/env python
"""The §4.15 high-level audio example (Fig. 15): a two-room conference
with mixing, echo cancellation, recording, and voice commands.

Run:  python examples/audio_conference.py
"""

import numpy as np

from repro import ACECmdLine, ACEEnvironment
from repro.services import dsp
from repro.services.audio import (
    AudioCaptureDaemon,
    AudioMixerDaemon,
    AudioPlayDaemon,
    AudioRecorderDaemon,
    EchoCancellationDaemon,
    SpeechToCommandDaemon,
    TextToSpeechDaemon,
)
from repro.services.streams import DistributionDaemon


def main() -> None:
    env = ACEEnvironment(seed=15)
    env.add_infrastructure("infra", with_wss=False, with_idmon=False)
    hawk = env.add_workstation("hawk-av", room="hawk", bogomips=3200.0, cores=2,
                               monitors=False)
    jay = env.add_workstation("jay-av", room="jay", bogomips=3200.0, cores=2,
                              monitors=False)

    # The Fig. 15 building blocks.
    cap_hawk = env.add_daemon(AudioCaptureDaemon(env.ctx, "capture.hawk", hawk, room="hawk"))
    mixer = env.add_daemon(AudioMixerDaemon(env.ctx, "mixer.hawk", hawk, room="hawk"))
    dist = env.add_daemon(DistributionDaemon(env.ctx, "dist.hawk", hawk, room="hawk"))
    play_jay = env.add_daemon(AudioPlayDaemon(env.ctx, "play.jay", jay, room="jay"))
    recorder = env.add_daemon(AudioRecorderDaemon(env.ctx, "recorder", hawk, room="hawk"))
    tts = env.add_daemon(TextToSpeechDaemon(env.ctx, "tts.hawk", hawk, room="hawk"))
    s2c = env.add_daemon(SpeechToCommandDaemon(env.ctx, "s2c.hawk", hawk, room="hawk"))
    far = env.add_daemon(AudioCaptureDaemon(env.ctx, "capture.jay", jay, room="jay"))
    mic = env.add_daemon(AudioCaptureDaemon(env.ctx, "mic.hawk", hawk, room="hawk"))
    canceller = env.add_daemon(EchoCancellationDaemon(env.ctx, "echocancel", hawk, room="hawk"))
    env.boot()

    def wire(src, dst):
        def go():
            client = env.client(env.net.host("infra"))
            yield from client.call_once(
                src.address,
                ACECmdLine("addSink", host=dst.address.host, port=dst.address.port))

        env.run(go())

    def call(daemon, command):
        def go():
            client = env.client(env.net.host("infra"))
            return (yield from client.call_once(daemon.address, command))

        return env.run(go())

    # Pipeline: hawk mic + TTS -> mixer -> distribution -> jay speakers + recorder.
    wire(cap_hawk, mixer)
    wire(tts, mixer)
    wire(mixer, dist)
    wire(dist, play_jay)
    wire(dist, recorder)
    wire(tts, s2c)  # the local voice-command loop
    print("pipeline wired: capture+tts -> mixer -> distribution -> "
          "{jay speakers, recorder}; tts -> speech-to-command")

    # Voice vocabulary: "record" erases the recorder (a demo action).
    call(s2c, ACECmdLine("mapCommand", word="record",
                         host=recorder.address.host, port=recorder.address.port,
                         command="getRecording;"))

    # Someone in hawk talks for two seconds.
    call(cap_hawk, ACECmdLine("startCapture"))
    cap_hawk.queue_signal(dsp.speech_like(2 * dsp.SAMPLE_RATE, env.rng.np("talk")))
    env.run_for(2.5)
    heard = play_jay.signal()
    print(f"jay heard {len(heard) / dsp.SAMPLE_RATE:.2f}s of audio "
          f"(rms={np.sqrt(np.mean(heard**2)):.4f})")
    rec = call(recorder, ACECmdLine("getRecording"))
    print(f"recorder captured {rec['seconds']}s")

    # The computer says 'record' — speech-to-command picks it up.
    call(tts, ACECmdLine("say", text="record"))
    env.run_for(2.0)
    print(f"voice commands recognized: {[w for _, w in s2c.recognized]}")

    # Echo cancellation on the return path: jay's audio plays in hawk and
    # leaks back into hawk's microphone; the canceller removes it.
    wire(far, canceller)
    wire(mic, canceller)
    call(canceller, ACECmdLine("setReference", host=far.address.host, port=far.address.port))
    call(canceller, ACECmdLine("setMicrophone", host=mic.address.host, port=mic.address.port))
    rng = env.rng.np("echo")
    far_sig = dsp.speech_like(3 * dsp.SAMPLE_RATE, rng)
    mic_sig = dsp.apply_echo(far_sig, dsp.synth_echo_path(rng))
    far.queue_signal(far_sig)
    mic.queue_signal(mic_sig)
    call(far, ACECmdLine("startCapture"))
    call(mic, ACECmdLine("startCapture"))
    env.run_for(4.0)
    stats = call(canceller, ACECmdLine("getCancelStats"))
    print(f"echo canceller: {stats['suppression_db']} dB suppression "
          f"(mic energy {stats['mic_energy']} -> residual {stats['out_energy']})")


if __name__ == "__main__":
    main()
