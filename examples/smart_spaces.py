#!/usr/bin/env python
"""Chapter 9, implemented: the paper's future-work features working together.

* personnel tracking (a *non-human ACE user*, §1.1);
* "print this out to the nearest printer" task automation;
* voice control of devices (§7.5's "next stage in development");
* mobile sockets surviving a daemon crash;
* Ninja-style Automatic Path Creation for media pipelines (§8.1).

Run:  python examples/smart_spaces.py
"""

from repro import ACECmdLine
from repro.core.mobile import MobileServiceConnection
from repro.env.scenarios import scenario_1_new_user, standard_environment
from repro.lang import parse_command
from repro.services.audio import SpeechToCommandDaemon, TextToSpeechDaemon
from repro.services.fiu import noisy_sample
from repro.services.printer import PrinterDaemon, TaskAutomationDaemon
from repro.services.tracker import PersonnelTrackerDaemon


def main() -> None:
    env = standard_environment(seed=404)
    infra = env.net.host("infra")
    office = env.add_workstation("officebox", room="office21", monitors=False)
    env.add_id_devices(office, room="office21")
    env.add_daemon(PersonnelTrackerDaemon(env.ctx, "tracker", infra, room="machineroom"))
    env.add_device(PrinterDaemon, "printer.hawk", env.net.host("podium"), room="hawk")
    env.add_device(PrinterDaemon, "printer.office", office, room="office21")
    env.add_daemon(TaskAutomationDaemon(env.ctx, "automation", infra, room="machineroom"))
    av = env.net.host("podium")
    tts = env.add_daemon(TextToSpeechDaemon(env.ctx, "tts", av, room="hawk"))
    s2c = env.add_daemon(SpeechToCommandDaemon(env.ctx, "s2c", av, room="hawk"))
    env.boot()
    env.run(scenario_1_new_user(env))
    print(f"smart-space ACE up: {len(env.daemons)} daemons\n")

    def call(daemon_name, command):
        def go():
            client = env.client(infra, principal="demo")
            return (yield from client.call_once(env.daemon(daemon_name).address, command))

        return env.run(go())

    def identify(device):
        fiu = env.daemon(device)

        def go():
            driver = env.client(fiu.host, principal="driver")
            yield from driver.call_once(fiu.address, ACECmdLine("loadTemplates"))
            sample = noisy_sample(env.users["john"].fingerprint_template,
                                  env.rng.np(f"demo.{device}"))
            yield from driver.call_once(fiu.address, ACECmdLine("scan", sample=sample))

        env.run(go())
        env.run_for(1.0)

    # --- personnel tracking -------------------------------------------------
    identify("fiu.podium")
    identify("fiu.officebox")
    where = call("tracker", ACECmdLine("whereIsUser", username="john"))
    print(f"tracker: john last seen in {where['location']!r} "
          f"(via {where['device']})")

    # --- nearest-printer automation -----------------------------------------
    job = call("automation", ACECmdLine("printNearest", user="john",
                                        doc="quarterly.ps", pages=3))
    print(f"automation: 'print this to the nearest printer' -> "
          f"{job['printer']} ({job['selection']}, room {job['room']})")
    env.run_for(20.0)
    print(f"            printed: {env.daemon(job['printer']).printed}")

    # --- voice control --------------------------------------------------------
    call("tts", ACECmdLine("addSink", host=s2c.address.host, port=s2c.address.port))
    projector = env.daemon("projector.hawk")
    call("s2c", ACECmdLine("mapCommand", word="projector_on",
                           host=projector.address.host, port=projector.address.port,
                           command="power state=on;"))
    call("tts", ACECmdLine("say", text="projector_on"))
    env.run_for(3.0)
    print(f"voice: said 'projector_on' -> projector powered={projector.powered}")

    # --- mobile sockets ---------------------------------------------------------
    client = env.client(infra, principal="mobile-demo")
    mobile = MobileServiceConnection(client, env.asd_address, cls="Printer")

    def mobile_demo():
        yield from mobile.connect()
        first = mobile.current.name
        yield from mobile.call(ACECmdLine("getQueue"))
        env.net.crash_host(env.daemons[first].host.name)
        yield from mobile.call(ACECmdLine("getQueue"))
        return first, mobile.current.name

    first, second = env.run(mobile_demo())
    print(f"mobile socket: bound to {first}, host crashed, resumed on {second} "
          f"in {mobile.last_failover_time * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
