#!/usr/bin/env python
"""Quickstart: boot a minimal ACE, discover a camera, drive it.

Demonstrates the core loop of the paper (Fig. 7): services register with
the Service Directory; clients look them up by class and talk to them in
the ACE command language.

Run:  python examples/quickstart.py
"""

from repro import ACECmdLine, ACEEnvironment
from repro.services.asd import asd_lookup
from repro.services.devices import VCC4CameraDaemon


def main() -> None:
    # 1. Build an environment: one infrastructure host (ASD, RoomDB,
    #    NetLogger, AUD, AuthDB, SRM, SAL, WSS, IDMon) + a conference room.
    env = ACEEnvironment(seed=7)
    env.add_infrastructure("infra")
    env.add_room("hawk", building="nichols", dims=(10.0, 8.0, 3.0))
    podium = env.add_workstation("podium", room="hawk")
    env.add_device(VCC4CameraDaemon, "camera.hawk", podium, room="hawk")
    env.boot()
    print(f"[t={env.sim.now:6.2f}s] ACE booted with {len(env.daemons)} daemons:")
    for name, daemon in sorted(env.daemons.items()):
        print(f"    {name:<16} {daemon.class_path():<40} @ {daemon.address}")

    # 2. A client discovers the camera through the ASD and drives it.
    def drive_camera():
        client = env.client(podium, principal="demo-user")
        records = yield from asd_lookup(client, env.asd_address, cls="PTZCamera")
        print(f"\n[t={env.sim.now:6.2f}s] ASD lookup cls=PTZCamera -> "
              f"{[r.to_wire() for r in records]}")
        camera = records[0]
        conn = yield from client.connect(camera.address)
        yield from conn.call(ACECmdLine("power", state="on"))
        aim = yield from conn.call(ACECmdLine("setPosition", x=2.0, y=1.5, z=1.2))
        zoom = yield from conn.call(ACECmdLine("setZoom", factor=4.0))
        state = yield from conn.call(ACECmdLine("getState"))
        conn.close()
        return aim, zoom, state

    aim, zoom, state = env.run(drive_camera())
    print(f"[t={env.sim.now:6.2f}s] camera aimed: pan={aim['pan']}° "
          f"tilt={aim['tilt']}°  zoom={zoom['zoom']}x")
    print(f"[t={env.sim.now:6.2f}s] device state: {state.args}")

    # 3. Commands are plain strings on the wire — inspect one.
    cmd = ACECmdLine("setPosition", x=2.0, y=1.5, z=1.2)
    print(f"\nwire form of the aim command ({cmd.wire_size} bytes): {cmd}")


if __name__ == "__main__":
    main()
