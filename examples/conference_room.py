#!/usr/bin/env python
"""The paper's demo storyline: Scenarios 1–5 (Chapter 7) end to end.

John Doe joins ACECo, gets an account and a default workspace, identifies
himself at the conference-room podium by fingerprint, his workspace pops
up on the podium screen, he creates a second workspace, and finally drives
the room's projector and camera for his presentation (Figs. 18–19).

Run:  python examples/conference_room.py
"""

from repro.env.scenarios import (
    scenario_1_new_user,
    scenario_2_identification,
    scenario_3_workspace_display,
    scenario_4_multiple_workspaces,
    scenario_5_devices,
    standard_environment,
)


def main() -> None:
    env = standard_environment(seed=2026).boot()
    print(f"environment up: {len(env.daemons)} daemons on "
          f"{len(env.net.hosts)} hosts\n")

    s1 = env.run(scenario_1_new_user(env, username="john", fullname="John Doe"))
    print("Scenario 1 — new user & workspace")
    print(f"    AUD entry created, default workspace {s1['workspace']!r} "
          f"launched on host {s1['vnc_host']!r}")
    print(f"    total provisioning time: {s1['t_total'] * 1e3:.1f} ms\n")

    s2 = env.run(scenario_2_identification(env))
    print("Scenario 2 — fingerprint identification at the podium")
    print(f"    matched={s2['matched']}  distance={s2['distance']:.3f}  "
          f"AUD location now {s2['aud_location']!r}\n")

    s3 = env.run(scenario_3_workspace_display(env))
    print("Scenario 3 — workspace appears at the access point")
    print(f"    displayed={s3['displayed']} on {s3['display']!r} "
          f"(session {s3['session']!r})")
    print(f"    finger press -> pixels: {s3['t_end_to_end'] * 1e3:.1f} ms\n")

    s4 = env.run(scenario_4_multiple_workspaces(env))
    print("Scenario 4 — multiple workspaces + selector")
    print(f"    workspaces: {s4['workspaces']}")
    print(f"    secondary opened at podium: {s4['opened_secondary']}\n")

    s5 = env.run(scenario_5_devices(env))
    print("Scenario 5 — room devices from the workspace GUI")
    print(f"    services in room: {s5['room_services']}")
    print(f"    projector: {s5['projector_state']}")
    print(f"    camera: pan={s5['pan']:.1f}°, state={s5['camera_state']}")
    print(f"    whole interaction: {s5['t_total'] * 1e3:.1f} ms\n")

    # The step-by-step protocol trace behind Fig. 19:
    print("protocol trace (identification -> workspace, Fig. 19 steps):")
    interesting = ("user-identified", "workspace-opened", "viewer-attached",
                   "notification-delivered")
    for record in env.trace.records:
        if record.kind in interesting:
            print(f"    {record}")

    print("\nJohn is now ready to give his presentation.")


if __name__ == "__main__":
    main()
