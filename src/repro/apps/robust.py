"""Restart & robust application support (§5.2–5.3).

The paper calls the watcher "the next step in our current development";
this module builds it exactly as sketched: *notifications alert the
watcher of closed applications*, and it works *in conjunction with the ASD
and the persistent store*.

* :class:`RestartManagerDaemon` subscribes to every HAL's ``appExited``
  notification.  When a managed app crashes it relaunches it — on the same
  host for RESTART apps, via the SAL's resource-aware placement (possibly
  a different host, e.g. when the original died) for ROBUST apps.
* :class:`CheckpointingCounterApp` is the canonical robust application: it
  checkpoints its state to the persistent store every tick and restores it
  on (re)start, so a crash loses at most one checkpoint interval of work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics, parse_command
from repro.net import Address, ConnectionClosed, ConnectionRefused
from repro.net.host import HostDownError
from repro.sim import Interrupt

from repro.apps.runner import Application, AppClass, _parse_kv
from repro.core.client import CallError
from repro.core.daemon import ACEDaemon, Request, ServiceError
from repro.services.asd import asd_lookup
from repro.store.client import StoreClient, StoreUnavailable


# ---------------------------------------------------------------------------
# The canonical robust application
# ---------------------------------------------------------------------------

class CheckpointingCounterApp(Application):
    """Counts ticks; checkpoints to the persistent store each tick.

    args: ``app_id=<id> interval=<s>`` — the app discovers the store
    replicas through the ASD, restores ``count`` on start, and increments
    from there.  After a crash + relaunch the count resumes from the last
    checkpoint instead of zero (test + experiment E19 assert this).
    """

    app_class = AppClass.ROBUST

    def __init__(self, ctx, host, args: str = ""):
        super().__init__(ctx, host, "counter", args)
        params = _parse_kv(args)
        self.app_id = params.get("app_id", "counter")
        self.interval = float(params.get("interval", 0.5))
        self.count = 0
        self.restored_from: Optional[int] = None

    def _store(self) -> Generator:
        from repro.core.client import ServiceClient

        client = ServiceClient(self.ctx, self.host, principal=f"app:{self.app_id}")
        replicas = yield from asd_lookup(client, self.ctx.asd_address, cls="PersistentStore")
        if not replicas:
            return None
        return StoreClient(
            self.ctx, self.host, [r.address for r in replicas],
            principal=f"app:{self.app_id}",
        )

    def body(self) -> Generator:
        store = yield from self._store()
        if store is not None:
            state = yield from store.load_state(self.app_id)
            if state is not None:
                self.count = int(state.get("count", 0))
                self.restored_from = self.count
        while True:
            yield self.ctx.sim.timeout(self.interval)
            self.count += 1
            if store is not None:
                try:
                    yield from store.save_state(self.app_id, {"count": str(self.count)})
                except StoreUnavailable:
                    pass  # keep counting; checkpoint again next tick


# ---------------------------------------------------------------------------
# The watcher / restart manager
# ---------------------------------------------------------------------------

@dataclass
class ManagedApp:
    app_id: str
    factory: str
    args: str
    app_class: AppClass
    host: str = ""           # current placement
    pid: int = 0
    restarts: int = 0
    stopped: bool = False    # intentionally stopped; don't resurrect


class RestartManagerDaemon(ACEDaemon):
    """Keeps restart/robust applications alive (§5.2–5.3)."""

    service_type = "RestartManager"

    def __init__(self, ctx, name, host, *, sweep_interval: float = 10.0, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.sweep_interval = sweep_interval
        self.managed: Dict[str, ManagedApp] = {}
        self._by_pid: Dict[int, str] = {}
        self._watched_hals: set = set()
        self.recoveries = 0

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "manageApp",
            ArgSpec("app", ArgType.STRING),
            ArgSpec("app_id", ArgType.STRING),
            ArgSpec("cls", ArgType.WORD),  # restart | robust
            ArgSpec("args", ArgType.STRING, required=False, default=""),
            ArgSpec("host", ArgType.STRING, required=False),
            description="launch and keep alive",
        )
        sem.define("unmanageApp", ArgSpec("app_id", ArgType.STRING))
        sem.define("getManaged", ArgSpec("app_id", ArgType.STRING))
        sem.define(
            "onAppExited",
            ArgSpec("source", ArgType.STRING, required=False),
            ArgSpec("trigger", ArgType.STRING, required=False),
            ArgSpec("principal", ArgType.STRING, required=False),
            ArgSpec("args", ArgType.STRING, required=False),
        )
        sem.define(
            "onServiceRegistered",
            ArgSpec("source", ArgType.STRING, required=False),
            ArgSpec("trigger", ArgType.STRING, required=False),
            ArgSpec("principal", ArgType.STRING, required=False),
            ArgSpec("args", ArgType.STRING, required=False),
        )

    def on_started(self) -> None:
        self._spawn(self._watch_asd(), "watch-asd")
        self._spawn(self._subscribe_hals(), "subscribe-hals")
        self._spawn(self._sweep_loop(), "sweeper")

    # ------------------------------------------------------------------
    # HAL subscription (notification-driven crash detection)
    # ------------------------------------------------------------------
    def _watch_asd(self) -> Generator:
        if self.ctx.asd_address is None:
            return
        client = self._service_client()
        try:
            yield from client.call_once(
                self.ctx.asd_address,
                ACECmdLine("addNotification", cmd="register", listener=self.name,
                           host=self.host.name, port=self.port,
                           callback="onServiceRegistered"),
            )
        except (CallError, ConnectionClosed, ConnectionRefused):
            pass

    def _subscribe_hals(self) -> Generator:
        client = self._service_client()
        try:
            hals = yield from asd_lookup(client, self.ctx.asd_address, cls="HAL")
        except (CallError, ConnectionClosed, ConnectionRefused):
            return
        for hal in hals:
            yield from self._subscribe_hal(hal.name, hal.address)

    def _subscribe_hal(self, name: str, address: Address) -> Generator:
        if name in self._watched_hals:
            return
        client = self._service_client()
        try:
            yield from client.call_once(
                address,
                ACECmdLine("addNotification", cmd="appExited", listener=self.name,
                           host=self.host.name, port=self.port, callback="onAppExited"),
            )
            self._watched_hals.add(name)
        except (CallError, ConnectionClosed, ConnectionRefused):
            pass

    def cmd_onServiceRegistered(self, request: Request) -> Generator:
        text = request.command.get("args")
        if not text:
            return {}
        try:
            event = parse_command(text)
        except Exception:
            return {}
        if "HAL" not in event.str("cls", "").split("/"):
            return {}
        yield from self._subscribe_hal(
            event.str("name"), Address(event.str("host"), event.int("port"))
        )
        return {}

    # ------------------------------------------------------------------
    # Launch & recover
    # ------------------------------------------------------------------
    def _launch(self, managed: ManagedApp, prefer_host: Optional[str]) -> Generator:
        """Place via the SAL (restart apps pin their original host)."""
        client = self._service_client()
        sals = yield from asd_lookup(client, self.ctx.asd_address, cls="SAL")
        if not sals:
            raise ServiceError("no SAL to launch through")
        command = ACECmdLine(
            "launchApp", app=managed.factory, args=managed.args,
            **({"host": prefer_host} if prefer_host else {}),
        )
        reply = yield from client.call_once(sals[0].address, command)
        managed.host = reply.str("host")
        managed.pid = reply.int("pid")
        self._by_pid[managed.pid] = managed.app_id
        return reply

    def cmd_manageApp(self, request: Request) -> Generator:
        cmd = request.command
        app_id = cmd.str("app_id")
        if app_id in self.managed:
            raise ServiceError(f"app_id {app_id!r} already managed")
        cls_word = cmd.str("cls")
        if cls_word not in ("restart", "robust"):
            raise ServiceError("cls must be restart or robust")
        managed = ManagedApp(
            app_id=app_id,
            factory=cmd.str("app"),
            args=cmd.str("args", ""),
            app_class=AppClass(cls_word),
        )
        yield from self._launch(managed, cmd.get("host"))
        self.managed[app_id] = managed
        return {"app_id": app_id, "pid": managed.pid, "host": managed.host}

    def cmd_unmanageApp(self, request: Request) -> dict:
        app_id = request.command.str("app_id")
        managed = self.managed.get(app_id)
        if managed is None:
            raise ServiceError(f"unknown app_id {app_id!r}")
        managed.stopped = True
        return {"app_id": app_id}

    def cmd_getManaged(self, request: Request) -> dict:
        managed = self.managed.get(request.command.str("app_id"))
        if managed is None:
            raise ServiceError("unknown app_id")
        return {"app_id": managed.app_id, "pid": managed.pid,
                "host": managed.host, "restarts": managed.restarts}

    def cmd_onAppExited(self, request: Request) -> Generator:
        text = request.command.get("args")
        if not text:
            return {}
        try:
            event = parse_command(text)
        except Exception:
            return {}
        pid = event.int("pid", 0)
        state = event.str("state", "")
        app_id = self._by_pid.get(pid)
        if app_id is None:
            return {}
        managed = self.managed.get(app_id)
        if managed is None or managed.stopped or managed.pid != pid:
            return {}
        if state != "crashed":
            return {}  # orderly exit: nothing to do
        yield from self._recover(managed)
        return {"app_id": app_id}

    def _recover(self, managed: ManagedApp) -> Generator:
        # RESTART apps return to their original host (if it still lives);
        # ROBUST apps go wherever the SRM points (failover).
        prefer = managed.host if managed.app_class is AppClass.RESTART else None
        host_obj = self.ctx.net.hosts.get(prefer) if prefer else None
        if prefer and (host_obj is None or not host_obj.up):
            prefer = None
        try:
            yield from self._launch(managed, prefer)
        except (ServiceError, CallError, ConnectionClosed, ConnectionRefused):
            return
        managed.restarts += 1
        self.recoveries += 1
        self.ctx.trace.emit(
            self.ctx.sim.now, self.name, "app-recovered",
            app_id=managed.app_id, host=managed.host, pid=managed.pid,
        )

    # ------------------------------------------------------------------
    # Polling sweep — catches crashes whose notification was lost
    # (e.g. the whole host died, so the HAL never spoke again)
    # ------------------------------------------------------------------
    def _sweep_loop(self) -> Generator:
        while self.running:
            yield self.ctx.sim.timeout(self.sweep_interval)
            for managed in list(self.managed.values()):
                if managed.stopped or not self.running:
                    continue
                alive = yield from self._probe(managed)
                if alive is False:
                    yield from self._recover(managed)

    def _probe(self, managed: ManagedApp) -> Generator:
        """None = indeterminate, True = running, False = gone."""
        host_obj = self.ctx.net.hosts.get(managed.host)
        if host_obj is not None and not host_obj.up:
            return False
        client = self._service_client()
        try:
            hals = yield from asd_lookup(client, self.ctx.asd_address, cls="HAL")
        except (CallError, ConnectionClosed, ConnectionRefused):
            return None
        hal = next((h for h in hals if h.host == managed.host), None)
        if hal is None:
            return False
        try:
            reply = yield from client.call_once(
                hal.address, ACECmdLine("isRunning", pid=managed.pid)
            )
        except (CallError, ConnectionClosed, ConnectionRefused):
            return None
        return reply.int("running") == 1
