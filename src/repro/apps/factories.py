"""Application factories the HALs launch from.

The environment builder installs these into every HAL's
:class:`~repro.apps.runner.AppRegistry`, so the SAL→HAL chain can start
VNC servers and viewers anywhere (Scenarios 1 and 3).
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.net import Address
from repro.sim import Interrupt

from repro.apps.runner import Application, AppClass, AppRegistry, _parse_kv
from repro.apps.vnc import VNCServerDaemon, VNCViewer
from repro.core.client import ServiceClient
from repro.core.context import DaemonContext


class VNCServerApp(Application):
    """Wraps a :class:`VNCServerDaemon` hosting one workspace session.

    args: ``session=<name> owner=<user> password=<pw> secret=<wss secret>``
    """

    app_class = AppClass.RESTART

    def __init__(self, ctx: DaemonContext, host, args: str = ""):
        super().__init__(ctx, host, "vncserver", args)
        params = _parse_kv(args)
        self.session = params.get("session", "default")
        self.daemon = VNCServerDaemon(
            ctx,
            f"vnc.{self.session}",
            host,
            admin_secret=params.get("secret", ""),
        )
        # Pre-create the session the WSS asked for (password managed by WSS).
        fb = np.zeros(self.daemon.shape, dtype=np.uint8)
        from repro.apps.vnc import WorkspaceSession

        self.daemon.sessions[self.session] = WorkspaceSession(
            name=self.session,
            owner=params.get("owner", "unknown"),
            password=params.get("password", ""),
            framebuffer=fb,
        )

    def body(self) -> Generator:
        self.daemon.start()
        try:
            while True:
                yield self.ctx.sim.timeout(3600.0)
        finally:
            if self.daemon.running:
                self.daemon.stop()


class VNCViewerApp(Application):
    """A viewer at an access point, redirecting workspace I/O locally.

    args: ``server=<host:port> session=<name> password=<pw>``
    """

    app_class = AppClass.TEMPORARY

    def __init__(self, ctx: DaemonContext, host, args: str = ""):
        super().__init__(ctx, host, "vncviewer", args)
        params = _parse_kv(args)
        self.server_address = Address.parse(params["server"])
        self.session = params.get("session", "default")
        self.password = params.get("password", "")
        self.viewer: Optional[VNCViewer] = None
        self.attached_at: Optional[float] = None

    def body(self) -> Generator:
        self.viewer = VNCViewer(
            self.ctx, self.host, self.server_address, self.session, self.password
        )
        client = ServiceClient(self.ctx, self.host, principal=f"viewer:{self.session}")
        try:
            yield from self.viewer.attach(client)
            self.attached_at = self.ctx.sim.now
            self.ctx.trace.emit(
                self.ctx.sim.now, f"app:vncviewer", "viewer-attached",
                session=self.session, display=self.host.name,
            )
            while True:
                yield from self.viewer.pump(min_updates=1)
        except Interrupt:
            yield from self.viewer.detach()
            raise


def build_registry(ctx: DaemonContext) -> AppRegistry:
    """The standard ACE application registry."""
    registry = AppRegistry()
    registry.register("vncserver", lambda c, h, a: VNCServerApp(c, h, a))
    registry.register("vncviewer", lambda c, h, a: VNCViewerApp(c, h, a))
    return registry
