"""ACE user applications (Chapter 5) and the machinery to run them.

* :mod:`repro.apps.runner` — generic application processes with the three
  execution classes of §5.1–5.3 (temporary / restart / robust) and the
  registry the HAL launches from.
* :mod:`repro.apps.vnc` — the VNC workspace emulation (§5.4, Fig. 16).
* :mod:`repro.apps.ophone` — O-Phone duplex audio over IP (§5.5).
* :mod:`repro.apps.robust` — the watcher/restart manager the paper calls
  "the next step in our current development" (§5.2), built on notifications
  + the persistent store.
"""

from repro.apps.runner import (
    AppClass,
    AppHandle,
    AppRegistry,
    AppState,
    Application,
)

__all__ = [
    "AppClass",
    "AppHandle",
    "AppRegistry",
    "AppState",
    "Application",
]
