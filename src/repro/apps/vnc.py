"""VNC — Virtual Network Computing emulation (§5.4, Fig. 16).

The paper integrates AT&T VNC as the engine behind user workspaces: the
*server* owns the workspace state (here: a numpy framebuffer per session
plus the apps running in it), *viewers* attach from any access point and
get I/O redirected.  Faithfully to the paper's modification, session
passwords are managed by the WSS ("the VNC password files were directly
accessed and modified by the WSS"), so users never type one.

Implementation notes
--------------------
* The server is an :class:`~repro.core.daemon.ACEDaemon` subclass (the
  paper's "legacy application ... slightly modified to fit the ACE
  infrastructure"), so it registers with the ASD and speaks ACE commands
  for control.
* Pixel data flows over the daemon's UDP data channel (§2.1.1's data
  thread) as :class:`FrameUpdate` packets whose wire size equals the real
  pixel byte count — experiment E10 measures dirty-rect vs full-frame
  bandwidth from these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.lang import ArgSpec, ArgType, CommandSemantics
from repro.net import Address
from repro.core.daemon import ACEDaemon, Request, ServiceError

#: default workspace geometry (height, width), 8-bit grayscale
DEFAULT_SHAPE = (240, 320)

Rect = Tuple[int, int, int, int]  # x, y, w, h


@dataclass
class FrameUpdate:
    """One update packet on the UDP channel."""

    session: str
    seq: int
    rects: Tuple[Rect, ...]
    pixels: bytes  # concatenated rect contents, row-major per rect

    def wire_size(self) -> int:
        return len(self.pixels) + 16 * len(self.rects) + 32


@dataclass
class WorkspaceSession:
    """Server-side state of one user workspace."""

    name: str
    owner: str
    password: str
    framebuffer: np.ndarray
    #: dirty rectangles since each viewer's last update, keyed by viewer addr
    dirty: Dict[Address, List[Rect]] = field(default_factory=dict)
    viewers: List[Address] = field(default_factory=list)
    seq: int = 0
    input_log: List[str] = field(default_factory=list)

    def mark_dirty(self, rect: Rect) -> None:
        for rects in self.dirty.values():
            rects.append(rect)


class VNCServerDaemon(ACEDaemon):
    """Houses workspaces; redirects I/O to attached viewers (Fig. 16)."""

    service_type = "VNCServer"

    def __init__(self, ctx, name, host, *, shape: Tuple[int, int] = DEFAULT_SHAPE,
                 admin_secret: str = "", **kwargs):
        # The paper's VNC is a legacy app with its *own* auth scheme —
        # session passwords managed by the WSS — not KeyNote credentials;
        # viewers hold a password, not a key.
        kwargs.setdefault("authorize_commands", False)
        super().__init__(ctx, name, host, **kwargs)
        self.shape = shape
        #: shared secret the WSS uses for session administration
        self.admin_secret = admin_secret
        self.sessions: Dict[str, WorkspaceSession] = {}

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "createSession",
            ArgSpec("session", ArgType.STRING),
            ArgSpec("owner", ArgType.STRING),
            ArgSpec("password", ArgType.STRING),
            ArgSpec("admin", ArgType.STRING, required=False, default=""),
            description="WSS-administered session creation",
        )
        sem.define(
            "destroySession",
            ArgSpec("session", ArgType.STRING),
            ArgSpec("admin", ArgType.STRING, required=False, default=""),
        )
        sem.define(
            "setPassword",
            ArgSpec("session", ArgType.STRING),
            ArgSpec("password", ArgType.STRING),
            ArgSpec("admin", ArgType.STRING, required=False, default=""),
            description="the WSS 'directly modifies the password file'",
        )
        sem.define("listSessions", ArgSpec("owner", ArgType.STRING, required=False))
        sem.define(
            "attachViewer",
            ArgSpec("session", ArgType.STRING),
            ArgSpec("password", ArgType.STRING),
            ArgSpec("udp_host", ArgType.STRING),
            ArgSpec("udp_port", ArgType.INTEGER),
            description="attach a viewer; full framebuffer is pushed via UDP",
        )
        sem.define(
            "detachViewer",
            ArgSpec("session", ArgType.STRING),
            ArgSpec("udp_host", ArgType.STRING),
            ArgSpec("udp_port", ArgType.INTEGER),
        )
        sem.define(
            "input",
            ArgSpec("session", ArgType.STRING),
            ArgSpec("password", ArgType.STRING),
            ArgSpec("op", ArgType.STRING),
            ArgSpec("x", ArgType.INTEGER, required=False, default=0),
            ArgSpec("y", ArgType.INTEGER, required=False, default=0),
            ArgSpec("w", ArgType.INTEGER, required=False, default=8),
            ArgSpec("h", ArgType.INTEGER, required=False, default=8),
            ArgSpec("value", ArgType.INTEGER, required=False, default=255),
            ArgSpec("text", ArgType.STRING, required=False, default=""),
            description="workspace input: draw/type/clear operations",
        )
        sem.define(
            "requestUpdate",
            ArgSpec("session", ArgType.STRING),
            ArgSpec("password", ArgType.STRING),
            ArgSpec("udp_host", ArgType.STRING),
            ArgSpec("udp_port", ArgType.INTEGER),
            ArgSpec("full", ArgType.INTEGER, required=False, default=0),
        )

    # ------------------------------------------------------------------
    def _session(self, name: str) -> WorkspaceSession:
        session = self.sessions.get(name)
        if session is None:
            raise ServiceError(f"no such session {name!r}")
        return session

    def _check_admin(self, request: Request) -> None:
        if self.admin_secret and request.command.str("admin", "") != self.admin_secret:
            raise ServiceError("administrative command requires the WSS secret")

    def _check_password(self, session: WorkspaceSession, request: Request) -> None:
        if request.command.str("password") != session.password:
            raise ServiceError(f"bad password for session {session.name!r}")

    # -- administration (WSS-facing) ------------------------------------
    def cmd_createSession(self, request: Request) -> dict:
        self._check_admin(request)
        cmd = request.command
        name = cmd.str("session")
        if name in self.sessions:
            raise ServiceError(f"session {name!r} already exists")
        fb = np.zeros(self.shape, dtype=np.uint8)
        self.sessions[name] = WorkspaceSession(
            name=name, owner=cmd.str("owner"), password=cmd.str("password"), framebuffer=fb
        )
        self.ctx.trace.emit(self.ctx.sim.now, self.name, "vnc-session-created",
                            session=name, owner=cmd.str("owner"))
        return {"session": name, "width": self.shape[1], "height": self.shape[0]}

    def cmd_destroySession(self, request: Request) -> dict:
        self._check_admin(request)
        name = request.command.str("session")
        existed = self.sessions.pop(name, None)
        return {"removed": 1 if existed else 0}

    def cmd_setPassword(self, request: Request) -> dict:
        self._check_admin(request)
        session = self._session(request.command.str("session"))
        session.password = request.command.str("password")
        return {"session": session.name}

    def cmd_listSessions(self, request: Request) -> dict:
        owner = request.command.get("owner")
        names = sorted(
            s.name for s in self.sessions.values() if owner is None or s.owner == owner
        )
        result: dict = {"count": len(names)}
        if names:
            result["sessions"] = tuple(names)
        return result

    # -- viewers ---------------------------------------------------------
    def cmd_attachViewer(self, request: Request) -> Generator:
        cmd = request.command
        session = self._session(cmd.str("session"))
        self._check_password(session, request)
        viewer = Address(cmd.str("udp_host"), cmd.int("udp_port"))
        if viewer not in session.viewers:
            session.viewers.append(viewer)
            session.dirty[viewer] = []
        # Push the full framebuffer so the viewer starts in sync.
        yield from self._push(session, viewer, full=True)
        return {"session": session.name, "width": self.shape[1], "height": self.shape[0]}

    def cmd_detachViewer(self, request: Request) -> dict:
        cmd = request.command
        session = self._session(cmd.str("session"))
        viewer = Address(cmd.str("udp_host"), cmd.int("udp_port"))
        if viewer in session.viewers:
            session.viewers.remove(viewer)
            session.dirty.pop(viewer, None)
        return {"session": session.name}

    # -- input / output --------------------------------------------------
    def cmd_input(self, request: Request) -> Generator:
        cmd = request.command
        session = self._session(cmd.str("session"))
        self._check_password(session, request)
        rect = self._apply_input(session, cmd)
        session.input_log.append(cmd.str("op"))
        session.mark_dirty(rect)
        # I/O redirection: push the change to every attached viewer.
        for viewer in list(session.viewers):
            yield from self._push(session, viewer, full=False)
        return {"session": session.name}

    def _apply_input(self, session: WorkspaceSession, cmd) -> Rect:
        op = cmd.str("op")
        fb = session.framebuffer
        height, width = fb.shape
        x = max(0, min(cmd.int("x", 0), width - 1))
        y = max(0, min(cmd.int("y", 0), height - 1))
        w = max(1, min(cmd.int("w", 8), width - x))
        h = max(1, min(cmd.int("h", 8), height - y))
        if op == "draw":
            fb[y : y + h, x : x + w] = cmd.int("value", 255) & 0xFF
        elif op == "clear":
            fb[:, :] = 0
            x, y, w, h = 0, 0, width, height
        elif op == "type":
            # Each character "renders" as an 8x8 glyph block derived from
            # its code point, advancing a cursor along the row.
            text = cmd.str("text", "")
            for i, ch in enumerate(text):
                gx = x + i * 8
                if gx + 8 > width:
                    break
                fb[y : y + 8, gx : gx + 8] = (ord(ch) * 37) & 0xFF
            w, h = min(len(cmd.str("text", "")) * 8, width - x), 8
        else:
            raise ServiceError(f"unknown input op {op!r}")
        return (x, y, w, h)

    def _push(self, session: WorkspaceSession, viewer: Address, full: bool) -> Generator:
        fb = session.framebuffer
        height, width = fb.shape
        if full:
            rects: Tuple[Rect, ...] = ((0, 0, width, height),)
            session.dirty[viewer] = []
        else:
            pending = session.dirty.get(viewer, [])
            if not pending:
                return
            rects = tuple(pending)
            session.dirty[viewer] = []
        chunks = []
        for (x, y, w, h) in rects:
            chunks.append(fb[y : y + h, x : x + w].tobytes())
        session.seq += 1
        update = FrameUpdate(session.name, session.seq, rects, b"".join(chunks))
        yield from self._datagram.send(viewer, update)

    def cmd_requestUpdate(self, request: Request) -> Generator:
        cmd = request.command
        session = self._session(cmd.str("session"))
        self._check_password(session, request)
        viewer = Address(cmd.str("udp_host"), cmd.int("udp_port"))
        yield from self._push(session, viewer, full=bool(cmd.int("full", 0)))
        return {"session": session.name}


class VNCViewer:
    """Client-side viewer: reconstructs the framebuffer from updates.

    Bind it to a datagram port on the access-point host, attach to a
    session, and apply updates as they arrive.  Runs anywhere — podium
    terminals, offices — while the workspace stays on the server host.
    """

    def __init__(self, ctx, host, server_address: Address, session: str, password: str):
        self.ctx = ctx
        self.host = host
        self.server_address = server_address
        self.session = session
        self.password = password
        self.framebuffer: Optional[np.ndarray] = None
        self.updates_received = 0
        self.bytes_received = 0
        self._sock = ctx.net.bind_datagram(host)
        self._conn = None

    @property
    def udp_address(self) -> Address:
        return self._sock.address

    def attach(self, client) -> Generator:
        """Attach via an existing :class:`ServiceClient`; waits for the
        initial full-frame push."""
        from repro.lang import ACECmdLine

        self._conn = yield from client.connect(self.server_address)
        reply = yield from self._conn.call(
            ACECmdLine(
                "attachViewer",
                session=self.session,
                password=self.password,
                udp_host=self.host.name,
                udp_port=self._sock.address.port,
            )
        )
        self.framebuffer = np.zeros((reply.int("height"), reply.int("width")), dtype=np.uint8)
        yield from self.pump(min_updates=1)
        return reply

    def send_input(self, **kwargs) -> Generator:
        from repro.lang import ACECmdLine

        if self._conn is None:
            raise RuntimeError("viewer not attached")
        yield from self._conn.call(
            ACECmdLine("input", {"session": self.session, "password": self.password, **kwargs})
        )
        yield from self.pump()

    def pump(self, min_updates: int = 0) -> Generator:
        """Drain pending updates (blocking for at least ``min_updates``)."""
        applied = 0
        while True:
            if applied >= min_updates:
                found, item = self._sock.try_recv()
                if not found:
                    return applied
            else:
                item = yield from self._sock.recv()
            _source, update = item if isinstance(item, tuple) else (None, item)
            self._apply(update)
            applied += 1

    def _apply(self, update: FrameUpdate) -> None:
        assert self.framebuffer is not None
        offset = 0
        for (x, y, w, h) in update.rects:
            size = w * h
            block = np.frombuffer(update.pixels[offset : offset + size], dtype=np.uint8)
            self.framebuffer[y : y + h, x : x + w] = block.reshape(h, w)
            offset += size
        self.updates_received += 1
        self.bytes_received += update.wire_size()

    def detach(self) -> Generator:
        from repro.lang import ACECmdLine

        if self._conn is not None and not self._conn.closed:
            yield from self._conn.call(
                ACECmdLine(
                    "detachViewer",
                    session=self.session,
                    udp_host=self.host.name,
                    udp_port=self._sock.address.port,
                )
            )
            self._conn.close()
        self._sock.close()
