"""Generic ACE applications and the HAL's launch registry.

An :class:`Application` is a long-lived process pinned to a host.  The
paper's three execution classes (§5.1–5.3) are modeled as
:class:`AppClass`:

* ``TEMPORARY``  — nobody cares if it dies (word processors, browsers).
* ``RESTART``    — must be restarted after a crash; small outage tolerated.
* ``ROBUST``     — must not be down: hot state in the persistent store,
  failover handled by the restart manager (:mod:`repro.apps.robust`).

Concrete behaviours subclass :class:`Application` and override ``body``;
the HAL launches instances through an :class:`AppRegistry` of factories.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.net.host import Host, HostDownError
from repro.sim import Interrupt

from repro.core.context import DaemonContext


class AppClass(enum.Enum):
    """The three execution classes of §5.1–5.3."""

    TEMPORARY = "temporary"
    RESTART = "restart"
    ROBUST = "robust"


class AppState(enum.Enum):
    """Lifecycle state of an application process."""

    NEW = "new"
    RUNNING = "running"
    STOPPED = "stopped"   # orderly stop
    CRASHED = "crashed"   # exception or host death


_pid_counter = itertools.count(1000)


class Application:
    """Base class for anything the HAL can launch."""

    app_class = AppClass.TEMPORARY

    def __init__(self, ctx: DaemonContext, host: Host, name: str, args: str = ""):
        self.ctx = ctx
        self.host = host
        self.name = name
        self.args = args
        self.pid = next(_pid_counter)
        self.state = AppState.NEW
        self.exit_reason: Optional[str] = None
        self._proc = None
        self._exit_callbacks: List[Callable[["Application"], None]] = []

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "Application":
        if self.state is AppState.RUNNING:
            return self
        self.state = AppState.RUNNING
        self._proc = self.ctx.sim.process(self._run(), name=f"app:{self.name}:{self.pid}")
        return self

    def stop(self) -> None:
        if self.state is AppState.RUNNING and self._proc is not None:
            self._proc.interrupt("stopped")

    def crash(self) -> None:
        """Fault injection: make the app die as if it hit a bug."""
        if self.state is AppState.RUNNING and self._proc is not None:
            self._proc.interrupt("crash")

    def on_exit(self, callback: Callable[["Application"], None]) -> None:
        self._exit_callbacks.append(callback)

    @property
    def running(self) -> bool:
        return self.state is AppState.RUNNING

    # -- behaviour ----------------------------------------------------------
    def body(self) -> Generator:
        """Override: the application's work.  Default: idle forever."""
        while True:
            yield self.ctx.sim.timeout(3600.0)

    def _run(self) -> Generator:
        try:
            yield from self.body()
            self.state = AppState.STOPPED
            self.exit_reason = "completed"
        except Interrupt as intr:
            if intr.cause == "crash":
                self.state = AppState.CRASHED
                self.exit_reason = "injected crash"
            else:
                self.state = AppState.STOPPED
                self.exit_reason = str(intr.cause)
        except HostDownError:
            self.state = AppState.CRASHED
            self.exit_reason = "host down"
        except Exception as exc:  # noqa: BLE001 - app bugs become crashes
            self.state = AppState.CRASHED
            self.exit_reason = f"exception: {exc}"
        self.ctx.trace.emit(
            self.ctx.sim.now, f"app:{self.name}", "app-exit",
            pid=self.pid, state=self.state.value, reason=self.exit_reason,
        )
        for callback in self._exit_callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Application {self.name} pid={self.pid} {self.state.value}>"


class IdleApplication(Application):
    """Does nothing; the default TEMPORARY app ('word processor')."""


class CpuSpinner(Application):
    """Burns CPU in bursts — the load generator for placement experiments.

    args: ``"work=<bogomips-seconds> interval=<s> iterations=<n>"``
    (iterations<=0 = forever).
    """

    def body(self) -> Generator:
        params = _parse_kv(self.args)
        work = float(params.get("work", 100.0))
        interval = float(params.get("interval", 1.0))
        iterations = int(params.get("iterations", 0))
        count = 0
        while iterations <= 0 or count < iterations:
            yield from self.host.execute(work)
            yield self.ctx.sim.timeout(interval)
            count += 1


def _parse_kv(args: str) -> Dict[str, str]:
    out: Dict[str, str] = {}
    for part in args.split():
        if "=" in part:
            key, value = part.split("=", 1)
            out[key] = value
    return out


class AppHandle:
    """What the HAL records about a launched application."""

    def __init__(self, app: Application):
        self.app = app

    @property
    def pid(self) -> int:
        return self.app.pid

    @property
    def name(self) -> str:
        return self.app.name

    @property
    def running(self) -> bool:
        return self.app.running


AppFactory = Callable[[DaemonContext, Host, str], Application]


class AppRegistry:
    """Name → factory registry the HAL launches from."""

    def __init__(self) -> None:
        self._factories: Dict[str, AppFactory] = {}
        self.register("idle", lambda ctx, host, args: IdleApplication(ctx, host, "idle", args))
        self.register(
            "cpu_spinner", lambda ctx, host, args: CpuSpinner(ctx, host, "cpu_spinner", args)
        )

    def register(self, name: str, factory: AppFactory) -> None:
        self._factories[name] = factory

    def known(self) -> List[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def create(self, name: str, ctx: DaemonContext, host: Host, args: str = "") -> Application:
        try:
            factory = self._factories[name]
        except KeyError:
            raise KeyError(f"unknown application {name!r}; known: {self.known()}")
        return factory(ctx, host, args)
