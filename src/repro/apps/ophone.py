"""O-Phone — full-duplex telephone over IP (§5.5).

The paper adapts the Gnome O-Phone; here it is an ACE stream daemon a user
runs from a workspace: ``dial`` another O-Phone, signalling goes over the
command channel (invite → accept), and while the call is up both sides
stream microphone audio to each other over UDP with a small reorder
(jitter) buffer on the receive side.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics
from repro.net import Address, ConnectionClosed, ConnectionRefused
from repro.core.client import CallError
from repro.core.daemon import Request, ServiceError
from repro.services import dsp
from repro.services.audio import CHUNK_PERIOD
from repro.services.streams import MediaChunk, StreamDaemon


class OPhoneDaemon(StreamDaemon):
    """One telephone endpoint."""

    service_type = "OPhone"

    def __init__(self, ctx, name, host, *, auto_answer: bool = True,
                 jitter_chunks: int = 3, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.auto_answer = auto_answer
        self.jitter_chunks = jitter_chunks
        self.state = "idle"  # idle | dialing | in_call
        self.peer: Optional[Address] = None
        self.peer_name: str = ""
        self._mic_queue: deque = deque()
        self._mic_seq = 0
        self._rx_buffer: Dict[int, np.ndarray] = {}
        self._rx_next = 0
        self._speaker: List[np.ndarray] = []
        self.calls_made = 0
        self.calls_received = 0
        self.setup_latency: Optional[float] = None

    def build_semantics(self, sem: CommandSemantics) -> None:
        super().build_semantics(sem)
        sem.define(
            "dial",
            ArgSpec("host", ArgType.STRING),
            ArgSpec("port", ArgType.INTEGER),
            description="place a call to another O-Phone",
        )
        sem.define("hangup")
        sem.define("getCallState")
        sem.define(
            "dialUser",
            ArgSpec("user", ArgType.STRING),
            description="the §5.5 'ACE GUI' feature: call a person, not a "
                        "number — resolves their location via AUD + ASD",
        )
        sem.define(
            "invite",
            ArgSpec("caller", ArgType.STRING),
            ArgSpec("host", ArgType.STRING),
            ArgSpec("port", ArgType.INTEGER),
            description="inbound call signalling (phone-to-phone)",
        )
        sem.define("remoteHangup", ArgSpec("caller", ArgType.STRING, required=False))
        sem.define("speak", ArgSpec("duration", ArgType.NUMBER))

    # ------------------------------------------------------------------
    # Signalling
    # ------------------------------------------------------------------
    def cmd_dial(self, request: Request) -> Generator:
        if self.state != "idle":
            raise ServiceError(f"phone busy ({self.state})")
        cmd = request.command
        peer = Address(cmd.str("host"), cmd.int("port"))
        self.state = "dialing"
        t0 = self.ctx.sim.now
        client = self._service_client()
        try:
            reply = yield from client.call_once(
                peer,
                ACECmdLine("invite", caller=self.name,
                           host=self.host.name, port=self.port),
            )
        except (CallError, ConnectionClosed, ConnectionRefused) as exc:
            self.state = "idle"
            raise ServiceError(f"call failed: {exc}")
        if reply.int("accepted", 0) != 1:
            self.state = "idle"
            raise ServiceError("call rejected")
        self._begin_call(peer, reply.str("callee", ""))
        self.setup_latency = self.ctx.sim.now - t0
        self.calls_made += 1
        return {"connected": 1, "setup_s": round(self.setup_latency, 6)}

    def cmd_dialUser(self, request: Request) -> Generator:
        """Call a *person*: find where they last identified (AUD), find an
        O-Phone in that room (ASD), and dial it."""
        from repro.services.asd import asd_lookup

        username = request.command.str("user")
        client = self._service_client()
        try:
            auds = yield from asd_lookup(client, self.ctx.asd_address, name="aud")
            if not auds:
                raise ServiceError("no user database available")
            user_reply = yield from client.call_once(
                auds[0].address, ACECmdLine("getUser", username=username)
            )
        except (CallError, ConnectionClosed, ConnectionRefused) as exc:
            raise ServiceError(f"cannot resolve user {username!r}: {exc}")
        location = user_reply.str("location", "unknown")
        if location == "unknown":
            raise ServiceError(f"user {username!r} has no known location")
        phones = yield from asd_lookup(client, self.ctx.asd_address,
                                       cls="OPhone", room=location)
        phones = [p for p in phones if p.name != self.name]
        if not phones:
            raise ServiceError(f"no O-Phone in room {location!r}")
        dial = self.semantics.validate(
            ACECmdLine("dial", host=phones[0].host, port=phones[0].port)
        )
        reply = yield from self.cmd_dial(
            Request(command=dial, principal=request.principal,
                    received_at=self.ctx.sim.now)
        )
        reply = dict(reply)
        reply.update(user=username, room=location, phone=phones[0].name)
        return reply

    def cmd_invite(self, request: Request) -> dict:
        cmd = request.command
        if self.state != "idle" or not self.auto_answer:
            return {"accepted": 0}
        peer = Address(cmd.str("host"), cmd.int("port"))
        self._begin_call(peer, cmd.str("caller"))
        self.calls_received += 1
        return {"accepted": 1, "callee": self.name}

    def _begin_call(self, peer: Address, peer_name: str) -> None:
        self.state = "in_call"
        self.peer = peer
        self.peer_name = peer_name
        self._rx_next = 0
        self._rx_buffer.clear()
        self._mic_seq = 0
        self._spawn(self._uplink_loop(), "uplink")
        self.ctx.trace.emit(self.ctx.sim.now, self.name, "call-connected", peer=peer_name)

    def cmd_hangup(self, request: Request) -> Generator:
        if self.state != "in_call":
            return {"hung_up": 0}
        peer, self.peer = self.peer, None
        self.state = "idle"
        client = self._service_client()
        try:
            yield from client.call_once(
                peer, ACECmdLine("remoteHangup", caller=self.name)
            )
        except (CallError, ConnectionClosed, ConnectionRefused):
            pass
        return {"hung_up": 1}

    def cmd_remoteHangup(self, request: Request) -> dict:
        self.state = "idle"
        self.peer = None
        return {}

    def cmd_getCallState(self, request: Request) -> dict:
        return {"state": self.state, "peer": self.peer_name or "none",
                "rx_chunks": self._rx_next}

    # ------------------------------------------------------------------
    # Media
    # ------------------------------------------------------------------
    def cmd_speak(self, request: Request) -> dict:
        """The user talks into the handset for ``duration`` seconds."""
        duration = request.command.float("duration")
        rng = self.ctx.rng.np(f"ophone.{self.name}.{self.ctx.sim.now}")
        signal = dsp.speech_like(int(duration * dsp.SAMPLE_RATE), rng)
        self.queue_voice(signal)
        return {"queued_s": duration}

    def queue_voice(self, signal: np.ndarray) -> None:
        for block in dsp.chunk_signal(signal):
            self._mic_queue.append(block)

    def _uplink_loop(self) -> Generator:
        silence = np.zeros(dsp.CHUNK_SAMPLES, dtype=np.float32)
        while self.running and self.state == "in_call":
            peer = self.peer
            if peer is None:
                return
            block = self._mic_queue.popleft() if self._mic_queue else silence
            chunk = MediaChunk.from_audio(block, self._mic_seq, self.ctx.sim.now)
            self._mic_seq += 1
            yield from self._datagram.send(peer, chunk)
            yield self.ctx.sim.timeout(CHUNK_PERIOD)

    def on_chunk(self, source: Address, chunk: MediaChunk):
        """Jitter-buffered receive: play in order, skip holes only after
        the buffer depth is exceeded."""
        self._rx_buffer[chunk.seq] = chunk.audio()
        while self._rx_next in self._rx_buffer:
            self._speaker.append(self._rx_buffer.pop(self._rx_next))
            self._rx_next += 1
        if len(self._rx_buffer) > self.jitter_chunks:
            # A hole (lost datagram): skip ahead to the earliest buffered.
            earliest = min(self._rx_buffer)
            self._speaker.append(np.zeros(dsp.CHUNK_SAMPLES, dtype=np.float32))
            self._rx_next = earliest
        return None

    def heard(self) -> np.ndarray:
        if not self._speaker:
            return np.zeros(0, dtype=np.float32)
        return np.concatenate(self._speaker)
