"""The ACE service-control GUI (Fig. 2), modeled headlessly.

The paper's GUI shows "available ACE services and devices … in a
hierarchical tree fashion based on their location within ACE"; selecting
one shows "the appropriate parameter controls".  This model builds that
tree from the Room Database + ASD and derives the parameter controls from
the daemon's own command semantics (``listCommands`` + argument specs), so
any new device type gets a GUI for free — the paper's modularity story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.lang import ACECmdLine
from repro.core.client import CallError, ServiceClient
from repro.net import Address
from repro.services.asd import ServiceRecord, asd_lookup


@dataclass
class ControlNode:
    """One row of the left-hand tree."""

    label: str
    kind: str                      # "room" | "service"
    record: Optional[ServiceRecord] = None
    children: List["ControlNode"] = field(default_factory=list)

    def walk(self, depth: int = 0):
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)


@dataclass
class ParameterControl:
    """One right-hand control: an invocable command with argument slots."""

    command: str
    description: str = ""


class ACEControlGUI:
    """Headless Fig. 2: tree on the left, parameter controls on the right."""

    def __init__(self, client: ServiceClient, asd_address: Address,
                 roomdb_address: Address):
        self.client = client
        self.asd_address = asd_address
        self.roomdb_address = roomdb_address
        self.root = ControlNode("ACE", "room")
        self.selected: Optional[ServiceRecord] = None
        self.controls: List[ParameterControl] = []
        self._connection = None

    # -- tree construction -------------------------------------------------
    def refresh(self) -> Generator:
        """Rebuild the tree: rooms from the RoomDB, services from the ASD."""
        rooms_reply = yield from self.client.call_once(
            self.roomdb_address, ACECmdLine("listRooms")
        )
        records = yield from asd_lookup(self.client, self.asd_address)
        by_room: Dict[str, List[ServiceRecord]] = {}
        for record in records:
            by_room.setdefault(record.room, []).append(record)
        self.root = ControlNode("ACE", "room")
        room_names = list(rooms_reply.get("rooms", ()))
        for extra in sorted(by_room):
            if extra not in room_names:
                room_names.append(extra)
        for room in room_names:
            node = ControlNode(room, "room")
            for record in sorted(by_room.get(room, []), key=lambda r: r.name):
                node.children.append(ControlNode(record.name, "service", record))
            self.root.children.append(node)
        return self.root

    def tree_lines(self) -> List[str]:
        """The rendered left pane (for tests and terminal demos)."""
        return [("    " * depth) + node.label for depth, node in self.root.walk()]

    def find(self, service_name: str) -> Optional[ControlNode]:
        for _depth, node in self.root.walk():
            if node.kind == "service" and node.label == service_name:
                return node
        return None

    # -- selection / controls ------------------------------------------------
    def select(self, service_name: str) -> Generator:
        """Click a service: connect and derive its parameter controls."""
        node = self.find(service_name)
        if node is None or node.record is None:
            raise CallError(f"no service {service_name!r} in the tree")
        if self._connection is not None:
            self._connection.close()
        self._connection = yield from self.client.connect(node.record.address)
        reply = yield from self._connection.call(ACECmdLine("listCommands"))
        hidden = {"attach", "addNotification", "removeNotification", "ping",
                  "listCommands", "getInfo"}
        self.controls = [
            ParameterControl(command=name)
            for name in reply.get("commands", ())
            if name not in hidden
        ]
        self.selected = node.record
        return self.controls

    def invoke(self, command: ACECmdLine) -> Generator:
        """Press a control: run the command on the selected service."""
        if self._connection is None:
            raise CallError("select a service first")
        reply = yield from self._connection.call(command)
        return reply

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None
