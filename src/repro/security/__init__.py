"""Security substrate: toy crypto, certificates, and KeyNote trust management.

Two layers, matching Chapter 3 of the paper:

* **Transport security** (§3.1): :mod:`repro.security.crypto` provides the
  Diffie–Hellman / Schnorr / keystream primitives that
  :class:`repro.net.secure.SecureChannel` uses to emulate SSL.  These are
  *educational* implementations — real code paths, real handshakes, real
  key material — but NOT cryptographically strong; they exist so the
  security-overhead experiment (E5) measures genuine work.

* **Authorization** (§3.2): :mod:`repro.security.keynote` implements the
  KeyNote trust-management system (RFC 2704 subset): assertions with
  authorizer/licensees/conditions, signed credentials, and a compliance
  checker that walks delegation chains.
"""

from repro.security.crypto import (
    Certificate,
    CertificateAuthority,
    CertificateError,
    KeyPair,
    KeystreamCipher,
    dh_keypair,
    dh_shared_secret,
    hmac_sha256,
    sha256_hex,
)
from repro.security.keynote import (
    ActionAttributes,
    Assertion,
    ComplianceChecker,
    ComplianceValue,
    KeyNoteError,
    parse_assertion,
)

__all__ = [
    "ActionAttributes",
    "Assertion",
    "Certificate",
    "CertificateAuthority",
    "CertificateError",
    "ComplianceChecker",
    "ComplianceValue",
    "KeyNoteError",
    "KeyPair",
    "KeystreamCipher",
    "dh_keypair",
    "dh_shared_secret",
    "hmac_sha256",
    "parse_assertion",
    "sha256_hex",
]
