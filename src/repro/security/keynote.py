"""KeyNote trust management (RFC 2704 subset) — §3.2 of the paper.

ACE stores KeyNote *assertions* in the Authorization Database and consults a
compliance checker before executing any command (Fig. 10).  This module
implements the working core of RFC 2704:

* the assertion format (``Authorizer`` / ``Licensees`` / ``Conditions`` /
  ``Signature`` fields, ``Local-Constants`` substitution);
* licensee expressions with ``&&``, ``||``, parentheses, and ``k-of(...)``
  thresholds;
* the conditions expression language (comparisons, boolean operators,
  string and numeric literals, attribute references) mapping to an ordered
  set of *compliance values* (e.g. ``deny < permit``);
* the delegation-graph compliance checker: requester principals start at
  maximum trust and assertions propagate (capped) trust toward ``POLICY``
  via fixpoint iteration, so delegation chains of any depth — including
  cycles — resolve deterministically;
* credential signature verification against the toy Schnorr scheme
  (policy assertions are locally trusted and unsigned, per the RFC).

The subset is documented where it diverges: no regex operator, no float
dot-notation versions, no nested assertion-per-licensee signature formats.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.security.crypto import KeyPair, verify_signature

POLICY = "POLICY"

#: Default compliance-value ordering, least to most permissive.
DEFAULT_VALUES: Tuple[str, ...] = ("deny", "permit")


class KeyNoteError(Exception):
    """Malformed assertion, bad signature, or evaluation failure."""


ActionAttributes = Mapping[str, Union[str, int, float]]


# ---------------------------------------------------------------------------
# Licensee expressions
# ---------------------------------------------------------------------------

class LicPrincipal:
    """A single licensee principal."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def value(self, ratings: Mapping[str, int], floor: int) -> int:
        return ratings.get(self.name, floor)

    def principals(self) -> Iterable[str]:
        yield self.name


class LicAnd:
    """Conjunction: every operand must reach the value (min)."""

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence):
        self.parts = list(parts)

    def value(self, ratings: Mapping[str, int], floor: int) -> int:
        return min(p.value(ratings, floor) for p in self.parts)

    def principals(self) -> Iterable[str]:
        for p in self.parts:
            yield from p.principals()


class LicOr:
    """Alternatives: the best operand decides (max)."""

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence):
        self.parts = list(parts)

    def value(self, ratings: Mapping[str, int], floor: int) -> int:
        return max(p.value(ratings, floor) for p in self.parts)

    def principals(self) -> Iterable[str]:
        for p in self.parts:
            yield from p.principals()


class LicThreshold:
    """``k-of(p1, p2, ...)``: the k-th largest sub-value."""

    __slots__ = ("k", "parts")

    def __init__(self, k: int, parts: Sequence):
        if not 1 <= k <= len(parts):
            raise KeyNoteError(f"threshold k={k} out of range for {len(parts)} licensees")
        self.k = k
        self.parts = list(parts)

    def value(self, ratings: Mapping[str, int], floor: int) -> int:
        vals = sorted((p.value(ratings, floor) for p in self.parts), reverse=True)
        return vals[self.k - 1]

    def principals(self) -> Iterable[str]:
        for p in self.parts:
            yield from p.principals()


# ---------------------------------------------------------------------------
# Tokenizer shared by the licensee and condition grammars
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>"(?:[^"\\]|\\.)*")
      | (?P<kof>\d+-of\b)
      | (?P<number>-?\d+\.\d+|-?\d+)
      | (?P<ident>[A-Za-z_][A-Za-z0-9_.:-]*)
      | (?P<op><=|>=|==|!=|&&|\|\||->|[-<>!()+,;*])
    )
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise KeyNoteError(f"cannot tokenize {text[pos:pos + 20]!r}")
        pos = match.end()
        for kind in ("string", "kof", "number", "ident", "op"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _TokenStream:
    def __init__(self, tokens: List[Tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise KeyNoteError("unexpected end of input")
        self.pos += 1
        return tok

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[str]:
        tok = self.peek()
        if tok and tok[0] == kind and (value is None or tok[1] == value):
            self.pos += 1
            return tok[1]
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        got = self.accept(kind, value)
        if got is None:
            raise KeyNoteError(f"expected {value or kind!r}, got {self.peek()!r}")
        return got

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)


def _unquote(text: str) -> str:
    return re.sub(r"\\(.)", r"\1", text[1:-1])


# ---------------------------------------------------------------------------
# Licensee parser
# ---------------------------------------------------------------------------

def parse_licensees(text: str, constants: Mapping[str, str]) -> Union[
    LicPrincipal, LicAnd, LicOr, LicThreshold
]:
    stream = _TokenStream(_tokenize(text))
    expr = _parse_lic_or(stream, constants)
    if not stream.at_end():
        raise KeyNoteError(f"trailing tokens in licensees: {stream.peek()!r}")
    return expr


def _parse_lic_or(stream: _TokenStream, consts: Mapping[str, str]):
    parts = [_parse_lic_and(stream, consts)]
    while stream.accept("op", "||"):
        parts.append(_parse_lic_and(stream, consts))
    return parts[0] if len(parts) == 1 else LicOr(parts)


def _parse_lic_and(stream: _TokenStream, consts: Mapping[str, str]):
    parts = [_parse_lic_primary(stream, consts)]
    while stream.accept("op", "&&"):
        parts.append(_parse_lic_primary(stream, consts))
    return parts[0] if len(parts) == 1 else LicAnd(parts)


def _parse_lic_primary(stream: _TokenStream, consts: Mapping[str, str]):
    if stream.accept("op", "("):
        inner = _parse_lic_or(stream, consts)
        stream.expect("op", ")")
        return inner
    tok = stream.peek()
    if tok and tok[0] == "kof":
        stream.next()
        k = int(tok[1].split("-")[0])
        stream.expect("op", "(")
        parts = [_parse_lic_or(stream, consts)]
        while stream.accept("op", ","):
            parts.append(_parse_lic_or(stream, consts))
        stream.expect("op", ")")
        return LicThreshold(k, parts)
    if tok and tok[0] == "string":
        stream.next()
        return LicPrincipal(_unquote(tok[1]))
    if tok and tok[0] == "ident":
        stream.next()
        name = tok[1]
        return LicPrincipal(consts.get(name, name))
    raise KeyNoteError(f"bad licensee token {tok!r}")


# ---------------------------------------------------------------------------
# Condition expressions
# ---------------------------------------------------------------------------

class _CondNode:
    __slots__ = ()


@dataclass(frozen=True)
class _Comparison(_CondNode):
    op: str
    left: Tuple[str, str]   # (kind, value) with kind in ident/string/number
    right: Tuple[str, str]

    def eval(self, attrs: ActionAttributes) -> bool:
        lhs = _operand_value(self.left, attrs)
        rhs = _operand_value(self.right, attrs)
        lnum, rnum = _as_number(lhs), _as_number(rhs)
        if lnum is not None and rnum is not None:
            lhs, rhs = lnum, rnum
        else:
            lhs, rhs = str(lhs), str(rhs)
        if self.op == "==":
            return lhs == rhs
        if self.op == "!=":
            return lhs != rhs
        if self.op == "<":
            return lhs < rhs
        if self.op == ">":
            return lhs > rhs
        if self.op == "<=":
            return lhs <= rhs
        if self.op == ">=":
            return lhs >= rhs
        raise KeyNoteError(f"unknown comparison op {self.op!r}")


@dataclass(frozen=True)
class _Not(_CondNode):
    inner: _CondNode

    def eval(self, attrs: ActionAttributes) -> bool:
        return not self.inner.eval(attrs)


@dataclass(frozen=True)
class _BoolOp(_CondNode):
    op: str
    parts: Tuple[_CondNode, ...]

    def eval(self, attrs: ActionAttributes) -> bool:
        if self.op == "&&":
            return all(p.eval(attrs) for p in self.parts)
        return any(p.eval(attrs) for p in self.parts)


@dataclass(frozen=True)
class _Literal(_CondNode):
    value: bool

    def eval(self, attrs: ActionAttributes) -> bool:
        return self.value


def _operand_value(operand: Tuple[str, str], attrs: ActionAttributes):
    kind, value = operand
    if kind == "string":
        return _unquote(value)
    if kind == "number":
        return float(value)
    if kind == "ident":
        if value == "true":
            return "true"
        if value == "false":
            return "false"
        # Unknown attributes evaluate to the empty string, per RFC 2704.
        return attrs.get(value, "")
    raise KeyNoteError(f"bad operand {operand!r}")


def _as_number(value) -> Optional[float]:
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(str(value))
    except (TypeError, ValueError):
        return None


@dataclass(frozen=True)
class ConditionClause:
    """``expr -> "value"`` — a bare expr maps to the top compliance value."""

    expr: _CondNode
    value: Optional[str]  # None = assertion's maximum


def parse_conditions(text: str) -> List[ConditionClause]:
    """Parse the Conditions field into ordered clauses."""
    stream = _TokenStream(_tokenize(text))
    clauses: List[ConditionClause] = []
    while not stream.at_end():
        expr = _parse_cond_or(stream)
        value: Optional[str] = None
        if stream.accept("op", "->"):
            value = _unquote(stream.expect("string"))
        clauses.append(ConditionClause(expr, value))
        if not stream.accept("op", ";"):
            break
    if not stream.at_end():
        raise KeyNoteError(f"trailing tokens in conditions: {stream.peek()!r}")
    return clauses


def _parse_cond_or(stream: _TokenStream) -> _CondNode:
    parts = [_parse_cond_and(stream)]
    while stream.accept("op", "||"):
        parts.append(_parse_cond_and(stream))
    return parts[0] if len(parts) == 1 else _BoolOp("||", tuple(parts))


def _parse_cond_and(stream: _TokenStream) -> _CondNode:
    parts = [_parse_cond_not(stream)]
    while stream.accept("op", "&&"):
        parts.append(_parse_cond_not(stream))
    return parts[0] if len(parts) == 1 else _BoolOp("&&", tuple(parts))


def _parse_cond_not(stream: _TokenStream) -> _CondNode:
    if stream.accept("op", "!"):
        return _Not(_parse_cond_not(stream))
    if stream.accept("op", "("):
        inner = _parse_cond_or(stream)
        stream.expect("op", ")")
        return inner
    return _parse_comparison(stream)


def _parse_comparison(stream: _TokenStream) -> _CondNode:
    tok = stream.peek()
    if tok and tok[0] == "ident" and tok[1] in ("true", "false"):
        nxt = stream.tokens[stream.pos + 1] if stream.pos + 1 < len(stream.tokens) else None
        if nxt is None or nxt[1] in (";", "->", "&&", "||", ")"):
            stream.next()
            return _Literal(tok[1] == "true")
    left = stream.next()
    if left[0] not in ("ident", "string", "number"):
        raise KeyNoteError(f"bad comparison operand {left!r}")
    op = stream.expect("op")
    if op not in ("==", "!=", "<", ">", "<=", ">="):
        raise KeyNoteError(f"bad comparison operator {op!r}")
    right = stream.next()
    if right[0] not in ("ident", "string", "number"):
        raise KeyNoteError(f"bad comparison operand {right!r}")
    return _Comparison(op, left, right)


# ---------------------------------------------------------------------------
# Assertions
# ---------------------------------------------------------------------------

_FIELD_RE = re.compile(r"^([A-Za-z-]+):\s*(.*)$")


@dataclass
class Assertion:
    """One KeyNote assertion: policy (unsigned) or credential (signed)."""

    authorizer: str
    licensees_text: str
    conditions_text: str
    comment: str = ""
    local_constants: Dict[str, str] = field(default_factory=dict)
    signature: Optional[Tuple[int, int]] = None
    licensees: object = field(init=False, repr=False)
    conditions: List[ConditionClause] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.licensees = parse_licensees(self.licensees_text, self.local_constants)
        self.conditions = parse_conditions(self.conditions_text) if self.conditions_text.strip() else []

    @property
    def is_policy(self) -> bool:
        return self.authorizer == POLICY

    def signed_body(self) -> str:
        """Canonical text covered by a credential signature."""
        lines = ["KeyNote-Version: 2"]
        for name, value in sorted(self.local_constants.items()):
            lines.append(f'Local-Constants: {name} = "{value}"')
        lines.append(f"Authorizer: {self.authorizer}")
        lines.append(f"Licensees: {self.licensees_text}")
        lines.append(f"Conditions: {self.conditions_text}")
        return "\n".join(lines)

    def sign(self, keypair: KeyPair) -> "Assertion":
        """Sign as a credential.  The keypair must belong to the authorizer."""
        if keypair.principal() != self.authorizer:
            raise KeyNoteError(
                f"authorizer {self.authorizer!r} does not match signing key "
                f"{keypair.principal()!r}"
            )
        self.signature = keypair.sign(self.signed_body())
        return self

    def verify(self, principal_keys: Mapping[str, int]) -> bool:
        """Verify the credential signature (policies verify trivially)."""
        if self.is_policy:
            return True
        if self.signature is None:
            return False
        public = principal_keys.get(self.authorizer)
        if public is None:
            return False
        return verify_signature(public, self.signed_body(), self.signature)

    def to_text(self) -> str:
        body = self.signed_body()
        if self.comment:
            body += f"\nComment: {self.comment}"
        if self.signature is not None:
            body += f"\nSignature: sig-schnorr:{self.signature[0]:x}:{self.signature[1]:x}"
        return body

    def wire_size(self) -> int:
        return len(self.to_text())


def parse_assertion(text: str) -> Assertion:
    """Parse the RFC-2704-style textual form produced by ``to_text``."""
    fields: Dict[str, str] = {}
    constants: Dict[str, str] = {}
    current: Optional[str] = None
    for raw in text.splitlines():
        line = raw.rstrip()
        if not line.strip():
            continue
        if line[0].isspace() and current:
            fields[current] += " " + line.strip()
            continue
        match = _FIELD_RE.match(line)
        if not match:
            raise KeyNoteError(f"malformed assertion line {line!r}")
        name, value = match.group(1), match.group(2)
        if name == "Local-Constants":
            const = re.match(r"^([A-Za-z_][A-Za-z0-9_]*)\s*=\s*\"(.*)\"$", value)
            if not const:
                raise KeyNoteError(f"malformed Local-Constants {value!r}")
            constants[const.group(1)] = const.group(2)
            current = None
        else:
            fields[name] = value
            current = name
    if "Authorizer" not in fields or "Licensees" not in fields:
        raise KeyNoteError("assertion missing Authorizer or Licensees")
    signature: Optional[Tuple[int, int]] = None
    if "Signature" in fields:
        sig = re.match(r"^sig-schnorr:([0-9a-f]+):([0-9a-f]+)$", fields["Signature"])
        if not sig:
            raise KeyNoteError(f"malformed signature {fields['Signature']!r}")
        signature = (int(sig.group(1), 16), int(sig.group(2), 16))
    return Assertion(
        authorizer=fields["Authorizer"].strip().strip('"'),
        licensees_text=fields["Licensees"],
        conditions_text=fields.get("Conditions", ""),
        comment=fields.get("Comment", ""),
        local_constants=constants,
        signature=signature,
    )


# ---------------------------------------------------------------------------
# Compliance checker
# ---------------------------------------------------------------------------

class ComplianceValue:
    """Ordered compliance values; comparisons go through indices."""

    def __init__(self, values: Sequence[str] = DEFAULT_VALUES):
        if len(values) < 2:
            raise KeyNoteError("need at least two compliance values")
        self.values = tuple(values)
        self.index = {v: i for i, v in enumerate(values)}

    @property
    def minimum(self) -> str:
        return self.values[0]

    @property
    def maximum(self) -> str:
        return self.values[-1]

    def rank(self, value: str) -> int:
        try:
            return self.index[value]
        except KeyError:
            raise KeyNoteError(f"unknown compliance value {value!r}")


class ComplianceChecker:
    """Evaluate a query against policies + credentials (RFC 2704 §5)."""

    def __init__(
        self,
        assertions: Iterable[Assertion],
        values: Sequence[str] = DEFAULT_VALUES,
        principal_keys: Optional[Mapping[str, int]] = None,
        strict_signatures: bool = True,
    ):
        self.values = ComplianceValue(values)
        self.principal_keys = dict(principal_keys or {})
        self.assertions: List[Assertion] = []
        for assertion in assertions:
            if strict_signatures and not assertion.verify(self.principal_keys):
                continue  # unverifiable credentials are simply ignored
            self.assertions.append(assertion)

    def _assertion_condition_rank(self, assertion: Assertion, attrs: ActionAttributes) -> int:
        """Highest-ranked clause value whose expression holds."""
        best = 0  # minimum value if nothing matches
        for clause in assertion.conditions:
            try:
                holds = clause.expr.eval(attrs)
            except KeyNoteError:
                holds = False
            if holds:
                rank = (
                    len(self.values.values) - 1
                    if clause.value is None
                    else self.values.rank(clause.value)
                )
                best = max(best, rank)
        if not assertion.conditions:
            best = len(self.values.values) - 1  # no conditions = unconditional
        return best

    def query(self, requesters: Iterable[str], attrs: ActionAttributes) -> str:
        """The compliance value POLICY assigns to this request."""
        top = len(self.values.values) - 1
        ratings: Dict[str, int] = {name: top for name in requesters}
        # Fixpoint over the delegation graph (handles any depth and cycles;
        # ranks only increase, so it terminates in <= |assertions| * |values|).
        changed = True
        while changed:
            changed = False
            for assertion in self.assertions:
                cond_rank = self._assertion_condition_rank(assertion, attrs)
                lic_rank = assertion.licensees.value(ratings, 0)
                rank = min(cond_rank, lic_rank)
                if rank > ratings.get(assertion.authorizer, 0):
                    ratings[assertion.authorizer] = rank
                    changed = True
        return self.values.values[ratings.get(POLICY, 0)]

    def authorized(self, requesters: Iterable[str], attrs: ActionAttributes, minimum: str = "permit") -> bool:
        return self.values.rank(self.query(requesters, attrs)) >= self.values.rank(minimum)
