"""Toy-but-functional cryptographic primitives.

Everything here is deterministic given an RNG stream and runs offline:

* Diffie–Hellman key agreement over the RFC 2409 1024-bit MODP group.
* Schnorr signatures in the prime-order subgroup of the same group
  (deterministic nonces, so simulations replay identically).
* A SHA-256-CTR keystream cipher plus HMAC-SHA256 record integrity.
* X.509-flavoured certificates with a single-level CA.

**Not for production use** — the point is to exercise genuine handshake /
sign / verify / encrypt code paths and cost structure, per DESIGN.md's
substitution table.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import random
from dataclasses import dataclass
from typing import Tuple

# RFC 2409 "Second Oakley Group" 1024-bit safe prime; generator 2.
MODP_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF",
    16,
)
MODP_Q = (MODP_P - 1) // 2  # prime order of the quadratic-residue subgroup
MODP_G = 4  # = 2^2, generates the order-q subgroup


def sha256_hex(*parts: bytes | str) -> str:
    """Hex digest over the concatenation of parts (strings are UTF-8)."""
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8") if isinstance(part, str) else part)
    return h.hexdigest()


def sha256_int(*parts: bytes | str) -> int:
    return int(sha256_hex(*parts), 16)


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    return _hmac.new(key, message, hashlib.sha256).digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    return _hmac.compare_digest(a, b)


# ---------------------------------------------------------------------------
# Diffie–Hellman
# ---------------------------------------------------------------------------

def dh_keypair(rng: random.Random) -> Tuple[int, int]:
    """Return ``(private, public)`` with ``public = g^private mod p``."""
    priv = rng.randrange(2, MODP_Q - 1)
    return priv, pow(MODP_G, priv, MODP_P)


def dh_shared_secret(private: int, peer_public: int) -> bytes:
    """The shared secret as 128 bytes, for key derivation."""
    if not 1 < peer_public < MODP_P - 1:
        raise ValueError("peer public value out of range")
    secret = pow(peer_public, private, MODP_P)
    return secret.to_bytes(128, "big")


def derive_keys(shared: bytes, transcript: str) -> Tuple[bytes, bytes]:
    """Derive (cipher_key, mac_key) from the shared secret + transcript."""
    base = hmac_sha256(shared, transcript.encode("utf-8"))
    return hmac_sha256(base, b"cipher"), hmac_sha256(base, b"mac")


# ---------------------------------------------------------------------------
# Schnorr signatures
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class KeyPair:
    """A Schnorr signing keypair. ``public`` doubles as a principal id."""

    private: int
    public: int

    @classmethod
    def generate(cls, rng: random.Random) -> "KeyPair":
        priv = rng.randrange(2, MODP_Q - 1)
        return cls(priv, pow(MODP_G, priv, MODP_P))

    def principal(self) -> str:
        """Short stable identifier derived from the public key (KeyNote
        principals are keys; we use the hash for readability)."""
        return "key:" + sha256_hex(str(self.public))[:16]

    def sign(self, message: str) -> Tuple[int, int]:
        """Deterministic Schnorr signature ``(e, s)`` over ``message``."""
        k = sha256_int(str(self.private), message, "nonce") % MODP_Q
        if k < 2:
            k += 2
        r = pow(MODP_G, k, MODP_P)
        e = sha256_int(str(r), message) % MODP_Q
        s = (k + self.private * e) % MODP_Q
        return e, s


def verify_signature(public: int, message: str, signature: Tuple[int, int]) -> bool:
    """Check ``g^s == r * y^e`` with ``r`` recovered from the signature."""
    try:
        e, s = signature
    except (TypeError, ValueError):
        return False
    if not (0 <= e < MODP_Q and 0 <= s < MODP_Q):
        return False
    # g^s = g^k * g^(x e) = r * y^e  =>  r = g^s * y^(-e)
    r = (pow(MODP_G, s, MODP_P) * pow(public, MODP_Q - e, MODP_P)) % MODP_P
    return sha256_int(str(r), message) % MODP_Q == e


# ---------------------------------------------------------------------------
# Keystream cipher
# ---------------------------------------------------------------------------

class KeystreamCipher:
    """SHA-256 in counter mode XORed over the plaintext.

    Symmetric: ``decrypt(nonce, encrypt(nonce, m)) == m``.  Each record gets
    its own nonce so the keystream never repeats.
    """

    def __init__(self, key: bytes):
        if len(key) < 16:
            raise ValueError("cipher key too short")
        self.key = key

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        out = bytearray()
        counter = 0
        while len(out) < length:
            block = hashlib.sha256(self.key + nonce + counter.to_bytes(8, "big")).digest()
            out.extend(block)
            counter += 1
        return bytes(out[:length])

    def encrypt(self, nonce: bytes, plaintext: bytes) -> bytes:
        ks = self._keystream(nonce, len(plaintext))
        return bytes(a ^ b for a, b in zip(plaintext, ks))

    decrypt = encrypt  # XOR is its own inverse


# ---------------------------------------------------------------------------
# Certificates
# ---------------------------------------------------------------------------

class CertificateError(Exception):
    """Bad signature, unknown issuer, or malformed certificate."""


@dataclass(frozen=True)
class Certificate:
    """Binds ``subject`` (a service/user name) to a Schnorr public key."""

    subject: str
    public_key: int
    issuer: str
    signature: Tuple[int, int]

    def signed_payload(self) -> str:
        return f"cert|{self.subject}|{self.public_key}|{self.issuer}"

    def wire_size(self) -> int:
        return len(self.signed_payload()) + 64  # signature overhead


class CertificateAuthority:
    """The single trust root of an ACE installation."""

    def __init__(self, rng: random.Random, name: str = "ace-ca"):
        self.name = name
        self.keypair = KeyPair.generate(rng)
        self._rng = rng

    @property
    def public_key(self) -> int:
        return self.keypair.public

    def issue(self, subject: str, public_key: int) -> Certificate:
        payload = f"cert|{subject}|{public_key}|{self.name}"
        return Certificate(subject, public_key, self.name, self.keypair.sign(payload))

    def issue_keypair(self, subject: str) -> Tuple[KeyPair, Certificate]:
        kp = KeyPair.generate(self._rng)
        return kp, self.issue(subject, kp.public)

    def verify(self, cert: Certificate) -> None:
        """Raise :class:`CertificateError` unless ``cert`` is ours and valid."""
        if cert.issuer != self.name:
            raise CertificateError(f"unknown issuer {cert.issuer!r}")
        if not verify_signature(self.public_key, cert.signed_payload(), cert.signature):
            raise CertificateError(f"bad signature on certificate for {cert.subject!r}")


def verify_certificate(cert: Certificate, ca_public_key: int, ca_name: str) -> bool:
    """Stand-alone chain check used by peers that only hold the CA key."""
    if cert.issuer != ca_name:
        return False
    return verify_signature(ca_public_key, cert.signed_payload(), cert.signature)
