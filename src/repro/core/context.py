"""Shared per-environment state every daemon is constructed with.

The :class:`DaemonContext` bundles the simulation kernel, the network, RNG
streams, the trace recorder, the well-known bootstrap addresses (§2.4: the
ASD's "fixed socket location ... known to all ACE daemons"), and the
security configuration (certificates, principal keys, KeyNote policies).
"""

from __future__ import annotations

import enum
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net import Address, Network
from repro.net.address import WellKnownPorts
from repro.security.crypto import Certificate, CertificateAuthority, KeyPair
from repro.security.keynote import Assertion
from repro.sim import RngRegistry, Simulator, TraceRecorder

from repro.core.lookup_cache import LookupCache
from repro.core.policy import ResilienceRegistry
from repro.obs import Observability


class SecurityMode(enum.Enum):
    """How much of Chapter 3 is switched on (experiment E5 sweeps this)."""

    NONE = "none"              # plain sockets, claimed identities
    SSL = "ssl"                # encrypted channels, server-authenticated
    SSL_KEYNOTE = "ssl+keynote"  # + signed client attach + per-command KeyNote


@dataclass
class SecurityConfig:
    mode: SecurityMode = SecurityMode.NONE
    ca: Optional[CertificateAuthority] = None
    #: principal id -> Schnorr public key (clients, users, services)
    principal_keys: Dict[str, int] = field(default_factory=dict)
    #: locally-trusted POLICY assertions installed on every daemon
    policies: List[Assertion] = field(default_factory=list)
    #: lookup credentials from the AuthDB service per command (Fig. 10)
    #: instead of only using locally cached credentials
    authdb_lookup: bool = True
    #: seconds a fetched credential set stays cached (0 = refetch always)
    credential_cache_ttl: float = 30.0

    def register_principal(self, name: str, public_key: int) -> None:
        self.principal_keys[name] = public_key


@dataclass
class DaemonContext:
    """Everything a daemon needs to participate in an ACE."""

    sim: Simulator
    net: Network
    rng: RngRegistry = field(default_factory=lambda: RngRegistry(0))
    trace: TraceRecorder = field(default_factory=lambda: TraceRecorder(enabled=True))
    security: SecurityConfig = field(default_factory=SecurityConfig)
    #: bootstrap addresses (None = that infrastructure service is absent)
    asd_address: Optional[Address] = None
    #: every directory replica, primary first; empty = single-ASD install
    #: (clients then fall back to ``[asd_address]``)
    asd_addresses: List[Address] = field(default_factory=list)
    roomdb_address: Optional[Address] = None
    netlogger_address: Optional[Address] = None
    authdb_address: Optional[Address] = None
    #: the E27 telemetry aggregator (None until ``env.enable_telemetry()``)
    telemetry_address: Optional[Address] = None
    #: every persistent-store replica (all groups, sorted); empty = no store
    store_addresses: List[Address] = field(default_factory=list)
    #: lease the ASD grants to registered services, seconds (§2.4)
    lease_duration: float = 30.0
    #: renew after this fraction of the lease has elapsed
    lease_renew_fraction: float = 0.5
    #: CPU work charged per command dispatch, bogomips-seconds
    dispatch_work: float = 2.0
    #: shared breakers/counters/lookup-cache for the resilient RPC layer
    resilience: ResilienceRegistry = field(default_factory=ResilienceRegistry)
    #: when set, daemons on one host coalesce their ASD lease renewals into
    #: one batched ``renewLease names=(...)`` command per interval
    batch_lease_renewals: bool = False
    #: when set, clients stamp every resilient call with a ``(o_cid,
    #: o_cseq)`` idempotency token that survives retries and failover, and
    #: daemons dedup on it — off by default so the pre-recovery wire
    #: traffic (and determinism hashes) stay byte-identical
    idempotent_retries: bool = False
    #: per-host SupervisorDaemon plane (populated by
    #: ``env.enable_supervision()``); daemons beat into their host's
    #: supervisor on every successful lease renewal
    supervisors: Dict[str, object] = field(default_factory=dict)
    #: default idle-connection cap per address for new ConnectionPools;
    #: the E28 control plane resizes it (and every live pool) at runtime
    pool_max_idle: int = 4
    #: causal tracer + metrics registry (built in __post_init__ when unset)
    obs: Optional[Observability] = None
    #: shared client-side directory cache (built in __post_init__ when unset)
    lookup_cache: Optional[LookupCache] = None

    def __post_init__(self) -> None:
        if self.obs is None:
            self.obs = Observability(self.sim, self.rng)
        # The RPC layer's counters read as the registry's ``rpc.*`` view.
        self.obs.metrics.register_view("rpc", self.resilience.stats.snapshot)
        if self.lookup_cache is None:
            self.lookup_cache = LookupCache(metrics=self.obs.metrics)
        #: per-host lease-renewal batchers (populated lazily by daemons)
        self._lease_batchers: dict = {}
        #: every live ConnectionPool (weakly held) so the control plane
        #: can resize them in place
        self._connection_pools = weakref.WeakSet()
        #: monotonically minted client ids for idempotency stamps
        self._client_id_counter = 0

    def next_client_id(self, principal: str = "client") -> str:
        """Mint a unique, deterministic client id for idempotency stamps."""
        n = self._client_id_counter
        self._client_id_counter += 1
        return f"{principal}.c{n}"

    def default_bootstrap(self, asd_host: str) -> None:
        """Point the well-known addresses at conventional ports on one host."""
        self.asd_address = Address(asd_host, WellKnownPorts.ASD)
        self.roomdb_address = Address(asd_host, WellKnownPorts.ROOM_DB)
        self.netlogger_address = Address(asd_host, WellKnownPorts.NET_LOGGER)
        self.authdb_address = Address(asd_host, WellKnownPorts.AUTH_DB)

    def directory_addresses(self) -> List[Address]:
        """Every ASD replica a client may query, primary first."""
        if self.asd_addresses:
            return list(self.asd_addresses)
        return [self.asd_address] if self.asd_address is not None else []

    def lease_batcher(self, host):
        """The (lazily created) per-host lease-renewal batcher."""
        from repro.core.leases import LeaseRenewalBatcher

        batcher = self._lease_batchers.get(host.name)
        if batcher is None:
            batcher = LeaseRenewalBatcher(self, host)
            self._lease_batchers[host.name] = batcher
        return batcher

    def issue_identity(self, subject: str) -> tuple[KeyPair, Optional[Certificate]]:
        """Mint a keypair (+ certificate when a CA is configured) and record
        the principal key so peers can verify signatures."""
        if self.security.ca is not None:
            keypair, cert = self.security.ca.issue_keypair(subject)
        else:
            keypair = KeyPair.generate(self.rng.py(f"identity.{subject}"))
            cert = None
        self.security.register_principal(keypair.principal(), keypair.public)
        return keypair, cert
