"""Client-side directory lookup cache (the scale-out discovery plane).

The paper makes the ASD the well-known rendezvous for *every* client
(§2.4, Fig. 7), which turns it into the scaling chokepoint: E2 shows
lookup latency growing with registry size and E18 shows the ASD kneeling
first under load.  The :class:`LookupCache` removes the steady-state wire
round trip entirely: query results are cached until the **lease horizon**
of the records they contain — the same staleness window the paper's lease
mechanism already accepts for a crashed service — and are purged early by
``addNotification cmd=register/deregister`` invalidations (see
:class:`~repro.services.asd.DirectoryWatcherDaemon`).

The cache is deliberately ignorant of the record type: anything with
``name``/``room`` attributes and a ``matches_class`` method works, which
keeps this module import-cycle-free (records live in ``repro.services``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

#: (name or "", cls or "", room or "") — one logical directory per
#: environment, so replica addresses are *not* part of the key.
QueryKey = Tuple[str, str, str]


def query_key(name: Optional[str], cls: Optional[str], room: Optional[str]) -> QueryKey:
    return (name or "", cls or "", room or "")


@dataclass
class CacheEntry:
    """One cached query result with its lease-derived expiry."""

    records: Tuple
    expires_at: float

    def fresh_at(self, now: float) -> bool:
        return now < self.expires_at


class LookupCache:
    """Query → records map with lease-TTL expiry and targeted invalidation.

    Correctness invariant (property-tested): a cached record is never
    served at or past its lease horizon — ``put`` receives the *minimum
    remaining lease* of the records as the TTL, so the cache can never be
    staler than the directory itself would be for a crashed holder.
    """

    def __init__(self, metrics=None, max_entries: int = 512):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        #: ``asd_lookup`` only consults/populates the cache when enabled.
        #: The cache is coherent only with the push half attached — a
        #: :class:`~repro.services.asd.DirectoryWatcherDaemon` flips this
        #: on when it starts — so plain installs keep wire-fresh lookups
        #: (a just-registered service must be visible immediately).
        self.enabled = False
        #: seconds an *empty* lookup result is cached (0 = never, the
        #: default).  The recovery plane sets this so clients chasing a
        #: dead name back off instead of hammering every ASD replica for
        #: the whole suspicion window; the watcher's register push purges
        #: the negative entry the moment the reincarnation appears.
        self.negative_ttl = 0.0
        self._entries: "OrderedDict[QueryKey, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.expired = 0
        self.negative_hits = 0
        self.invalidations = 0
        if metrics is not None:
            metrics.register_view("directory.cache", self.snapshot)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def get(self, key: QueryKey, now: float) -> Optional[Tuple]:
        """The cached records for ``key``, or None (miss or lease-expired)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if not entry.fresh_at(now):
            del self._entries[key]
            self.expired += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if not entry.records:
            self.negative_hits += 1
        return entry.records

    def put(self, key: QueryKey, records: Sequence, now: float, ttl: float) -> None:
        """Cache ``records`` for ``ttl`` seconds.

        Empty results are only cached (as ``()``, for ``negative_ttl``
        seconds) when a negative TTL is configured — by default a negative
        answer always re-asks the wire, so a service that just registered
        is found immediately."""
        if not records:
            if self.negative_ttl <= 0:
                return
            entry = CacheEntry((), now + self.negative_ttl)
        elif ttl <= 0:
            return
        else:
            entry = CacheEntry(tuple(records), now + ttl)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    # Invalidation (driven by register/deregister notifications)
    # ------------------------------------------------------------------
    def invalidate_service(self, name: str) -> int:
        """Purge every entry that serves a record named ``name`` (the
        deregister / lease-expiry path).  Returns purged entry count."""
        stale = [
            key
            for key, entry in self._entries.items()
            if key[0] == name or any(r.name == name for r in entry.records)
        ]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)
        return len(stale)

    def invalidate_record(self, record) -> int:
        """Purge every cached query the (newly registered) ``record`` could
        now match — those entries are missing it.  Returns purged count."""
        stale = []
        for key in self._entries:
            qname, qcls, qroom = key
            if qname not in ("", record.name):
                continue
            if qroom not in ("", record.room):
                continue
            if qcls and not record.matches_class(qcls):
                continue
            stale.append(key)
        for key in stale:
            del self._entries[key]
        # A re-registration may also have *moved* the service; drop entries
        # still serving its old address/room.
        purged = len(stale) + self.invalidate_service(record.name)
        self.invalidations += len(stale)
        return purged

    def invalidate_all(self) -> int:
        count = len(self._entries)
        self._entries.clear()
        self.invalidations += count
        return count

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "expired": self.expired,
            "negative_hits": self.negative_hits,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }
