"""Client-side command interface to ACE daemons (§2.3's "command interface").

A :class:`ServiceClient` is held by anything that issues commands — user
GUIs, other daemons, scenario drivers.  It opens (optionally SSL) channels,
performs the identity *attach*, and exposes a call-style API::

    conn = yield from client.connect(addr)
    reply = yield from conn.call(ACECmdLine("setPosition", x=1.0, y=2.0))

``call`` serializes the command (Fig. 5's CmdLine → string), transmits,
and parses the reply string back into an ACECmdLine.
"""

from __future__ import annotations

from typing import Generator, Optional, Union

from repro.lang import ACECmdLine, parse_command
from repro.lang.command import is_error
from repro.net import Address, Connection, ConnectionClosed, ConnectionRefused
from repro.net.host import Host
from repro.net.secure import SecureChannel, handshake_client
from repro.obs import CLIENT as SPAN_CLIENT
from repro.obs import inject
from repro.security.crypto import KeyPair, sha256_hex

from repro.core.context import DaemonContext, SecurityMode
from repro.core.policy import (
    BreakerOpen,
    CallError,
    CallPolicy,
    DeadlineExceeded,
    TransportError,
)

#: transport-level failures worth retrying (the endpoint may recover);
#: plain CallError (cmdFailed) means the service answered — never retried.
RETRYABLE = (ConnectionRefused, ConnectionClosed, TransportError, DeadlineExceeded)

Channel = Union[Connection, SecureChannel]


def channel_binding(channel: Channel) -> str:
    """A string both endpoints can compute, tying an attach signature to
    this channel (thwarts replaying the attach on another connection)."""
    if isinstance(channel, SecureChannel):
        return sha256_hex(channel._mac_key)[:32]
    return f"{channel.local}|{channel.remote}"


class ServiceConnection:
    """An attached, ready-to-use channel to one daemon.

    When the owning :class:`ServiceClient` has a current span (an explicit
    root started with :meth:`ServiceClient.begin_trace`, a bound span, or
    the ambient per-process span), every :meth:`call` records a ``client``
    span and injects its trace context into the outgoing command, so the
    far daemon's execution joins the same causal tree.
    """

    def __init__(self, channel: Channel, principal: str, client: Optional["ServiceClient"] = None):
        self.channel = channel
        self.principal = principal
        self._client = client

    @property
    def closed(self) -> bool:
        return self.channel.closed

    def call(self, command: ACECmdLine, check: bool = True) -> Generator:
        """Send a command and wait for its reply.

        With ``check`` (default) a ``cmdFailed`` reply raises
        :class:`CallError`; otherwise the reply is returned either way.
        """
        tracer = span = None
        if self._client is not None and command.name != "attach":
            parent = self._client.current_span()
            if parent is not None:
                tracer = self._client.ctx.obs.tracer
                span = tracer.start_span(
                    f"call:{command.name}", self.principal, parent, kind=SPAN_CLIENT
                )
                if span is not None:
                    command = inject(command, span.context)
        status = "interrupted"  # overwritten on any non-interrupt exit
        try:
            try:
                yield from self.channel.send(command.to_string())
                reply_text = yield from self.channel.recv()
            except ConnectionClosed as exc:
                status = "transport-error"
                raise TransportError(f"connection lost during {command.name!r}: {exc}")
            reply = parse_command(reply_text)
            if is_error(reply):
                status = "cmdFailed"
                if check:
                    raise CallError(
                        f"{command.name!r} failed: {reply.get('reason', 'unknown')}", reply
                    )
            else:
                status = "ok"
            return reply
        finally:
            if span is not None:
                tracer.finish(span, status=status)

    def send_oneway(self, command: ACECmdLine) -> Generator:
        """Send without waiting for the reply (the reply is drained later or
        discarded when the connection closes).  The current trace context
        (if any) is injected so the receiver still joins the trace."""
        if self._client is not None:
            parent = self._client.current_span()
            if parent is not None:
                command = inject(command, parent.context)
        yield from self.channel.send(command.to_string())

    def close(self) -> None:
        self.channel.close()


class ServiceClient:
    """Factory of attached connections for one principal on one host."""

    def __init__(
        self,
        ctx: DaemonContext,
        host: Host,
        principal: str = "anonymous",
        keypair: Optional[KeyPair] = None,
    ):
        self.ctx = ctx
        self.host = host
        self.principal = principal
        self.keypair = keypair
        self._rng = ctx.rng.py(f"client.{host.name}.{principal}")
        self._retry_rng = ctx.rng.py(f"rpc.{host.name}.{principal}")
        #: explicit span stack (roots/bound spans); the ambient per-process
        #: span is the fallback.  One client serves one logical flow.
        self._span_stack: list = []

    # ------------------------------------------------------------------
    # Tracing (repro.obs)
    # ------------------------------------------------------------------
    def current_span(self):
        """The span new calls should parent under: the top of this
        client's explicit stack, else the ambient per-process span."""
        if self._span_stack:
            return self._span_stack[-1]
        return self.ctx.obs.ambient_span()

    def begin_trace(self, name: str, **annotations):
        """Start (and make current) a root span for an end-to-end request
        issued by this client; returns None when unsampled/disabled."""
        span = self.ctx.obs.tracer.start_trace(name, self.principal, **annotations)
        if span is not None:
            self._span_stack.append(span)
        return span

    def end_trace(self, span, status: str = "ok", **annotations):
        """Finish a span from :meth:`begin_trace` (None-safe)."""
        if span is None:
            return None
        if self._span_stack and self._span_stack[-1] is span:
            self._span_stack.pop()
        return self.ctx.obs.tracer.finish(span, status=status, **annotations)

    def bind_span(self, span) -> "ServiceClient":
        """Parent this client's future calls under an existing span
        (None-safe; used when the causal parent is known explicitly)."""
        if span is not None:
            self._span_stack.append(span)
        return self

    def connect(
        self,
        address: Address,
        expected_subject: Optional[str] = None,
        attach: bool = True,
    ) -> Generator:
        """Open a channel (secure when the context says so) and attach."""
        conn = yield from self.ctx.net.connect(self.host, address)
        channel: Channel = conn
        if self.ctx.security.mode is not SecurityMode.NONE:
            ca = self.ctx.security.ca
            if ca is None:
                raise CallError("security enabled but no CA configured")
            channel = yield from handshake_client(
                conn, self._rng, ca.public_key, ca.name, expected_subject
            )
        connection = ServiceConnection(channel, self.principal, client=self)
        if attach:
            yield from self._attach(connection)
        return connection

    def _attach(self, connection: ServiceConnection) -> Generator:
        attach_cmd = ACECmdLine("attach", principal=self.principal)
        if (
            self.ctx.security.mode is SecurityMode.SSL_KEYNOTE
            and self.keypair is not None
        ):
            binding = channel_binding(connection.channel)
            e, s = self.keypair.sign(f"attach:{self.principal}:{binding}")
            attach_cmd = attach_cmd.with_args(sig_e=f"{e:x}", sig_s=f"{s:x}")
        yield from connection.call(attach_cmd)

    def call_once(self, address: Address, command: ACECmdLine, **connect_kw) -> Generator:
        """Connect, call a single command, close.  Returns the reply."""
        connection = yield from self.connect(address, **connect_kw)
        try:
            reply = yield from connection.call(command)
        finally:
            connection.close()
        return reply

    # ------------------------------------------------------------------
    # Resilient path: deadline + retry + circuit breaker
    # ------------------------------------------------------------------
    def call_resilient(
        self,
        address: Address,
        command: ACECmdLine,
        policy: Optional[CallPolicy] = None,
        *,
        check: bool = True,
        expected_subject: Optional[str] = None,
        attach: bool = True,
    ) -> Generator:
        """``call_once`` hardened for gray failure.

        Each attempt (connect + call + reply) races a simulated timeout of
        ``policy.attempt_timeout``; transport failures and attempt timeouts
        are retried with jittered exponential backoff until
        ``policy.max_attempts`` or the overall ``policy.deadline`` is
        exhausted.  A per-address circuit breaker (shared environment-wide
        via ``ctx.resilience``) sheds calls to endpoints that keep failing.

        Raises :class:`BreakerOpen` without touching the network when the
        breaker is open, :class:`DeadlineExceeded` when the budget runs out,
        or the last transport error when attempts are exhausted.  A
        ``cmdFailed`` reply (plain :class:`CallError`) is never retried —
        the endpoint answered, so it also counts as breaker success.
        """
        registry = self.ctx.resilience
        policy = policy or registry.default_policy
        stats = registry.stats
        breaker = registry.breaker(address, policy)
        sim = self.ctx.sim
        tracer = self.ctx.obs.tracer
        span = tracer.start_span(
            f"rpc:{command.name}", self.principal, self.current_span(),
            kind=SPAN_CLIENT, address=str(address),
        )
        if span is not None:
            self._span_stack.append(span)
        status = "interrupted"
        deadline_at = sim.now + policy.deadline
        stats.calls += 1
        attempt = 0
        try:
            while True:
                now = sim.now
                if not breaker.allow(now):
                    stats.breaker_rejected += 1
                    status = "breaker-open"
                    raise BreakerOpen(f"circuit open for {address} ({command.name!r})")
                budget = min(policy.attempt_timeout, deadline_at - now)
                if budget <= 0:
                    stats.deadline_expired += 1
                    stats.failures += 1
                    status = "deadline"
                    raise DeadlineExceeded(
                        f"{command.name!r} to {address} exceeded {policy.deadline:.3f}s deadline"
                    )
                try:
                    reply = yield from self._attempt_with_timeout(
                        address, command, budget,
                        check=check, expected_subject=expected_subject, attach=attach,
                    )
                except RETRYABLE as exc:
                    if isinstance(exc, DeadlineExceeded):
                        stats.deadline_expired += 1
                    if breaker.record_failure(sim.now):
                        stats.breaker_trips += 1
                        if span is not None:
                            span.annotate(breaker_tripped=1)
                        self.ctx.trace.emit(
                            sim.now, "rpc", "breaker-open", address=str(address)
                        )
                    attempt += 1
                    if attempt >= policy.max_attempts or sim.now >= deadline_at:
                        stats.failures += 1
                        status = "deadline" if isinstance(exc, DeadlineExceeded) else "transport-error"
                        raise
                    stats.retries += 1
                    delay = policy.backoff_delay(attempt, self._retry_rng)
                    yield sim.timeout(min(delay, max(deadline_at - sim.now, 0.0)))
                    continue
                except CallError:
                    # The service answered (cmdFailed): healthy transport.
                    if breaker.record_success():
                        stats.breaker_resets += 1
                    stats.successes += 1
                    status = "cmdFailed"
                    raise
                if breaker.record_success():
                    stats.breaker_resets += 1
                    self.ctx.trace.emit(
                        sim.now, "rpc", "breaker-closed", address=str(address)
                    )
                stats.successes += 1
                status = "ok"
                return reply
        finally:
            if span is not None:
                if self._span_stack and self._span_stack[-1] is span:
                    self._span_stack.pop()
                # ``attempt`` counts failed attempts; cmdFailed/ok add one
                # more (the attempt that reached the service and returned).
                total = attempt + (1 if status in ("ok", "cmdFailed") else 0)
                tracer.finish(
                    span, status=status, attempts=total,
                    retries=max(total - 1, 0), breaker=breaker.state,
                )

    def _attempt_with_timeout(
        self, address: Address, command: ACECmdLine, timeout: float, **kw
    ) -> Generator:
        """Race one call attempt against a sim timeout; losing attempts are
        interrupted so they release their connection."""
        sim = self.ctx.sim
        proc = sim.process(
            self._attempt(address, command, **kw), name=f"rpc.{self.principal}"
        )
        timer = sim.timeout(timeout)
        outcome = yield sim.any_of([proc, timer])
        if proc in outcome:
            return outcome[proc]
        proc.interrupt("rpc attempt deadline")
        raise DeadlineExceeded(
            f"{command.name!r} to {address} exceeded {timeout:.3f}s attempt budget"
        )

    def _attempt(
        self,
        address: Address,
        command: ACECmdLine,
        *,
        check: bool = True,
        expected_subject: Optional[str] = None,
        attach: bool = True,
    ) -> Generator:
        connection = None
        try:
            connection = yield from self.connect(
                address, expected_subject=expected_subject, attach=attach
            )
            reply = yield from connection.call(command, check=check)
            return reply
        finally:
            if connection is not None:
                connection.close()
