"""Client-side command interface to ACE daemons (§2.3's "command interface").

A :class:`ServiceClient` is held by anything that issues commands — user
GUIs, other daemons, scenario drivers.  It opens (optionally SSL) channels,
performs the identity *attach*, and exposes a call-style API::

    conn = yield from client.connect(addr)
    reply = yield from conn.call(ACECmdLine("setPosition", x=1.0, y=2.0))

``call`` serializes the command (Fig. 5's CmdLine → string), transmits,
and parses the reply string back into an ACECmdLine.
"""

from __future__ import annotations

from typing import Generator, Optional, Union

from repro.lang import ACECmdLine, parse_command
from repro.lang.command import is_error
from repro.net import Address, Connection, ConnectionClosed, ConnectionRefused
from repro.net.host import Host
from repro.net.secure import SecureChannel, handshake_client
from repro.security.crypto import KeyPair, sha256_hex

from repro.core.context import DaemonContext, SecurityMode


class CallError(Exception):
    """The service replied cmdFailed, or transport failed mid-call."""

    def __init__(self, message: str, reply: Optional[ACECmdLine] = None):
        super().__init__(message)
        self.reply = reply


Channel = Union[Connection, SecureChannel]


def channel_binding(channel: Channel) -> str:
    """A string both endpoints can compute, tying an attach signature to
    this channel (thwarts replaying the attach on another connection)."""
    if isinstance(channel, SecureChannel):
        return sha256_hex(channel._mac_key)[:32]
    return f"{channel.local}|{channel.remote}"


class ServiceConnection:
    """An attached, ready-to-use channel to one daemon."""

    def __init__(self, channel: Channel, principal: str):
        self.channel = channel
        self.principal = principal

    @property
    def closed(self) -> bool:
        return self.channel.closed

    def call(self, command: ACECmdLine, check: bool = True) -> Generator:
        """Send a command and wait for its reply.

        With ``check`` (default) a ``cmdFailed`` reply raises
        :class:`CallError`; otherwise the reply is returned either way.
        """
        try:
            yield from self.channel.send(command.to_string())
            reply_text = yield from self.channel.recv()
        except ConnectionClosed as exc:
            raise CallError(f"connection lost during {command.name!r}: {exc}")
        reply = parse_command(reply_text)
        if check and is_error(reply):
            raise CallError(
                f"{command.name!r} failed: {reply.get('reason', 'unknown')}", reply
            )
        return reply

    def send_oneway(self, command: ACECmdLine) -> Generator:
        """Send without waiting for the reply (the reply is drained later or
        discarded when the connection closes)."""
        yield from self.channel.send(command.to_string())

    def close(self) -> None:
        self.channel.close()


class ServiceClient:
    """Factory of attached connections for one principal on one host."""

    def __init__(
        self,
        ctx: DaemonContext,
        host: Host,
        principal: str = "anonymous",
        keypair: Optional[KeyPair] = None,
    ):
        self.ctx = ctx
        self.host = host
        self.principal = principal
        self.keypair = keypair
        self._rng = ctx.rng.py(f"client.{host.name}.{principal}")

    def connect(
        self,
        address: Address,
        expected_subject: Optional[str] = None,
        attach: bool = True,
    ) -> Generator:
        """Open a channel (secure when the context says so) and attach."""
        conn = yield from self.ctx.net.connect(self.host, address)
        channel: Channel = conn
        if self.ctx.security.mode is not SecurityMode.NONE:
            ca = self.ctx.security.ca
            if ca is None:
                raise CallError("security enabled but no CA configured")
            channel = yield from handshake_client(
                conn, self._rng, ca.public_key, ca.name, expected_subject
            )
        connection = ServiceConnection(channel, self.principal)
        if attach:
            yield from self._attach(connection)
        return connection

    def _attach(self, connection: ServiceConnection) -> Generator:
        attach_cmd = ACECmdLine("attach", principal=self.principal)
        if (
            self.ctx.security.mode is SecurityMode.SSL_KEYNOTE
            and self.keypair is not None
        ):
            binding = channel_binding(connection.channel)
            e, s = self.keypair.sign(f"attach:{self.principal}:{binding}")
            attach_cmd = attach_cmd.with_args(sig_e=f"{e:x}", sig_s=f"{s:x}")
        yield from connection.call(attach_cmd)

    def call_once(self, address: Address, command: ACECmdLine, **connect_kw) -> Generator:
        """Connect, call a single command, close.  Returns the reply."""
        connection = yield from self.connect(address, **connect_kw)
        try:
            reply = yield from connection.call(command)
        finally:
            connection.close()
        return reply
