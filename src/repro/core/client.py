"""Client-side command interface to ACE daemons (§2.3's "command interface").

A :class:`ServiceClient` is held by anything that issues commands — user
GUIs, other daemons, scenario drivers.  It opens (optionally SSL) channels,
performs the identity *attach*, and exposes a call-style API::

    conn = yield from client.connect(addr)
    reply = yield from conn.call(ACECmdLine("setPosition", x=1.0, y=2.0))

``call`` serializes the command (Fig. 5's CmdLine → string), transmits,
and parses the reply string back into an ACECmdLine.
"""

from __future__ import annotations

from typing import Generator, Optional, Union

from repro.lang import ACECmdLine, parse_command
from repro.lang.command import CLIENT_ID_ARG, CLIENT_SEQ_ARG, PIPELINE_SEQ_ARG, is_error
from repro.net import Address, Connection, ConnectionClosed, ConnectionRefused
from repro.net.host import Host
from repro.net.secure import SecureChannel, handshake_client
from repro.obs import CLIENT as SPAN_CLIENT
from repro.obs import inject
from repro.security.crypto import KeyPair, sha256_hex
from repro.sim import Interrupt

from repro.core.context import DaemonContext, SecurityMode
from repro.core.policy import (
    BreakerOpen,
    CallError,
    CallPolicy,
    DeadlineExceeded,
    TransportError,
)

#: transport-level failures worth retrying (the endpoint may recover);
#: plain CallError (cmdFailed) means the service answered — never retried.
RETRYABLE = (ConnectionRefused, ConnectionClosed, TransportError, DeadlineExceeded)

#: failures that justify moving on to the *next replica* of a replicated
#: service: everything retryable plus an already-open breaker (no point
#: waiting out the cooldown when a sibling can answer now).
FAILOVER_ERRORS = RETRYABLE + (BreakerOpen,)

#: per-replica policy for failover calls: one attempt per endpoint —
#: trying the next replica *is* the retry (same shape as the store's).
FAILOVER_POLICY = CallPolicy(
    deadline=2.0,
    attempt_timeout=1.0,
    max_attempts=1,
    backoff_base=0.05,
    backoff_max=0.2,
)

Channel = Union[Connection, SecureChannel]


def channel_binding(channel: Channel) -> str:
    """A string both endpoints can compute, tying an attach signature to
    this channel (thwarts replaying the attach on another connection)."""
    if isinstance(channel, SecureChannel):
        return sha256_hex(channel._mac_key)[:32]
    return f"{channel.local}|{channel.remote}"


class ServiceConnection:
    """An attached, ready-to-use channel to one daemon.

    When the owning :class:`ServiceClient` has a current span (an explicit
    root started with :meth:`ServiceClient.begin_trace`, a bound span, or
    the ambient per-process span), every :meth:`call` records a ``client``
    span and injects its trace context into the outgoing command, so the
    far daemon's execution joins the same causal tree.
    """

    def __init__(self, channel: Channel, principal: str, client: Optional["ServiceClient"] = None):
        self.channel = channel
        self.principal = principal
        self._client = client

    @property
    def closed(self) -> bool:
        return self.channel.closed

    def call(self, command: ACECmdLine, check: bool = True) -> Generator:
        """Send a command and wait for its reply.

        With ``check`` (default) a ``cmdFailed`` reply raises
        :class:`CallError`; otherwise the reply is returned either way.
        """
        tracer = span = None
        if self._client is not None and command.name != "attach":
            parent = self._client.current_span()
            if parent is not None:
                tracer = self._client.ctx.obs.tracer
                span = tracer.start_span(
                    f"call:{command.name}", self.principal, parent, kind=SPAN_CLIENT
                )
                if span is not None:
                    command = inject(command, span.context)
        status = "interrupted"  # overwritten on any non-interrupt exit
        try:
            try:
                yield from self.channel.send(command.to_string())
                reply_text = yield from self.channel.recv()
            except ConnectionClosed as exc:
                status = "transport-error"
                raise TransportError(f"connection lost during {command.name!r}: {exc}")
            reply = parse_command(reply_text)
            if is_error(reply):
                status = "cmdFailed"
                if check:
                    raise CallError(
                        f"{command.name!r} failed: {reply.get('reason', 'unknown')}", reply
                    )
            else:
                status = "ok"
            return reply
        finally:
            if span is not None:
                tracer.finish(span, status=status)

    def send_oneway(self, command: ACECmdLine) -> Generator:
        """Send without waiting for the reply (the reply is drained later or
        discarded when the connection closes).  The current trace context
        (if any) is injected so the receiver still joins the trace."""
        if self._client is not None:
            parent = self._client.current_span()
            if parent is not None:
                command = inject(command, parent.context)
        yield from self.channel.send(command.to_string())

    def close(self) -> None:
        self.channel.close()


class PipelinedConnection:
    """One attached channel carrying up to ``max_inflight`` tagged commands.

    Plain :meth:`ServiceConnection.call` is strictly request/reply: every
    command pays a full round trip before the next may start.  A pipelined
    connection tags each outgoing command with a ``o_seq`` sequence number
    (echoed by the daemon on the matching reply) and runs a single reader
    process that routes replies back to their callers, so several commands
    — even from *different* simulation processes sharing this object — can
    be in flight on one channel at once.

    Failure semantics (regression-tested): when the channel dies, only the
    calls currently in flight fail (with :class:`TransportError`); calls
    already answered keep their replies, and a fresh pipeline to the same
    address works immediately.  A reply whose tag was forgotten (the caller
    timed out) is discarded, never mis-paired.
    """

    def __init__(
        self,
        client: "ServiceClient",
        connection: ServiceConnection,
        max_inflight: int = 8,
    ):
        if max_inflight <= 0:
            raise ValueError(f"max_inflight must be positive, got {max_inflight}")
        self._client = client
        self._conn = connection
        self.max_inflight = max_inflight
        self._next_seq = 0
        self._pending: dict = {}          # seq -> Event awaiting the reply
        self._slot_waiters: list = []     # Events of calls queued for a slot
        self._reader = None
        self._dead: Optional[BaseException] = None
        metrics = client.ctx.obs.metrics
        self._m_sent = metrics.counter("rpc.pipeline.sent")
        self._m_matched = metrics.counter("rpc.pipeline.matched")
        self._m_discarded = metrics.counter("rpc.pipeline.discarded")
        self._m_depth = metrics.histogram(
            "rpc.pipeline.depth", bounds=(1, 2, 4, 8, 16, 32)
        )

    @property
    def closed(self) -> bool:
        return self._dead is not None or self._conn.closed

    @property
    def inflight(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    def call(
        self, command: ACECmdLine, *, check: bool = True, timeout: Optional[float] = None
    ) -> Generator:
        """Issue ``command`` without waiting for earlier calls' replies.

        Blocks only while all ``max_inflight`` slots are taken.  With
        ``timeout`` the call raises :class:`DeadlineExceeded` when the
        tagged reply has not arrived in time (a late reply is discarded).
        """
        sim = self._client.ctx.sim
        while self._dead is None and len(self._pending) >= self.max_inflight:
            slot = sim.event()
            self._slot_waiters.append(slot)
            yield slot
        if self._dead is not None:
            raise TransportError(f"pipeline to {self._conn.channel.remote} is closed: {self._dead}")
        seq = self._next_seq
        self._next_seq += 1
        tracer = span = None
        parent = self._client.current_span()
        if parent is not None:
            tracer = self._client.ctx.obs.tracer
            span = tracer.start_span(
                f"pipeline:{command.name}", self._conn.principal, parent,
                kind=SPAN_CLIENT, seq=seq,
            )
            if span is not None:
                command = inject(command, span.context)
        tagged = command.with_args(**{PIPELINE_SEQ_ARG: seq})
        reply_ev = sim.event()
        self._pending[seq] = reply_ev
        self._m_depth.observe(len(self._pending))
        self._ensure_reader()
        status = "interrupted"
        try:
            try:
                yield from self._conn.channel.send(tagged.to_string())
            except ConnectionClosed as exc:
                self._pending.pop(seq, None)
                reply_ev.defuse()
                self._fail_inflight(TransportError(f"pipeline send failed: {exc}"))
                status = "transport-error"
                raise TransportError(f"connection lost during {command.name!r}: {exc}")
            self._m_sent.inc()
            try:
                if timeout is None:
                    reply = yield reply_ev
                else:
                    timer = sim.timeout(timeout)
                    outcome = yield sim.any_of([reply_ev, timer])
                    if reply_ev in outcome:
                        reply = outcome[reply_ev]
                    else:
                        self._pending.pop(seq, None)
                        reply_ev.defuse()
                        self._release_slot()
                        status = "deadline"
                        raise DeadlineExceeded(
                            f"pipelined {command.name!r} reply not seen in {timeout:.3f}s"
                        )
            except TransportError:
                status = "transport-error"
                raise
            reply = reply.without_args(PIPELINE_SEQ_ARG)
            if is_error(reply):
                status = "cmdFailed"
                if check:
                    raise CallError(
                        f"{command.name!r} failed: {reply.get('reason', 'unknown')}", reply
                    )
            else:
                status = "ok"
            return reply
        finally:
            if span is not None:
                tracer.finish(span, status=status)

    # ------------------------------------------------------------------
    def _ensure_reader(self) -> None:
        if self._reader is None or not self._reader.is_alive:
            sim = self._client.ctx.sim
            self._reader = sim.process(
                self._reader_loop(), name=f"pipeline.{self._conn.principal}"
            )

    def _reader_loop(self) -> Generator:
        """Route each incoming reply to the call that owns its tag."""
        try:
            while True:
                text = yield from self._conn.channel.recv()
                try:
                    reply = parse_command(text)
                except Exception:
                    self._m_discarded.inc()
                    continue
                seq = reply.get(PIPELINE_SEQ_ARG)
                waiter = None
                if isinstance(seq, int) and not isinstance(seq, bool):
                    waiter = self._pending.pop(seq, None)
                elif self._pending:
                    # Untagged reply (e.g. a parse-error notice the daemon
                    # could not attribute): give it to the oldest caller
                    # rather than deadlocking every slot.
                    waiter = self._pending.pop(min(self._pending))
                if waiter is None:
                    self._m_discarded.inc()   # late reply after caller timeout
                    continue
                self._m_matched.inc()
                waiter.succeed(reply)
                self._release_slot()
        except ConnectionClosed as exc:
            self._fail_inflight(TransportError(f"pipeline channel closed: {exc}"))
        except Interrupt:
            self._fail_inflight(TransportError("pipeline closed locally"))

    def _fail_inflight(self, exc: TransportError) -> None:
        """Channel death: fail the in-flight calls — and only those."""
        self._dead = exc
        pending, self._pending = self._pending, {}
        for ev in pending.values():
            ev.defuse()
            ev.fail(exc)
        waiters, self._slot_waiters = self._slot_waiters, []
        for ev in waiters:
            ev.succeed()  # wake queued callers so they observe the death

    def _release_slot(self) -> None:
        while self._slot_waiters and len(self._pending) < self.max_inflight:
            self._slot_waiters.pop(0).succeed()

    def close(self) -> None:
        if self._reader is not None and self._reader.is_alive:
            self._reader.interrupt("pipeline closed")
        self._conn.close()


class ConnectionPool:
    """Attached connections reused across calls, keyed by address.

    The paper's clients dial the ASD for *every* command (connect → attach
    → call → close); at scale the dial+attach dominates.  The pool checks
    idle connections out exclusively (a plain channel cannot interleave two
    request/reply exchanges), so concurrent callers to one address either
    reuse distinct pooled channels or dial new ones.
    """

    def __init__(self, client: "ServiceClient", max_idle_per_address: Optional[int] = None):
        self._client = client
        if max_idle_per_address is None:
            max_idle_per_address = client.ctx.pool_max_idle
        self.max_idle_per_address = max_idle_per_address
        # Registered (weakly) so the E28 control plane can resize every
        # live pool when it turns the pool_size knob.
        client.ctx._connection_pools.add(self)
        # Keyed by the Address itself (a frozen dataclass): hashing two
        # small fields beats formatting "host:port" on every acquire/release.
        self._idle: dict = {}   # Address -> list[ServiceConnection]
        metrics = client.ctx.obs.metrics
        self._m_reuse = metrics.counter("rpc.pool.reuse")
        self._m_dial = metrics.counter("rpc.pool.dial")
        self._m_discard = metrics.counter("rpc.pool.discard")

    def acquire(self, address: Address, **connect_kw) -> Generator:
        """Check out an attached connection (reused when one is idle)."""
        bucket = self._idle.get(address)
        while bucket:
            conn = bucket.pop()
            if not conn.closed:
                self._m_reuse.inc()
                return conn
            self._m_discard.inc()
        conn = yield from self._client.connect(address, **connect_kw)
        self._m_dial.inc()
        return conn

    def resize(self, max_idle_per_address: int) -> None:
        """Change the idle cap in place; shrinking closes excess idles."""
        self.max_idle_per_address = max_idle_per_address
        for bucket in self._idle.values():
            while len(bucket) > max_idle_per_address:
                bucket.pop().close()
                self._m_discard.inc()

    def release(self, address: Address, connection: ServiceConnection) -> None:
        """Return a healthy connection for reuse."""
        if connection.closed:
            self._m_discard.inc()
            return
        bucket = self._idle.setdefault(address, [])
        if len(bucket) >= self.max_idle_per_address:
            self._m_discard.inc()
            connection.close()
            return
        bucket.append(connection)

    def call(
        self, address: Address, command: ACECmdLine, *, check: bool = True, **connect_kw
    ) -> Generator:
        """``call_once`` over a pooled channel: the dial+attach round trips
        are paid once per connection, not once per command."""
        conn = yield from self.acquire(address, **connect_kw)
        try:
            reply = yield from conn.call(command, check=check)
        except RETRYABLE:
            conn.close()   # transport is suspect: never pool it again
            raise
        except CallError:
            self.release(address, conn)   # daemon answered: channel is fine
            raise
        self.release(address, conn)
        return reply

    def close_all(self) -> None:
        for bucket in self._idle.values():
            for conn in bucket:
                conn.close()
        self._idle.clear()


class ServiceClient:
    """Factory of attached connections for one principal on one host."""

    def __init__(
        self,
        ctx: DaemonContext,
        host: Host,
        principal: str = "anonymous",
        keypair: Optional[KeyPair] = None,
    ):
        self.ctx = ctx
        self.host = host
        self.principal = principal
        self.keypair = keypair
        # RNG streams are created on first draw: registry streams are
        # keyed (seed, name) so laziness never changes a sequence, and a
        # population-scale run (one client per user, plain call_once, no
        # security) never pays two Mersenne states per session.
        self._rng_cache = None
        self._retry_rng_cache = None
        #: client-observed resilient-call latency, shared env-wide; traced
        #: calls pin their trace id as the bucket exemplar
        self._m_latency = ctx.obs.metrics.histogram("rpc.latency_s")
        #: explicit span stack (roots/bound spans); the ambient per-process
        #: span is the fallback.  One client serves one logical flow.
        self._span_stack: list = []
        self._pool: Optional[ConnectionPool] = None
        self._pipelines: dict = {}   # Address -> PipelinedConnection
        #: idempotency stamp state (``ctx.idempotent_retries``): a unique
        #: client id minted on first use plus a per-logical-call sequence
        self._stamp_id: Optional[str] = None
        self._stamp_seq = 0

    @property
    def _rng(self):
        """The handshake RNG stream (``client.<host>.<principal>``)."""
        if self._rng_cache is None:
            self._rng_cache = self.ctx.rng.py(
                f"client.{self.host.name}.{self.principal}")
        return self._rng_cache

    @property
    def _retry_rng(self):
        """The backoff-jitter RNG stream (``rpc.<host>.<principal>``)."""
        if self._retry_rng_cache is None:
            self._retry_rng_cache = self.ctx.rng.py(
                f"rpc.{self.host.name}.{self.principal}")
        return self._retry_rng_cache

    # ------------------------------------------------------------------
    # Tracing (repro.obs)
    # ------------------------------------------------------------------
    def current_span(self):
        """The span new calls should parent under: the top of this
        client's explicit stack, else the ambient per-process span."""
        if self._span_stack:
            return self._span_stack[-1]
        return self.ctx.obs.ambient_span()

    def begin_trace(self, name: str, **annotations):
        """Start (and make current) a root span for an end-to-end request
        issued by this client; returns None when unsampled/disabled."""
        span = self.ctx.obs.tracer.start_trace(name, self.principal, **annotations)
        if span is not None:
            self._span_stack.append(span)
        return span

    def end_trace(self, span, status: str = "ok", **annotations):
        """Finish a span from :meth:`begin_trace` (None-safe)."""
        if span is None:
            return None
        if self._span_stack and self._span_stack[-1] is span:
            self._span_stack.pop()
        return self.ctx.obs.tracer.finish(span, status=status, **annotations)

    def bind_span(self, span) -> "ServiceClient":
        """Parent this client's future calls under an existing span
        (None-safe; used when the causal parent is known explicitly)."""
        if span is not None:
            self._span_stack.append(span)
        return self

    def connect(
        self,
        address: Address,
        expected_subject: Optional[str] = None,
        attach: bool = True,
    ) -> Generator:
        """Open a channel (secure when the context says so) and attach."""
        conn = yield from self.ctx.net.connect(self.host, address)
        channel: Channel = conn
        if self.ctx.security.mode is not SecurityMode.NONE:
            ca = self.ctx.security.ca
            if ca is None:
                raise CallError("security enabled but no CA configured")
            channel = yield from handshake_client(
                conn, self._rng, ca.public_key, ca.name, expected_subject
            )
        connection = ServiceConnection(channel, self.principal, client=self)
        if attach:
            yield from self._attach(connection)
        return connection

    def _attach(self, connection: ServiceConnection) -> Generator:
        attach_cmd = ACECmdLine("attach", principal=self.principal)
        if (
            self.ctx.security.mode is SecurityMode.SSL_KEYNOTE
            and self.keypair is not None
        ):
            binding = channel_binding(connection.channel)
            e, s = self.keypair.sign(f"attach:{self.principal}:{binding}")
            attach_cmd = attach_cmd.with_args(sig_e=f"{e:x}", sig_s=f"{s:x}")
        yield from connection.call(attach_cmd)

    def call_once(self, address: Address, command: ACECmdLine, **connect_kw) -> Generator:
        """Connect, call a single command, close.  Returns the reply."""
        connection = yield from self.connect(address, **connect_kw)
        try:
            reply = yield from connection.call(command)
        finally:
            connection.close()
        return reply

    # ------------------------------------------------------------------
    # Pooled + pipelined paths (the scale-out RPC plane)
    # ------------------------------------------------------------------
    @property
    def pool(self) -> ConnectionPool:
        """This client's connection pool (created on first use)."""
        if self._pool is None:
            self._pool = ConnectionPool(self)
        return self._pool

    def call_pooled(
        self, address: Address, command: ACECmdLine, *, check: bool = True, **connect_kw
    ) -> Generator:
        """``call_once`` minus the per-command dial+attach round trips."""
        reply = yield from self.pool.call(address, command, check=check, **connect_kw)
        return reply

    def pipelined(
        self, address: Address, max_inflight: int = 8, **connect_kw
    ) -> Generator:
        """The shared pipelined channel to ``address``, dialing (or
        re-dialing after a transport death) when needed."""
        pipe = self._pipelines.get(address)
        if pipe is None or pipe.closed:
            connection = yield from self.connect(address, **connect_kw)
            pipe = PipelinedConnection(self, connection, max_inflight=max_inflight)
            self._pipelines[address] = pipe
        return pipe

    def call_pipelined(
        self,
        address: Address,
        command: ACECmdLine,
        *,
        check: bool = True,
        timeout: Optional[float] = None,
        **connect_kw,
    ) -> Generator:
        """Issue ``command`` on the shared pipelined channel to ``address``
        — up to ``max_inflight`` commands from this client proceed without
        waiting for each other's replies."""
        pipe = yield from self.pipelined(address, **connect_kw)
        reply = yield from pipe.call(command, check=check, timeout=timeout)
        return reply

    def close_channels(self) -> None:
        """Drop every pooled/pipelined channel (e.g. at client shutdown)."""
        if self._pool is not None:
            self._pool.close_all()
        for pipe in self._pipelines.values():
            pipe.close()
        self._pipelines.clear()

    # ------------------------------------------------------------------
    # Idempotency stamping (the recovery plane's exactly-once half)
    # ------------------------------------------------------------------
    def _stamp(self, command: ACECmdLine) -> ACECmdLine:
        """Stamp one *logical* call with ``(client_id, seq)``.  Every retry
        and failover of that call reuses the stamp, so a daemon (or its
        reincarnation) that already executed it replays the cached reply
        instead of running it twice."""
        if not self.ctx.idempotent_retries or CLIENT_ID_ARG in command:
            return command
        if self._stamp_id is None:
            self._stamp_id = self.ctx.next_client_id(self.principal)
        seq = self._stamp_seq
        self._stamp_seq += 1
        return command.with_args(**{CLIENT_ID_ARG: self._stamp_id, CLIENT_SEQ_ARG: seq})

    # ------------------------------------------------------------------
    # Replica failover (the §5.3 robust-application client side)
    # ------------------------------------------------------------------
    def call_failover(
        self,
        addresses,
        command: ACECmdLine,
        policy: Optional[CallPolicy] = None,
        *,
        check: bool = True,
        **kw,
    ) -> Generator:
        """Try ``command`` against each replica address until one answers.

        Transport failures, attempt deadlines, and open breakers move on to
        the next replica (each endpoint gets ``policy.max_attempts``, one
        by default — failing over *is* the retry).  A ``cmdFailed`` reply
        raises immediately when ``check``: the service answered, so its
        siblings would refuse identically.
        """
        addrs = list(addresses)
        if not addrs:
            raise CallError(f"no addresses to call {command.name!r} against")
        policy = policy or FAILOVER_POLICY
        command = self._stamp(command)
        failovers = self.ctx.obs.metrics.counter("rpc.failover")
        last_exc: Optional[Exception] = None
        for i, address in enumerate(addrs):
            if i:
                failovers.inc()
                self.ctx.trace.emit(
                    self.ctx.sim.now, "rpc", "failover",
                    command=command.name, address=str(address),
                )
            try:
                reply = yield from self.call_resilient(
                    address, command, policy, check=check, **kw
                )
                return reply
            except FAILOVER_ERRORS as exc:
                last_exc = exc
        assert last_exc is not None
        raise last_exc

    # ------------------------------------------------------------------
    # Resilient path: deadline + retry + circuit breaker
    # ------------------------------------------------------------------
    def call_resilient(
        self,
        address: Address,
        command: ACECmdLine,
        policy: Optional[CallPolicy] = None,
        *,
        check: bool = True,
        expected_subject: Optional[str] = None,
        attach: bool = True,
    ) -> Generator:
        """``call_once`` hardened for gray failure.

        Each attempt (connect + call + reply) races a simulated timeout of
        ``policy.attempt_timeout``; transport failures and attempt timeouts
        are retried with jittered exponential backoff until
        ``policy.max_attempts`` or the overall ``policy.deadline`` is
        exhausted.  A per-address circuit breaker (shared environment-wide
        via ``ctx.resilience``) sheds calls to endpoints that keep failing.

        Raises :class:`BreakerOpen` without touching the network when the
        breaker is open, :class:`DeadlineExceeded` when the budget runs out,
        or the last transport error when attempts are exhausted.  A
        ``cmdFailed`` reply (plain :class:`CallError`) is never retried —
        the endpoint answered, so it also counts as breaker success.
        """
        registry = self.ctx.resilience
        policy = policy or registry.default_policy
        stats = registry.stats
        breaker = registry.breaker(address, policy)
        command = self._stamp(command)
        sim = self.ctx.sim
        tracer = self.ctx.obs.tracer
        span = tracer.start_span(
            f"rpc:{command.name}", self.principal, self.current_span(),
            kind=SPAN_CLIENT, address=str(address),
        )
        if span is not None:
            self._span_stack.append(span)
        status = "interrupted"
        started = sim.now
        deadline_at = sim.now + policy.deadline
        stats.calls += 1
        attempt = 0
        try:
            while True:
                now = sim.now
                if not breaker.allow(now):
                    stats.breaker_rejected += 1
                    status = "breaker-open"
                    raise BreakerOpen(f"circuit open for {address} ({command.name!r})")
                budget = min(policy.attempt_timeout, deadline_at - now)
                if budget <= 0:
                    stats.deadline_expired += 1
                    stats.failures += 1
                    status = "deadline"
                    raise DeadlineExceeded(
                        f"{command.name!r} to {address} exceeded {policy.deadline:.3f}s deadline"
                    )
                try:
                    reply = yield from self._attempt_with_timeout(
                        address, command, budget,
                        check=check, expected_subject=expected_subject, attach=attach,
                    )
                except RETRYABLE as exc:
                    if isinstance(exc, DeadlineExceeded):
                        stats.deadline_expired += 1
                    if breaker.record_failure(sim.now):
                        stats.breaker_trips += 1
                        if span is not None:
                            span.annotate(breaker_tripped=1)
                        self.ctx.trace.emit(
                            sim.now, "rpc", "breaker-open", address=str(address)
                        )
                    attempt += 1
                    if attempt >= policy.max_attempts or sim.now >= deadline_at:
                        stats.failures += 1
                        status = "deadline" if isinstance(exc, DeadlineExceeded) else "transport-error"
                        raise
                    stats.retries += 1
                    delay = policy.backoff_delay(attempt, self._retry_rng)
                    yield sim.timeout(min(delay, max(deadline_at - sim.now, 0.0)))
                    continue
                except CallError:
                    # The service answered (cmdFailed): healthy transport.
                    if breaker.record_success():
                        stats.breaker_resets += 1
                    stats.successes += 1
                    status = "cmdFailed"
                    raise
                if breaker.record_success():
                    stats.breaker_resets += 1
                    self.ctx.trace.emit(
                        sim.now, "rpc", "breaker-closed", address=str(address)
                    )
                stats.successes += 1
                status = "ok"
                return reply
        finally:
            if span is not None:
                self._m_latency.observe_ex(sim.now - started, span.trace_id)
                if self._span_stack and self._span_stack[-1] is span:
                    self._span_stack.pop()
                # ``attempt`` counts failed attempts; cmdFailed/ok add one
                # more (the attempt that reached the service and returned).
                total = attempt + (1 if status in ("ok", "cmdFailed") else 0)
                tracer.finish(
                    span, status=status, attempts=total,
                    retries=max(total - 1, 0), breaker=breaker.state,
                )
            else:
                self._m_latency.observe(sim.now - started)

    def _attempt_with_timeout(
        self, address: Address, command: ACECmdLine, timeout: float, **kw
    ) -> Generator:
        """Race one call attempt against a sim timeout; losing attempts are
        interrupted so they release their connection."""
        sim = self.ctx.sim
        proc = sim.process(
            self._attempt(address, command, **kw), name=f"rpc.{self.principal}"
        )
        timer = sim.timeout(timeout)
        outcome = yield sim.any_of([proc, timer])
        if proc in outcome:
            return outcome[proc]
        proc.interrupt("rpc attempt deadline")
        raise DeadlineExceeded(
            f"{command.name!r} to {address} exceeded {timeout:.3f}s attempt budget"
        )

    def _attempt(
        self,
        address: Address,
        command: ACECmdLine,
        *,
        check: bool = True,
        expected_subject: Optional[str] = None,
        attach: bool = True,
    ) -> Generator:
        connection = None
        try:
            connection = yield from self.connect(
                address, expected_subject=expected_subject, attach=attach
            )
            reply = yield from connection.call(command, check=check)
            return reply
        finally:
            if connection is not None:
                connection.close()
