"""The ACE service daemon infrastructure (Chapter 2 of the paper).

This is the paper's primary contribution: a base
:class:`~repro.core.daemon.ACEDaemon` whose four logical threads
(main / command / data / control, §2.1.1) communicate over message queues;
a client proxy (:mod:`repro.core.client`); notification lists (§2.5);
service leases (§2.4); the daemon startup sequence (§2.6, Fig. 9); and the
KeyNote authorization hook (§3.2, Fig. 10).

Concrete services subclass :class:`ACEDaemon`, declare their command
semantics, and implement ``cmd_<name>`` handlers; everything else —
sockets, SSL, parsing, validation, auth, notification fan-out, ASD
registration and lease renewal — is inherited, which is exactly the
"simple, standard, and modular task" §2.1 promises.
"""

from repro.core.context import DaemonContext, SecurityMode
from repro.core.daemon import ACEDaemon, Request, ServiceError
from repro.core.client import (
    CallError,
    ConnectionPool,
    PipelinedConnection,
    ServiceClient,
    ServiceConnection,
)
from repro.core.leases import Lease, LeaseRenewalBatcher, LeaseTable
from repro.core.lookup_cache import LookupCache, query_key
from repro.core.notifications import NotificationEntry, NotificationTable
from repro.core.policy import (
    BreakerOpen,
    CallPolicy,
    CircuitBreaker,
    DeadlineExceeded,
    ResilienceRegistry,
    TransportError,
)

__all__ = [
    "ACEDaemon",
    "BreakerOpen",
    "CallError",
    "CallPolicy",
    "CircuitBreaker",
    "ConnectionPool",
    "DaemonContext",
    "DeadlineExceeded",
    "Lease",
    "LeaseRenewalBatcher",
    "LeaseTable",
    "LookupCache",
    "PipelinedConnection",
    "query_key",
    "NotificationEntry",
    "NotificationTable",
    "Request",
    "ResilienceRegistry",
    "SecurityMode",
    "ServiceClient",
    "ServiceConnection",
    "ServiceError",
    "TransportError",
]
