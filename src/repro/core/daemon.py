"""The base ACE service daemon (§2.1, §2.1.1).

Thread structure (all scheduled on the DES kernel, mirroring the paper's
four Java threads):

* **main thread** — initialization (Fig. 9: RoomDB → ASD → NetLogger),
  then the lease-renewal loop.
* **command threads** — one per client connection: read a command string,
  parse + validate it against this daemon's semantics, authorize it
  (Fig. 10), then hand it to the control thread over a message queue and
  relay the reply.
* **control thread** — executes commands serially via ``cmd_<name>``
  handler methods and dispatches notifications (§2.5) after success.
* **data thread** — drains the daemon's UDP socket and hands datagrams to
  ``on_datagram`` (stream services override this; §2.1.1's "data stream
  operations over a UDP channel").

Subclassing recipe::

    class PTZCameraDaemon(DeviceDaemon):
        service_type = "PTZCamera"

        def build_semantics(self, sem):
            sem.define("setPosition", ArgSpec("x", ArgType.FLOAT), ...)

        def cmd_setPosition(self, request):
            ...                # plain method, or a generator that yields
            return {"x": ...}  # merged into the cmdOk reply
"""

from __future__ import annotations

import inspect
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.lang import ACECmdLine, ACELanguageError, ArgSpec, ArgType, CommandSemantics
from repro.lang.command import (
    CLIENT_ID_ARG,
    CLIENT_SEQ_ARG,
    PIPELINE_SEQ_ARG,
    RESERVED_ARGS,
    error_reply,
    ok_reply,
)
from repro.lang.semantics import reply_semantics
from repro.obs import SERVER as SPAN_SERVER
from repro.obs import extract as extract_trace
from repro.net import Address, Connection, ConnectionClosed, ConnectionRefused, HandshakeError
from repro.net.host import Host, HostDownError
from repro.net.secure import handshake_server
from repro.security.crypto import verify_signature
from repro.security.keynote import ComplianceChecker, parse_assertion
from repro.sim import Interrupt, Process, QueueClosed, Store

from repro.core.client import Channel, ServiceClient, CallError, channel_binding
from repro.core.context import DaemonContext, SecurityMode
from repro.core.notifications import NotificationEntry, NotificationTable
from repro.core.policy import CallPolicy, TransportError

#: retry shape for boot-time ASD registration: daemons launched at boot may
#: beat the ASD onto the network (§2.6), so back off ~0.5 s → 4 s across five
#: attempts.  The breaker is disabled — every daemon in the environment races
#: the same ASD address at boot, and one daemon's early failures must not
#: shed its siblings' registrations.
STARTUP_REGISTRATION_POLICY = CallPolicy(
    deadline=60.0,
    attempt_timeout=5.0,
    max_attempts=5,
    backoff_base=0.5,
    backoff_max=4.0,
    breaker_threshold=0,
)


#: memo of command verb -> "cmd_<verb>" so the dispatch path never
#: allocates the attribute name per request (bounded by the vocabulary)
_HANDLER_ATTRS: Dict[str, str] = {}

#: how many ``(client_id, seq) -> reply`` pairs the idempotency window
#: holds before the oldest is evicted.  Sized for "a retry burst across a
#: restart", not for history: a client re-sends within its call deadline,
#: so the window only needs to outlive the in-flight population.
DEDUP_WINDOW = 512


class ServiceError(Exception):
    """Raised by handlers to produce a cmdFailed reply with a reason."""


@dataclass
class Request:
    """An inbound command plus the identity it arrived under."""

    command: ACECmdLine
    principal: str
    received_at: float
    remote: Optional[Address] = None
    #: server span for this request (None when untraced/unsampled)
    span: Optional[Any] = None
    #: when the command thread queued this request for the control thread
    queued_at: float = 0.0


class ACEDaemon:
    """Base class of every ACE service (root of the Fig. 6 hierarchy)."""

    #: this class's segment of the service-class path (subclasses override)
    service_type = "ACEService"

    def __init__(
        self,
        ctx: DaemonContext,
        name: str,
        host: Host,
        *,
        port: Optional[int] = None,
        room: str = "",
        authorize_commands: Optional[bool] = None,
        register_with_asd: bool = True,
        incarnation: int = 0,
        dedup_window: int = DEDUP_WINDOW,
    ):
        self.ctx = ctx
        self.name = name
        self.host = host
        self.port = port if port is not None else ctx.net.ephemeral_port(host.name)
        self.room = room or host.room
        self.register_with_asd = register_with_asd
        #: how many times this (name, host, port) has been reincarnated by
        #: a supervisor; registrations carry it so the ASD can fence a
        #: stale incarnation that resurfaces after a partition heals
        self.incarnation = incarnation
        self.dedup_window = dedup_window
        #: idempotency window: ``(client_id, seq) -> reply`` in LRU order;
        #: checkpointed and restored across restarts so a retry that spans
        #: a crash replays the old reply instead of re-executing
        self._dedup_cache: "OrderedDict[Tuple[str, int], ACECmdLine]" = OrderedDict()
        if authorize_commands is None:
            authorize_commands = ctx.security.mode is SecurityMode.SSL_KEYNOTE
        self.authorize_commands = authorize_commands

        self.semantics = self._base_semantics()
        self.build_semantics(self.semantics)
        self.reply_semantics = reply_semantics()
        # Handler dispatch table, built once: the control thread serves every
        # request through this, so it must not pay getattr + f-string per
        # command.  Handlers are bound methods keyed by verb.
        self._dispatch = {
            attr[4:]: getattr(self, attr)
            for attr in dir(type(self))
            if attr.startswith("cmd_")
        }
        self.notifications = NotificationTable()
        self.running = False
        self._listener = None
        self._datagram = None
        self._control_queue: Optional[Store] = None
        self._main_proc: Optional[Process] = None
        self._child_procs: List[Process] = []
        self._credential_cache: Dict[str, tuple[float, list]] = {}
        self._credential_sweep_at = 0.0
        self._commands_served = 0

        # Per-daemon instruments (cached so the dispatch path is dict-free).
        metrics = ctx.obs.metrics
        self._m_queue_wait = metrics.histogram(f"daemon.{name}.queue_wait_s")
        self._m_service_time = metrics.histogram(f"daemon.{name}.service_time_s")
        self._m_queue_depth = metrics.gauge(f"daemon.{name}.queue_depth")
        self._m_auth_cache_hits = metrics.counter(f"daemon.{name}.auth_cache.hits")
        self._m_auth_cache_misses = metrics.counter(f"daemon.{name}.auth_cache.misses")
        self._m_lease_renewals = metrics.counter(f"daemon.{name}.lease_renewals")
        self._m_dedup_hits = metrics.counter(f"daemon.{name}.dedup.hits")
        self._m_dedup_evicted = metrics.counter(f"daemon.{name}.dedup.evicted")
        self._m_notify_sent = metrics.counter(f"daemon.{name}.notifications.delivered")
        self._m_notify_failed = metrics.counter(f"daemon.{name}.notifications.failed")
        self._m_notify_batched = metrics.counter(f"daemon.{name}.notifications.batched")
        #: lazy long-lived client whose pool carries notification deliveries
        self._notify_client: Optional[ServiceClient] = None
        self._m_cmd_counters: Dict[str, Any] = {}
        metrics.register_view(f"daemon.{name}.watchers", self.notifications.counts)
        # Telemetry identity: everything under ``daemon.<name>.*`` belongs
        # to this (service, address, incarnation).  A reincarnation re-runs
        # this with its bumped incarnation, starting a fresh series in the
        # E27 telemetry plane instead of splicing into the corpse's.
        ctx.obs.register_scope(
            name, f"{host.name}:{self.port}", host.name,
            incarnation=incarnation, prefix=f"daemon.{name}.",
        )

        # Identity for SSL server handshakes and signed actions.
        if ctx.security.mode is not SecurityMode.NONE and ctx.security.ca is not None:
            self.keypair, self.certificate = ctx.issue_identity(name)
        else:
            self.keypair, self.certificate = None, None
        self._hs_rng = ctx.rng.py(f"daemon.{name}.handshake")

    # ------------------------------------------------------------------
    # Hierarchy (Fig. 6)
    # ------------------------------------------------------------------
    @classmethod
    def class_path(cls) -> str:
        """Slash-joined service types from the root, e.g.
        ``ACEService/Device/PTZCamera/VCC3``."""
        parts: List[str] = []
        for klass in reversed(cls.__mro__):
            stype = klass.__dict__.get("service_type")
            if stype and (not parts or parts[-1] != stype):
                parts.append(stype)
        return "/".join(parts)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def _base_semantics(self) -> CommandSemantics:
        sem = CommandSemantics()
        sem.define("ping", description="liveness probe")
        sem.define("listCommands", description="enumerate this daemon's vocabulary")
        sem.define("getInfo", description="name/host/port/class/room of this daemon")
        sem.define(
            "attach",
            ArgSpec("principal", ArgType.STRING),
            ArgSpec("sig_e", ArgType.STRING, required=False),
            ArgSpec("sig_s", ArgType.STRING, required=False),
            description="bind a client identity to this connection",
        )
        sem.define(
            "addNotification",
            ArgSpec("cmd", ArgType.WORD),
            ArgSpec("listener", ArgType.STRING),
            ArgSpec("host", ArgType.STRING),
            ArgSpec("port", ArgType.INTEGER),
            ArgSpec("callback", ArgType.WORD),
            description="notify listener when cmd executes (§2.5)",
        )
        sem.define(
            "removeNotification",
            ArgSpec("cmd", ArgType.WORD),
            ArgSpec("listener", ArgType.STRING),
            ArgSpec("callback", ArgType.WORD, required=False),
        )
        return sem

    def build_semantics(self, sem: CommandSemantics) -> None:
        """Subclass hook: define this service's command vocabulary."""

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Address:
        return Address(self.host.name, self.port)

    def start(self) -> Process:
        """Launch the daemon; returns the main-thread process."""
        if self.running:
            raise ServiceError(f"daemon {self.name!r} already running")
        self.running = True
        self._main_proc = self.ctx.sim.process(self._main_thread(), name=f"{self.name}.main")
        return self._main_proc

    def stop(self) -> Process:
        """Graceful shutdown: deregister from the ASD, close sockets."""
        return self.ctx.sim.process(self._shutdown(), name=f"{self.name}.stop")

    def kill(self) -> None:
        """Abrupt process death (fault injection): no deregistration, no
        lease release — exactly the wreckage a real crash leaves behind.
        The ASD lease lapses on its own; a supervisor notices the missed
        heartbeats."""
        if not self.running:
            return
        self.running = False
        if self.ctx.batch_lease_renewals:
            self.ctx.lease_batcher(self.host).unenroll(self.name)
        self._teardown()
        if self._main_proc is not None:
            self._main_proc.interrupt("killed")

    def respawn(self, incarnation: int) -> "ACEDaemon":
        """A fresh instance of this daemon on the same host and port under
        a higher incarnation number (the supervisor restart path).  The
        port is kept so addresses clients already hold stay valid.
        Subclasses with extra constructor state override
        :meth:`_respawn_kwargs`."""
        return type(self)(
            self.ctx,
            self.name,
            self.host,
            port=self.port,
            room=self.room,
            authorize_commands=self.authorize_commands,
            register_with_asd=self.register_with_asd,
            incarnation=incarnation,
            **self._respawn_kwargs(),
        )

    def _respawn_kwargs(self) -> Dict[str, Any]:
        """Extra constructor kwargs :meth:`respawn` must carry over."""
        return {}

    def _beat(self) -> None:
        """Tell this host's supervisor (when one is watching) that we are
        alive — piggybacked on successful lease renewals, so detection
        needs no wire traffic of its own."""
        supervisor = self.ctx.supervisors.get(self.host.name)
        if supervisor is not None:
            supervisor.beat(self.name)

    def _shutdown(self) -> Generator:
        if not self.running:
            return
        self.running = False
        if self.ctx.batch_lease_renewals:
            self.ctx.lease_batcher(self.host).unenroll(self.name)
        if self.register_with_asd and self.ctx.directory_addresses() and self.host.up:
            try:
                client = self._service_client()
                yield from client.call_failover(
                    self.ctx.directory_addresses(), ACECmdLine("deregister", name=self.name)
                )
            except (CallError, ConnectionClosed, Exception):
                pass  # best effort; the lease will expire anyway
        self._teardown()

    def _teardown(self) -> None:
        if self._notify_client is not None:
            self._notify_client.close_channels()
        if self._listener is not None:
            self._listener.close()
        if self._datagram is not None:
            self._datagram.close()
        if self._control_queue is not None:
            self._control_queue.close()
        for proc in self._child_procs:
            proc.interrupt("daemon stopped")

    def _service_client(self) -> ServiceClient:
        # Under SSL_KEYNOTE the daemon's identity is its key principal (the
        # one POLICY assertions license); elsewhere the service name reads
        # better in traces.
        principal = self.keypair.principal() if self.keypair is not None else self.name
        return ServiceClient(self.ctx, self.host, principal=principal, keypair=self.keypair)

    # ------------------------------------------------------------------
    # Main thread (startup sequence + lease renewal)
    # ------------------------------------------------------------------
    def _main_thread(self) -> Generator:
        sim, net = self.ctx.sim, self.ctx.net
        try:
            self._listener = net.listen(self.host, self.port)
            self._datagram = net.bind_datagram(self.host, self.port)
            self._control_queue = Store(sim, name=f"{self.name}.control")
            self._spawn(self._accept_loop(), "accept")
            self._spawn(self._control_thread(), "control")
            self._spawn(self._data_thread(), "data")
            yield from self._startup_sequence()
            self.on_started()
            self._beat()
            yield from self._lease_loop()
        except (HostDownError, Interrupt):
            self.running = False
            self._teardown()
        except QueueClosed:
            pass

    def _spawn(self, gen: Generator, tag: str) -> Process:
        proc = self.ctx.sim.process(self._guard(gen), name=f"{self.name}.{tag}")
        self._child_procs.append(proc)
        return proc

    @staticmethod
    def _guard(gen: Generator) -> Generator:
        """Child threads die quietly on shutdown interrupts / host death /
        closed queues; real bugs still crash loudly."""
        try:
            result = yield from gen
            return result
        except (Interrupt, HostDownError, QueueClosed):
            return None

    def on_started(self) -> None:
        """Subclass hook: called once initialization completes."""

    def _startup_sequence(self) -> Generator:
        """Fig. 9: RoomDB (2) → ASD register (3) → NetLogger (5)."""
        trace = self.ctx.trace
        trace.emit(self.ctx.sim.now, self.name, "daemon-launch", host=self.host.name)
        client = self._service_client()
        if self.ctx.roomdb_address is not None and self.room:
            try:
                yield from client.call_once(
                    self.ctx.roomdb_address,
                    ACECmdLine(
                        "registerService",
                        service=self.name,
                        room=self.room,
                        host=self.host.name,
                        port=self.port,
                    ),
                )
                trace.emit(self.ctx.sim.now, self.name, "roomdb-registered", room=self.room)
            except (CallError, ConnectionClosed, ConnectionRefused) as exc:
                trace.emit(self.ctx.sim.now, self.name, "roomdb-unavailable", error=str(exc))
        if self.register_with_asd and self.ctx.directory_addresses():
            yield from client.call_failover(
                self.ctx.directory_addresses(),
                self._registration_command(),
                policy=STARTUP_REGISTRATION_POLICY,
            )
            trace.emit(self.ctx.sim.now, self.name, "asd-registered", cls=self.class_path())
        if self.ctx.netlogger_address is not None:
            try:
                yield from client.call_once(
                    self.ctx.netlogger_address,
                    ACECmdLine(
                        "logEvent",
                        source=self.name,
                        event="service_started",
                        detail=f"host={self.host.name} port={self.port}",
                    ),
                )
                trace.emit(self.ctx.sim.now, self.name, "netlogger-logged")
            except (CallError, ConnectionClosed, ConnectionRefused) as exc:
                trace.emit(self.ctx.sim.now, self.name, "netlogger-unavailable", error=str(exc))
        trace.emit(self.ctx.sim.now, self.name, "daemon-ready")

    def _registration_command(self) -> ACECmdLine:
        command = ACECmdLine(
            "register",
            name=self.name,
            host=self.host.name,
            port=self.port,
            room=self.room or "unassigned",
            cls=self.class_path(),
        )
        if self.incarnation:
            # Only reincarnations carry the fencing number, so first-life
            # wire traffic stays byte-identical to the pre-recovery plane.
            command = command.with_args(inc=self.incarnation)
        return command

    def _lease_loop(self) -> Generator:
        """Renew the ASD lease at the configured fraction of its duration.

        With ``ctx.batch_lease_renewals`` the daemon instead enrolls in its
        host's :class:`~repro.core.leases.LeaseRenewalBatcher`, which sends
        one ``renewLease names=(...)`` for every service on the host."""
        interval = self.ctx.lease_duration * self.ctx.lease_renew_fraction
        batched = (
            self.register_with_asd
            and self.ctx.batch_lease_renewals
            and self.ctx.directory_addresses()
        )
        if batched:
            self.ctx.lease_batcher(self.host).enroll(self.name, self._reregister)
            while self.running:   # keep the main thread parked (Fig. 9)
                yield self.ctx.sim.timeout(self.ctx.lease_duration)
            return
        client = self._service_client()
        while self.running:
            yield self.ctx.sim.timeout(interval)
            if not self.running:
                return
            addresses = self.ctx.directory_addresses()
            if not (self.register_with_asd and addresses):
                # Nothing to renew against; the liveness signal is local.
                self._beat()
                continue
            try:
                reply = yield from client.call_failover(
                    addresses,
                    ACECmdLine("renewLease", name=self.name),
                    attach=False,
                )
                del reply
                self._m_lease_renewals.inc()
                self._beat()
            except (CallError, ConnectionClosed, ConnectionRefused):
                # Lease lapsed or ASD restarted: re-register from scratch.
                try:
                    yield from self._reregister()
                except (CallError, ConnectionClosed, ConnectionRefused):
                    self.ctx.trace.emit(self.ctx.sim.now, self.name, "asd-unreachable")

    def _reregister(self) -> Generator:
        """Push our registration at the directory group again."""
        client = self._service_client()
        yield from client.call_failover(
            self.ctx.directory_addresses(), self._registration_command()
        )
        self.ctx.trace.emit(self.ctx.sim.now, self.name, "asd-reregistered")

    # ------------------------------------------------------------------
    # Command threads
    # ------------------------------------------------------------------
    def _accept_loop(self) -> Generator:
        while self.running:
            try:
                conn = yield from self._listener.accept()
            except (ConnectionClosed, QueueClosed):
                return
            self._spawn(self._command_thread(conn), f"cmd:{conn.remote}")

    def _command_thread(self, conn: Connection) -> Generator:
        channel: Channel = conn
        if self.ctx.security.mode is not SecurityMode.NONE:
            if self.keypair is None or self.certificate is None:
                conn.close()
                return
            try:
                channel = yield from handshake_server(
                    conn, self._hs_rng, self.keypair, self.certificate
                )
            except (HandshakeError, ConnectionClosed):
                conn.close()
                return
        principal = "anonymous"
        attached = False
        while self.running:
            try:
                text = yield from channel.recv()
            except (ConnectionClosed, HandshakeError):
                return
            except Interrupt:
                channel.close()
                return
            try:
                command = self.semantics.validate(self._parse(text))
            except ACELanguageError as exc:
                yield from self._safe_send(channel, f'cmdFailed cmd=parse reason="{_clean(exc)}";')
                continue
            if command.name == "attach":
                principal, attached, problem = self._handle_attach(command, channel)
                reply = (
                    ok_reply(command, principal=principal)
                    if problem is None
                    else error_reply(command, problem)
                )
                yield from self._safe_send(channel, self._tag_reply(command, reply).to_string())
                continue
            request = Request(
                command=command,
                principal=principal if attached else "anonymous",
                received_at=self.ctx.sim.now,
                remote=channel.remote,
            )
            obs = self.ctx.obs
            inbound = extract_trace(command)
            if inbound is not None:
                request.span = obs.tracer.start_span(
                    f"serve:{command.name}", self.name, inbound,
                    kind=SPAN_SERVER, principal=request.principal,
                )
            # The request span is ambient while this thread works on the
            # request, so e.g. the authorization path's AuthDB fetch joins
            # the trace as a child.
            prev_ambient = obs.set_ambient(request.span)
            try:
                if self.authorize_commands and command.name != "ping":
                    allowed, reason = yield from self._authorize(request)
                    if not allowed:
                        obs.tracer.finish(request.span, status="denied")
                        denied = error_reply(command, f"permission denied: {reason}")
                        yield from self._safe_send(
                            channel, self._tag_reply(command, denied).to_string()
                        )
                        continue
                request.queued_at = self.ctx.sim.now
                reply_slot = self.ctx.sim.event()
                try:
                    yield self._control_queue.put((request, reply_slot))
                except QueueClosed:
                    return
                self._m_queue_depth.set(len(self._control_queue))
                if command.get(PIPELINE_SEQ_ARG) is not None:
                    # Pipelined command: a spawned responder sends the
                    # tagged reply when it's ready while this thread goes
                    # straight back to reading — that is what lets k
                    # tagged commands from one channel actually share the
                    # daemon's command queue instead of serialising on
                    # this read loop.  Untagged commands keep the strict
                    # request/reply rhythm plain connections rely on.
                    self._spawn(
                        self._pipelined_reply(channel, command, reply_slot),
                        "pipelined-reply",
                    )
                    reply = None
                else:
                    reply = yield reply_slot
            finally:
                obs.set_ambient(prev_ambient)
            if reply is None:
                continue
            yield from self._safe_send(channel, self._tag_reply(command, reply).to_string())

    def _pipelined_reply(self, channel: Channel, command: ACECmdLine, reply_slot) -> Generator:
        reply = yield reply_slot
        yield from self._safe_send(channel, self._tag_reply(command, reply).to_string())

    @staticmethod
    def _tag_reply(request: ACECmdLine, reply: ACECmdLine) -> ACECmdLine:
        """Echo the request's pipeline tag (if any) so a client with
        several commands in flight can pair this reply to its call."""
        seq = request.get(PIPELINE_SEQ_ARG)
        if seq is None:
            return reply
        return reply.with_args(**{PIPELINE_SEQ_ARG: seq})

    def _parse(self, text: Any) -> ACECmdLine:
        if not isinstance(text, str):
            raise ACELanguageError(f"expected a command string, got {type(text).__name__}")
        from repro.lang import parse_command

        return parse_command(text)

    def _safe_send(self, channel: Channel, text: str) -> Generator:
        try:
            yield from channel.send(text)
        except (ConnectionClosed, HostDownError):
            pass

    def _handle_attach(self, command: ACECmdLine, channel: Channel):
        principal = command.str("principal")
        # Identity proof only matters where commands are authorized; the
        # bootstrap services (ASD/AuthDB/...) accept claimed identities.
        if self.ctx.security.mode is SecurityMode.SSL_KEYNOTE and self.authorize_commands:
            sig_e, sig_s = command.get("sig_e"), command.get("sig_s")
            public = self.ctx.security.principal_keys.get(principal)
            if sig_e is None or sig_s is None:
                return principal, False, "attach requires a signature"
            if public is None:
                return principal, False, f"unknown principal {principal}"
            message = f"attach:{principal}:{channel_binding(channel)}"
            try:
                signature = (int(sig_e, 16), int(sig_s, 16))
            except ValueError:
                return principal, False, "malformed attach signature"
            if not verify_signature(public, message, signature):
                return principal, False, "attach signature invalid"
        return principal, True, None

    # ------------------------------------------------------------------
    # Authorization (Fig. 10)
    # ------------------------------------------------------------------
    def _authorize(self, request: Request) -> Generator:
        attrs: Dict[str, Any] = {
            "app_domain": "ace",
            "service": self.name,
            "service_class": self.service_type,
            "command": request.command.name,
        }
        for key, value in request.command:
            if key in RESERVED_ARGS:
                continue
            if isinstance(value, (int, float, str)) and key not in attrs:
                attrs[key] = value if isinstance(value, str) else str(value)
        credentials = yield from self._fetch_credentials(request.principal)
        checker = ComplianceChecker(
            list(self.ctx.security.policies) + credentials,
            principal_keys=self.ctx.security.principal_keys,
        )
        if checker.authorized([request.principal], attrs):
            return True, ""
        return False, f"{request.principal} may not {request.command.name} on {self.name}"

    def _fetch_credentials(self, principal: str) -> Generator:
        """Fig. 10 steps 2–4: ask the Authorization DB for the principal's
        credentials (with a small cache so E5 can sweep the cost)."""
        cfg = self.ctx.security
        if not cfg.authdb_lookup or self.ctx.asd_address is None:
            return []
        now = self.ctx.sim.now
        self._evict_stale_credentials(now)
        cached = self._credential_cache.get(principal)
        if cached is not None and now - cached[0] <= cfg.credential_cache_ttl:
            self._m_auth_cache_hits.inc()
            return cached[1]
        self._m_auth_cache_misses.inc()
        authdb_addr = getattr(self.ctx, "authdb_address", None)
        if authdb_addr is None:
            return []
        try:
            client = self._service_client()
            reply = yield from client.call_once(
                authdb_addr,
                ACECmdLine("getCredentials", principal=principal),
                attach=False,
            )
        except (CallError, ConnectionClosed):
            return []
        from repro.services.authdb import decode_credential

        texts = reply.get("credentials", ())
        credentials = []
        for text in texts if isinstance(texts, tuple) else ():
            try:
                credentials.append(parse_assertion(decode_credential(text)))
            except Exception:
                continue
        self._credential_cache[principal] = (now, credentials)
        return credentials

    def _evict_stale_credentials(self, now: float) -> None:
        """Drop cache entries past their TTL so long-lived daemons don't
        accumulate one entry per principal ever seen.  Sweeps are rate
        limited to one per lease duration — the natural "a principal that
        went away has been purged elsewhere too" horizon."""
        if now - self._credential_sweep_at < self.ctx.lease_duration:
            return
        self._credential_sweep_at = now
        ttl = max(self.ctx.security.credential_cache_ttl, 0.0)
        stale = [p for p, (t, _) in self._credential_cache.items() if now - t > ttl]
        for principal in stale:
            del self._credential_cache[principal]

    # ------------------------------------------------------------------
    # Control thread
    # ------------------------------------------------------------------
    def _control_thread(self) -> Generator:
        obs = self.ctx.obs
        while self.running:
            try:
                request, reply_slot = yield self._control_queue.get()
            except QueueClosed:
                return
            now = self.ctx.sim.now
            self._m_queue_depth.set(len(self._control_queue))
            queue_wait = now - (request.queued_at or request.received_at)
            self._m_queue_wait.observe(queue_wait)
            if request.span is not None:
                request.span.annotate(queue_wait_ms=round(queue_wait * 1e3, 3))
            stamp = self._dedup_key(request.command)
            if stamp is not None:
                cached = self._dedup_cache.get(stamp)
                if cached is not None:
                    # A retry of a command we already executed (possibly in
                    # a previous incarnation): replay the reply verbatim.
                    self._dedup_cache.move_to_end(stamp)
                    self._m_dedup_hits.inc()
                    obs.tracer.finish(request.span, status="dedup-replay")
                    if not reply_slot.triggered:
                        reply_slot.succeed(cached)
                    continue
            # Make the request span ambient for the handler (and for any
            # work it spawns: replication pushes, notifications, ...).
            prev_ambient = obs.set_ambient(request.span)
            try:
                yield from self.host.execute(self.ctx.dispatch_work)
                reply = yield from self._execute(request)
            except ServiceError as exc:
                reply = error_reply(request.command, str(exc))
            except HostDownError:
                obs.tracer.finish(request.span, status="host-down")
                return
            except Interrupt:
                obs.tracer.finish(request.span, status="interrupted")
                return
            except ACELanguageError as exc:
                reply = error_reply(request.command, _clean(exc))
            finally:
                obs.set_ambient(prev_ambient)
            self._commands_served += 1
            self._count_command(request.command.name)
            if request.span is not None:
                # Traced request: pin its trace id to the service-time
                # bucket as an exemplar (memory-only; no wire impact).
                self._m_service_time.observe_ex(
                    self.ctx.sim.now - now, request.span.trace_id
                )
            else:
                self._m_service_time.observe(self.ctx.sim.now - now)
            obs.tracer.finish(
                request.span, status="ok" if reply.name == "cmdOk" else "cmdFailed"
            )
            if stamp is not None:
                self._dedup_remember(stamp, reply)
                # Optional durability barrier (Checkpointable, eager mode):
                # persist the dedup entry before the reply leaves, so a
                # crash between execute and reply cannot re-execute.
                barrier = self._commit_barrier(request, reply)
                if barrier is not None:
                    try:
                        yield from barrier
                    except (HostDownError, Interrupt):
                        return
            if not reply_slot.triggered:
                reply_slot.succeed(reply)
            if reply.name == "cmdOk":
                prev_ambient = obs.set_ambient(request.span)
                try:
                    self._spawn_notifications(request)
                finally:
                    obs.set_ambient(prev_ambient)

    # -- idempotency window ------------------------------------------------
    @staticmethod
    def _dedup_key(command: ACECmdLine) -> Optional[Tuple[str, int]]:
        cid = command.get(CLIENT_ID_ARG)
        if cid is None:
            return None
        seq = command.get(CLIENT_SEQ_ARG)
        return (str(cid), seq if isinstance(seq, int) else 0)

    def _dedup_remember(self, key: Tuple[str, int], reply: ACECmdLine) -> None:
        cache = self._dedup_cache
        cache[key] = reply
        cache.move_to_end(key)
        while len(cache) > self.dedup_window:
            cache.popitem(last=False)
            self._m_dedup_evicted.inc()

    def _commit_barrier(self, request: Request, reply: ACECmdLine) -> Optional[Generator]:
        """Hook run after a stamped command commits, before its reply is
        released.  Checkpointable daemons in eager mode return a generator
        that persists the checkpoint; the default is a no-op."""
        return None

    def export_dedup(self) -> Tuple[str, ...]:
        """The idempotency window as wire-safe lines (oldest first) for
        inclusion in a checkpoint."""
        from repro.lang.wire import join_wire

        return tuple(
            join_wire((cid, seq, reply.to_string()))
            for (cid, seq), reply in self._dedup_cache.items()
        )

    def import_dedup(self, lines) -> int:
        """Rebuild the idempotency window from a checkpoint (restore path)."""
        from repro.lang import parse_command
        from repro.lang.wire import split_wire

        restored = 0
        for line in lines:
            try:
                cid, seq, text = split_wire(line)
                reply = parse_command(text)
            except (ValueError, ACELanguageError):
                continue
            self._dedup_remember((cid, int(seq)), reply)
            restored += 1
        return restored

    def _count_command(self, verb: str) -> None:
        counter = self._m_cmd_counters.get(verb)
        if counter is None:
            counter = self._m_cmd_counters[verb] = self.ctx.obs.metrics.counter(
                f"daemon.{self.name}.cmd.{verb}"
            )
        counter.inc()

    def _execute(self, request: Request) -> Generator:
        name = request.command.name
        if name == "addNotification":
            return self._builtin_add_notification(request)
        if name == "removeNotification":
            return self._builtin_remove_notification(request)
        if name == "ping":
            return ok_reply(request.command, time=float(self.ctx.sim.now))
        if name == "listCommands":
            return ok_reply(request.command, commands=tuple(self.semantics.commands()))
        if name == "getInfo":
            return ok_reply(
                request.command,
                name=self.name,
                host=self.host.name,
                port=self.port,
                room=self.room or "unassigned",
                cls=self.class_path(),
            )
        # Instance-level overrides (tests stub handlers onto live daemons)
        # win over the init-time dispatch table.
        attr = _HANDLER_ATTRS.get(name)
        if attr is None:
            attr = _HANDLER_ATTRS[name] = "cmd_" + name
        handler = self.__dict__.get(attr)
        if handler is None:
            handler = self._dispatch.get(name)
        if handler is None:
            return error_reply(request.command, f"no handler for {name!r}")
        result = handler(request)
        if inspect.isgenerator(result):
            result = yield from result
        if isinstance(result, ACECmdLine):
            return result
        return ok_reply(request.command, **(result or {}))

    def self_execute(self, command: ACECmdLine) -> Generator:
        """Run one of our own commands through the normal execute path
        (inline, so it is safe from inside a handler) and fire its
        notifications.  Used by device daemons that emit event commands
        (e.g. the FIU's ``identified``)."""
        command = self.semantics.validate(command)
        request = Request(command=command, principal=self.name, received_at=self.ctx.sim.now)
        reply = yield from self._execute(request)
        if reply.name == "cmdOk":
            self._commands_served += 1
            self._spawn_notifications(request)
        return reply

    # -- built-in notification management ----------------------------------
    def _builtin_add_notification(self, request: Request) -> ACECmdLine:
        cmd = request.command
        watched = cmd.str("cmd")
        if watched not in self.semantics:
            return error_reply(cmd, f"cannot watch unknown command {watched!r}")
        entry = NotificationEntry(
            command=watched,
            listener=cmd.str("listener"),
            address=Address(cmd.str("host"), cmd.int("port")),
            callback=cmd.str("callback"),
        )
        added = self.notifications.add(entry)
        return ok_reply(cmd, added=1 if added else 0)

    def _builtin_remove_notification(self, request: Request) -> ACECmdLine:
        cmd = request.command
        removed = self.notifications.remove(
            cmd.str("cmd"), cmd.str("listener"), cmd.str("callback", "")
        )
        return ok_reply(cmd, removed=removed)

    def _spawn_notifications(self, request: Request) -> None:
        entries = self.notifications.listeners(request.command.name)
        if not entries:
            return
        # Strip reserved observability arguments from the forwarded payload;
        # the delivery call carries its own (fresh) trace context.
        payload = request.command.without_args(*RESERVED_ARGS).to_string()
        # One delivery process + one pooled connection per *address*, not
        # per listener: co-located listeners share the dial+attach and the
        # channel, so fan-out cost scales with hosts, not registrations.
        by_address: Dict[Address, List[NotificationEntry]] = {}
        for entry in entries:
            by_address.setdefault(entry.address, []).append(entry)
        for address, group in by_address.items():
            if len(group) > 1:
                self._m_notify_batched.inc(len(group))
            self._spawn(
                self._deliver_notifications(address, group, request, payload),
                "notify",
            )

    def _notification_client(self) -> ServiceClient:
        if self._notify_client is None:
            self._notify_client = self._service_client()
        return self._notify_client

    def _purge_listener(self, entry: NotificationEntry) -> None:
        """Paper: dead listeners get purged so future triggers don't stall."""
        self._m_notify_failed.inc()
        self.notifications.remove_listener(entry.listener)
        self.ctx.trace.emit(
            self.ctx.sim.now, self.name, "notification-failed", listener=entry.listener
        )

    def _deliver_notifications(
        self, address: Address, entries: List[NotificationEntry],
        request: Request, payload: str,
    ) -> Generator:
        """Invoke each co-located listener's callback (Fig. 8 step 3) over
        one pooled connection."""
        pool = self._notification_client().pool
        try:
            conn = yield from pool.acquire(address)
        except (CallError, ConnectionClosed, ConnectionRefused, HostDownError, Interrupt):
            for entry in entries:
                self._purge_listener(entry)
            return
        for i, entry in enumerate(entries):
            notification = ACECmdLine(
                entry.callback,
                source=self.name,
                trigger=request.command.name,
                principal=request.principal,
                args=payload,
            )
            try:
                yield from conn.call(notification)
            except CallError:
                # The listener answered cmdFailed: channel is fine, the
                # registration is not — purge just this listener.
                self._purge_listener(entry)
                continue
            except (ConnectionClosed, ConnectionRefused, TransportError,
                    HostDownError, Interrupt):
                conn.close()
                for rest in entries[i:]:
                    self._purge_listener(rest)
                return
            self._m_notify_sent.inc()
            self.ctx.trace.emit(
                self.ctx.sim.now, self.name, "notification-delivered",
                listener=entry.listener, cmd=request.command.name,
            )
        pool.release(address, conn)

    # ------------------------------------------------------------------
    # Data thread
    # ------------------------------------------------------------------
    def _data_thread(self) -> Generator:
        while self.running:
            try:
                source, payload = yield from self._datagram.recv()
            except (ConnectionClosed, QueueClosed):
                return
            except Interrupt:
                return
            result = self.on_datagram(source, payload)
            if inspect.isgenerator(result):
                yield from result

    def on_datagram(self, source: Address, payload: Any):
        """Subclass hook for stream data (may be a plain method or generator)."""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def commands_served(self) -> int:
        return self._commands_served

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "running" if self.running else "stopped"
        return f"<{type(self).__name__} {self.name} @{self.address} {state}>"


def _clean(exc: Exception) -> str:
    """Exception text safe to embed in a quoted ACE string."""
    return str(exc).replace('"', "'").replace("\n", " ")[:200]
