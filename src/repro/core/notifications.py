"""Daemon notification lists (§2.5, Fig. 8).

Every ACE daemon can be told, via ``addNotification``, to notify another
service whenever a given command executes.  The table maps *watched command
name* → list of (listener address, callback command name).  Dispatch
happens in the control thread after the watched command succeeds: the
daemon sends ``<callback> source=<me> trigger=<cmd> ...args`` to each
listener, which the paper describes as "the listed interface methods are
invoked on those services".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.net import Address


@dataclass(frozen=True)
class NotificationEntry:
    """One registered listener."""

    command: str          # the command being watched
    listener: str         # service name of the listener (for bookkeeping)
    address: Address      # where to deliver
    callback: str         # command name to invoke on the listener


class NotificationTable:
    """The 'running list of which services to notify' (Fig. 8)."""

    def __init__(self) -> None:
        self._by_command: Dict[str, List[NotificationEntry]] = {}

    def add(self, entry: NotificationEntry) -> bool:
        """Register; returns False if an identical entry already exists."""
        entries = self._by_command.setdefault(entry.command, [])
        if entry in entries:
            return False
        entries.append(entry)
        return True

    def remove(self, command: str, listener: str, callback: str = "") -> int:
        """Drop matching entries; empty callback matches any.  Returns count."""
        entries = self._by_command.get(command, [])
        keep = [
            e
            for e in entries
            if not (e.listener == listener and (not callback or e.callback == callback))
        ]
        removed = len(entries) - len(keep)
        if keep:
            self._by_command[command] = keep
        else:
            self._by_command.pop(command, None)
        return removed

    def remove_listener(self, listener: str) -> int:
        """Drop every entry for a listener (e.g. after delivery failures)."""
        removed = 0
        for command in list(self._by_command):
            removed += self.remove(command, listener)
        return removed

    def listeners(self, command: str) -> List[NotificationEntry]:
        return list(self._by_command.get(command, ()))

    def watched_commands(self) -> List[str]:
        return sorted(self._by_command)

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_command.values())

    def counts(self) -> Dict[str, int]:
        """Listener count per watched command (metrics-view friendly)."""
        return {command: len(entries) for command, entries in sorted(self._by_command.items())}

    def entries(self) -> Iterable[NotificationEntry]:
        for command in sorted(self._by_command):
            yield from self._by_command[command]
