"""Resilient-RPC policy: deadlines, retries, and circuit breakers.

The paper's reliability story (§5.2–5.3, §8.1) covers *clean* failures —
crashed hosts are purged by leases and relaunched by the restart manager.
Gray failures (a host that got 100× slower, a link that drops most
messages) defeat that machinery because nothing ever *refuses*; calls just
hang.  This module is the client-side antidote, shared by every caller:

* :class:`CallPolicy` — per-call deadline, per-attempt timeout, and a
  jittered exponential-backoff retry budget;
* :class:`CircuitBreaker` — per-address closed → open → half-open state so
  callers stop hammering endpoints that keep failing;
* :class:`ResilienceRegistry` — the per-environment home of breakers,
  shared :class:`~repro.metrics.RpcStats` counters, and the last-known-good
  directory-lookup cache used when the ASD itself is unreachable.

:class:`CallError` lives here (re-exported by :mod:`repro.core.client` for
compatibility) so the transport/deadline/breaker failures can subclass it —
every existing ``except CallError`` site keeps working unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.metrics import RpcStats


class CallError(Exception):
    """The service replied cmdFailed, or transport failed mid-call."""

    def __init__(self, message: str, reply: Optional[Any] = None):
        super().__init__(message)
        self.reply = reply


class TransportError(CallError):
    """The connection died mid-call (reply never arrived)."""


class DeadlineExceeded(CallError):
    """The call (or one attempt of it) did not complete within its budget."""


class BreakerOpen(CallError):
    """The per-address circuit breaker is open; the call was not attempted."""


@dataclass(frozen=True)
class CallPolicy:
    """How hard to try: deadline, retry, and breaker knobs for one call.

    ``deadline`` bounds the whole call including retries and backoff;
    ``attempt_timeout`` bounds each individual connect+call+reply attempt.
    A ``breaker_threshold`` of 0 disables the circuit breaker (used during
    daemon startup, where many services race the ASD onto the network).
    """

    deadline: float = 5.0
    attempt_timeout: float = 2.0
    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_max: float = 1.0
    backoff_jitter: float = 0.5
    breaker_threshold: int = 5
    breaker_reset: float = 10.0

    def backoff_delay(self, attempt: int, rng: random.Random) -> float:
        """Jittered exponential backoff before retry number ``attempt`` (1-based)."""
        raw = min(self.backoff_base * (2 ** (attempt - 1)), self.backoff_max)
        if self.backoff_jitter > 0:
            raw *= 1.0 + self.backoff_jitter * (rng.random() - 0.5)
        return max(raw, 0.0)


#: breaker states
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-address failure gate: closed → open → half-open → closed.

    ``threshold`` consecutive transport failures open the breaker; while
    open, :meth:`allow` refuses instantly (callers shed load instead of
    burning their deadline on a dead endpoint).  After ``reset`` seconds a
    single half-open probe is let through: success re-closes the breaker,
    failure re-opens it for another ``reset`` period.
    """

    def __init__(self, threshold: int, reset: float):
        self.threshold = threshold
        self.reset = reset
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.trips = 0
        self._probe_inflight = False

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    def allow(self, now: float) -> bool:
        """May a call proceed at time ``now``?"""
        if not self.enabled or self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self.opened_at >= self.reset:
                self.state = HALF_OPEN
                self._probe_inflight = True
                return True
            return False
        # HALF_OPEN: only the single probe already admitted may be in flight.
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def record_success(self) -> bool:
        """Returns True when this success re-closed an open breaker."""
        reset = self.state == HALF_OPEN
        self.state = CLOSED
        self.failures = 0
        self._probe_inflight = False
        return reset

    def record_failure(self, now: float) -> bool:
        """Returns True when this failure tripped the breaker open."""
        if not self.enabled:
            return False
        if self.state == HALF_OPEN:
            self.state = OPEN
            self.opened_at = now
            self._probe_inflight = False
            return False  # re-open, not a fresh trip
        self.failures += 1
        if self.state == CLOSED and self.failures >= self.threshold:
            self.state = OPEN
            self.opened_at = now
            self.trips += 1
            return True
        return False

    def force_close(self) -> None:
        """Force-close and zero the failure history — the endpoint was
        restarted, so whatever it did before says nothing about now."""
        self.state = CLOSED
        self.failures = 0
        self._probe_inflight = False


class ResilienceRegistry:
    """Per-environment shared state for the resilient RPC layer.

    One registry hangs off every :class:`~repro.core.context.DaemonContext`,
    so breakers and counters are shared by all clients in the environment —
    when one caller discovers an endpoint is dead, every caller stops
    hammering it.
    """

    def __init__(self, default_policy: Optional[CallPolicy] = None):
        self.default_policy = default_policy or CallPolicy()
        self.stats = RpcStats()
        self._breakers: Dict[Any, CircuitBreaker] = {}
        self._lookup_cache: Dict[Tuple, Tuple] = {}
        #: callables invoked with the restarted address by
        #: :meth:`notify_restart` — e.g. store replicas clearing their
        #: per-peer replication-lag cooldown for a reincarnated sibling
        self._restart_listeners: list = []

    def breaker(self, address: Any, policy: CallPolicy) -> CircuitBreaker:
        """The shared breaker for ``address`` (created on first use)."""
        breaker = self._breakers.get(address)
        if breaker is None:
            breaker = CircuitBreaker(policy.breaker_threshold, policy.breaker_reset)
            self._breakers[address] = breaker
        return breaker

    def breaker_states(self) -> Dict[str, str]:
        """address -> state, for traces and experiment tables."""
        return {str(addr): b.state for addr, b in self._breakers.items()}

    def reset_address(self, address: Any) -> bool:
        """A daemon at ``address`` was restarted: force its breaker closed
        so callers probe the reincarnation immediately instead of waiting
        out a stale OPEN cooldown earned by the corpse.  Returns True when
        a breaker existed (and was reset)."""
        breaker = self._breakers.get(address)
        if breaker is None:
            return False
        breaker.force_close()
        return True

    def on_restart(self, listener) -> None:
        """Register a ``listener(address)`` called after a daemon restart."""
        self._restart_listeners.append(listener)

    def notify_restart(self, address: Any) -> None:
        """A daemon at ``address`` was reincarnated: close its breaker and
        fan the news out to every registered listener."""
        self.reset_address(address)
        for listener in list(self._restart_listeners):
            listener(address)

    # -- last-known-good directory records (ASD lookup fallback) -----------
    def remember_lookup(self, key: Tuple, records: Tuple) -> None:
        self._lookup_cache[key] = tuple(records)

    def recall_lookup(self, key: Tuple) -> Optional[Tuple]:
        return self._lookup_cache.get(key)
