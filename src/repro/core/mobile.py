"""Mobile sockets (Chapter 9 future work).

The paper: "research and development of mobile sockets must be integrated
with the current ACE service infrastructure to handle downed ACE services
allowing clients to quickly resume their tasks with other service
instances and to ensure service mobility."

:class:`MobileServiceConnection` implements exactly that contract at the
client library level: it binds to a *service class* (or name) rather than
an address; when the current instance dies mid-call it re-resolves through
the ASD, reconnects to another live instance, replays the in-flight
command, and keeps going.  Commands must therefore be idempotent or
safely retryable — the same requirement real mobile-socket systems
impose.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.lang import ACECmdLine
from repro.net import Address, ConnectionClosed, ConnectionRefused
from repro.net.host import HostDownError

from repro.core.client import CallError, ServiceClient, ServiceConnection
from repro.services.asd import ServiceRecord, asd_lookup


class NoInstanceAvailable(Exception):
    """The ASD knows no (further) live instance of the bound service."""


class MobileServiceConnection:
    """A connection to *a service*, not to *an address*."""

    def __init__(
        self,
        client: ServiceClient,
        asd_address: Address,
        *,
        cls: Optional[str] = None,
        name: Optional[str] = None,
        room: Optional[str] = None,
        max_failovers: int = 5,
        call_timeout: float = 1.0,
    ):
        if cls is None and name is None:
            raise ValueError("bind by cls= and/or name=")
        self.client = client
        self.asd_address = asd_address
        self.cls = cls
        self.name = name
        self.room = room
        self.max_failovers = max_failovers
        #: a host can die *silently* (no RST on the simulated wire), so the
        #: mobile socket carries its own liveness deadline per call
        self.call_timeout = call_timeout
        self.current: Optional[ServiceRecord] = None
        self._conn: Optional[ServiceConnection] = None
        self._excluded: List[str] = []  # instances observed dead
        self.failovers = 0
        self.last_failover_time: Optional[float] = None

    # ------------------------------------------------------------------
    def _resolve(self) -> Generator:
        records = yield from asd_lookup(
            self.client, self.asd_address, cls=self.cls, name=self.name, room=self.room
        )
        candidates = [r for r in records if r.name not in self._excluded]
        if not candidates:
            # Everything we know is dead; maybe an excluded one recovered.
            self._excluded.clear()
            candidates = records
        if not candidates:
            raise NoInstanceAvailable(
                f"no live instance of cls={self.cls!r} name={self.name!r}"
            )
        return candidates[0]

    def connect(self) -> Generator:
        """Bind to the first live instance."""
        record = yield from self._resolve()
        self._conn = yield from self.client.connect(record.address)
        self.current = record
        return record

    def _failover(self) -> Generator:
        """Current instance is gone: exclude it, resolve another, reconnect."""
        t0 = self.client.ctx.sim.now
        if self.current is not None:
            self._excluded.append(self.current.name)
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        attempts = 0
        while True:
            try:
                record = yield from self._resolve()
                self._conn = yield from self.client.connect(record.address)
                self.current = record
                break
            except (ConnectionRefused, ConnectionClosed, CallError) as exc:
                # The directory may briefly list an instance that just died
                # (lease not yet expired): exclude and try the next one.
                attempts += 1
                record = locals().get("record")
                if record is not None and record.name not in self._excluded:
                    self._excluded.append(record.name)
                if attempts > self.max_failovers:
                    raise NoInstanceAvailable(f"failover exhausted: {exc}")
                yield self.client.ctx.sim.timeout(0.05 * attempts)
        self.failovers += 1
        self.last_failover_time = self.client.ctx.sim.now - t0
        self.client.ctx.trace.emit(
            self.client.ctx.sim.now, "mobile-socket", "failover",
            to=self.current.name, took=round(self.last_failover_time, 6),
        )

    # ------------------------------------------------------------------
    def _timed_call(self, command: ACECmdLine, check: bool) -> Generator:
        """One attempt, racing the reply against the liveness deadline.

        Returns ``(ok, reply_or_None)``; ``ok=False`` means the instance is
        presumed dead (timeout or transport failure).  Semantic failures
        (cmdFailed replies) raise through unchanged.
        """
        sim = self.client.ctx.sim
        proc = sim.process(self._conn.call(command, check=check), name="mobile-call")
        deadline = sim.timeout(self.call_timeout)
        try:
            yield sim.any_of([proc, deadline])
        except Exception:
            pass  # the call failed before the deadline; inspect proc below
        if proc.triggered:
            if proc.ok:
                return True, proc.value
            proc.defuse()
            exc = proc.value
            if isinstance(exc, CallError) and exc.reply is not None:
                raise exc  # semantic failure: not retryable
            if isinstance(exc, (CallError, ConnectionClosed, ConnectionRefused,
                                HostDownError)):
                return False, None
            raise exc
        # Timeout won: the reply never came; abandon the stuck call.
        proc.defuse()
        proc.interrupt("mobile-socket timeout")
        return False, None

    def call(self, command: ACECmdLine, check: bool = True) -> Generator:
        """Issue a command, transparently failing over as needed."""
        if self._conn is None:
            yield from self.connect()
        for _ in range(self.max_failovers + 1):
            ok, reply = yield from self._timed_call(command, check)
            if ok:
                return reply
            yield from self._failover()
        raise NoInstanceAvailable(f"{command.name!r} failed after retries")

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
