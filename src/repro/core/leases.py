"""Service leases (§2.4).

The ASD grants every registration a lease; services must renew before
expiry or be purged ("this mechanism accounts for ... daemons that become
inactive due to malfunction").  :class:`LeaseTable` is the ASD-side
bookkeeping; the daemon-side renewal loop lives in the base daemon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class Lease:
    """One granted lease."""

    holder: str
    duration: float
    expires_at: float
    renewals: int = 0

    def valid_at(self, now: float) -> bool:
        return now < self.expires_at


class LeaseTable:
    """Lease bookkeeping with expiry callbacks.

    The owner is expected to call :meth:`expire` periodically (or whenever
    it answers a query) with the current time; expired holders are removed
    and reported.  This "lazy sweep" keeps the table deterministic without
    needing a timer per lease.
    """

    def __init__(self, duration: float, on_expire: Optional[Callable[[str], None]] = None):
        if duration <= 0:
            raise ValueError(f"lease duration must be positive, got {duration}")
        self.duration = duration
        self.on_expire = on_expire
        self._leases: Dict[str, Lease] = {}

    def __len__(self) -> int:
        return len(self._leases)

    def __contains__(self, holder: str) -> bool:
        return holder in self._leases

    def grant(self, holder: str, now: float) -> Lease:
        """Grant (or re-grant) a lease starting at ``now``."""
        lease = Lease(holder, self.duration, now + self.duration)
        self._leases[holder] = lease
        return lease

    def renew(self, holder: str, now: float) -> Optional[Lease]:
        """Renew an existing lease; returns None (renewal refused) when the
        lease already expired — the holder must re-register."""
        lease = self._leases.get(holder)
        if lease is None or not lease.valid_at(now):
            return None
        lease.expires_at = now + self.duration
        lease.renewals += 1
        return lease

    def release(self, holder: str) -> bool:
        """Voluntary removal at shutdown (§2.4 'properly informing')."""
        return self._leases.pop(holder, None) is not None

    def expire(self, now: float) -> List[str]:
        """Purge lapsed leases; returns the purged holders."""
        lapsed = [h for h, lease in self._leases.items() if not lease.valid_at(now)]
        for holder in lapsed:
            del self._leases[holder]
            if self.on_expire is not None:
                self.on_expire(holder)
        return lapsed

    def holders(self, now: Optional[float] = None) -> List[str]:
        if now is None:
            return sorted(self._leases)
        return sorted(h for h, lease in self._leases.items() if lease.valid_at(now))

    def get(self, holder: str) -> Optional[Lease]:
        return self._leases.get(holder)
