"""Service leases (§2.4).

The ASD grants every registration a lease; services must renew before
expiry or be purged ("this mechanism accounts for ... daemons that become
inactive due to malfunction").  :class:`LeaseTable` is the ASD-side
bookkeeping; the daemon-side renewal loop lives in the base daemon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class Lease:
    """One granted lease."""

    holder: str
    duration: float
    expires_at: float
    renewals: int = 0

    def valid_at(self, now: float) -> bool:
        return now < self.expires_at


class LeaseTable:
    """Lease bookkeeping with expiry callbacks.

    The owner is expected to call :meth:`expire` periodically (or whenever
    it answers a query) with the current time; expired holders are removed
    and reported.  This "lazy sweep" keeps the table deterministic without
    needing a timer per lease.
    """

    def __init__(self, duration: float, on_expire: Optional[Callable[[str], None]] = None):
        if duration <= 0:
            raise ValueError(f"lease duration must be positive, got {duration}")
        self.duration = duration
        self.on_expire = on_expire
        self._leases: Dict[str, Lease] = {}

    def __len__(self) -> int:
        return len(self._leases)

    def __contains__(self, holder: str) -> bool:
        return holder in self._leases

    def grant(self, holder: str, now: float) -> Lease:
        """Grant (or re-grant) a lease starting at ``now``."""
        lease = Lease(holder, self.duration, now + self.duration)
        self._leases[holder] = lease
        return lease

    def grant_until(self, holder: str, expires_at: float, renewals: int = 0) -> Lease:
        """Install a lease with an explicit expiry — the replication path:
        a replica applying a synced registration must adopt the *grantor's*
        horizon, not restart the clock, or a crashed service would live
        ``duration`` longer on every replica it syncs to."""
        lease = Lease(holder, self.duration, expires_at, renewals)
        self._leases[holder] = lease
        return lease

    def renew(self, holder: str, now: float) -> Optional[Lease]:
        """Renew an existing lease; returns None (renewal refused) when the
        lease already expired — the holder must re-register."""
        lease = self._leases.get(holder)
        if lease is None or not lease.valid_at(now):
            return None
        lease.expires_at = now + self.duration
        lease.renewals += 1
        return lease

    def release(self, holder: str) -> bool:
        """Voluntary removal at shutdown (§2.4 'properly informing')."""
        return self._leases.pop(holder, None) is not None

    def expire(self, now: float) -> List[str]:
        """Purge lapsed leases; returns the purged holders."""
        lapsed = [h for h, lease in self._leases.items() if not lease.valid_at(now)]
        for holder in lapsed:
            del self._leases[holder]
            if self.on_expire is not None:
                self.on_expire(holder)
        return lapsed

    def holders(self, now: Optional[float] = None) -> List[str]:
        if now is None:
            return sorted(self._leases)
        return sorted(h for h, lease in self._leases.items() if lease.valid_at(now))

    def get(self, holder: str) -> Optional[Lease]:
        return self._leases.get(holder)


class LeaseRenewalBatcher:
    """One ``renewLease names=(...)`` per host per interval (§2.4 at scale).

    Every daemon renewing its own lease gives the directory O(daemons)
    commands per interval; a host running a dozen services can renew them
    all in one command.  Daemons enroll ``(name, reregister)`` pairs; the
    batcher owns the renewal loop and falls back to each daemon's
    re-registration generator when the directory reports the lease already
    lapsed (e.g. after a long partition).

    Obtained via :meth:`DaemonContext.lease_batcher` (one per host) and
    only used when ``ctx.batch_lease_renewals`` is set — the per-daemon
    renewal loop in :class:`~repro.core.daemon.ACEDaemon` stays the
    default.
    """

    def __init__(self, ctx, host):
        self.ctx = ctx
        self.host = host
        #: service name -> zero-arg generator function that re-registers it
        self._entries: Dict[str, Callable] = {}
        self._proc = None
        self._client = None
        metrics = ctx.obs.metrics
        self._m_batches = metrics.counter("lease.batch.sent")
        self._m_renewed = metrics.counter("lease.batch.renewed")
        self._m_reregistered = metrics.counter("lease.batch.reregistered")

    def enroll(self, name: str, reregister: Callable) -> None:
        """Add ``name`` to this host's batch; starts the loop when first."""
        self._entries[name] = reregister
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.ctx.sim.process(
                self._loop(), name=f"lease-batch.{self.host.name}"
            )

    def unenroll(self, name: str) -> None:
        self._entries.pop(name, None)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def _loop(self):
        from repro.lang import ACECmdLine
        from repro.lang.command import is_ok

        sim = self.ctx.sim
        interval = self.ctx.lease_duration * self.ctx.lease_renew_fraction
        while self._entries:
            yield sim.timeout(interval)
            names = tuple(sorted(self._entries))
            if not names:
                break
            command = ACECmdLine("renewLease", names=names)
            try:
                reply = yield from self._directory_client().call_failover(
                    self.ctx.directory_addresses(), command, check=False
                )
            except Exception:
                self.ctx.trace.emit(
                    sim.now, "lease", "batch-renew-unreachable", host=self.host.name
                )
                continue
            self._m_batches.inc()
            if not is_ok(reply):
                continue
            renewed = reply.get("renewed", ()) or ()
            missing = reply.get("missing", ()) or ()
            self._m_renewed.inc(len(renewed))
            supervisor = self.ctx.supervisors.get(self.host.name)
            if supervisor is not None:
                # Batched renewals are the host's heartbeat too: each name
                # the directory confirmed is demonstrably alive.
                for name in renewed:
                    supervisor.beat(name)
            for name in missing:
                reregister = self._entries.get(name)
                if reregister is None:
                    continue
                try:
                    yield from reregister()
                    self._m_reregistered.inc()
                    if supervisor is not None:
                        supervisor.beat(name)
                    self.ctx.trace.emit(
                        sim.now, "lease", "batch-reregistered", service=name
                    )
                except Exception:
                    self.ctx.trace.emit(
                        sim.now, "lease", "batch-reregister-failed", service=name
                    )

    def _directory_client(self):
        if self._client is None:
            from repro.core.client import ServiceClient

            self._client = ServiceClient(
                self.ctx, self.host, principal=f"lease-batch.{self.host.name}"
            )
        return self._client
