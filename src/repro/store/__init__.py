"""ACE Persistent Store (Chapter 6, Fig. 17).

A cluster of (by default three) "completely redundant and interconnected"
store servers that "perform constant data synchronization".  Writes reach
any replica, which applies them locally and synchronously pushes them to
every reachable peer; last-writer-wins versioning plus periodic
anti-entropy makes crashed-and-rejoined replicas converge.  Reads go to
any replica, which is what removes the single-server bottleneck the paper
calls out (experiment E11 measures both properties).

State is organized in the "straightforward object-oriented namespace" the
paper describes: slash-separated object paths holding attribute dicts —
the checkpoint/restore substrate for restart and robust applications
(§5.2–5.3, :mod:`repro.apps.robust`).
"""

from repro.store.namespace import (
    DIGEST_BUCKETS,
    NamespaceError,
    ObjectNamespace,
    StoredObject,
    Version,
    decode_attrs,
    decode_object,
    encode_attrs,
    encode_object,
)
from repro.store.sharding import ShardMap, bucket_of, stable_hash
from repro.store.server import STORE_CHUNK, PersistentStoreDaemon
from repro.store.client import StoreClient, StoreUnavailable

__all__ = [
    "DIGEST_BUCKETS",
    "NamespaceError",
    "ObjectNamespace",
    "PersistentStoreDaemon",
    "STORE_CHUNK",
    "ShardMap",
    "StoreClient",
    "StoreUnavailable",
    "StoredObject",
    "Version",
    "bucket_of",
    "decode_attrs",
    "decode_object",
    "encode_attrs",
    "encode_object",
    "stable_hash",
]
