"""Client-side access to the persistent store cluster.

A :class:`StoreClient` knows the replica addresses and:

* **writes** to the first reachable replica (which replicates onward);
* **reads** with failover — and optional round-robin balancing across
  replicas, the property that removes the single-server bottleneck;
* **routes per key** when the cluster is sharded: a
  :class:`~repro.store.sharding.ShardMap` plus per-group address lists
  send each path straight to its owning replica-group;
* optionally **caches reads**: ``psGet`` results are kept keyed by
  ``(path, version)`` with a TTL, write-through on ``put`` and
  invalidation on ``delete``, so re-reads cost ~0 RPCs (the data-plane
  analogue of the PR-3 ``LookupCache``).  Off by default — enable it
  where the staleness window (one TTL) is acceptable;
* offers the checkpoint/restore API restart/robust applications use
  (``save_state`` / ``load_state``, §5.2–5.3).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.lang import ACECmdLine
from repro.net import Address, ConnectionClosed, ConnectionRefused
from repro.net.host import Host, HostDownError

from repro.core.client import CallError, ServiceClient
from repro.core.context import DaemonContext
from repro.core.policy import BreakerOpen, CallPolicy, DeadlineExceeded, TransportError
from repro.store.namespace import decode_attrs, encode_attrs
from repro.store.sharding import ShardMap, stable_hash


#: Per-replica call policy.  ``max_attempts=1`` because failover across
#: replicas *is* the retry; the deadline bounds how long a slow (degraded,
#: not dead) replica can stall a caller, and the breaker skips replicas
#: that keep failing without waiting out a connect timeout each time.
STORE_CALL_POLICY = CallPolicy(
    deadline=2.5,
    attempt_timeout=1.5,
    max_attempts=1,
    breaker_threshold=3,
    breaker_reset=5.0,
)

#: Failures that mean "try the next replica" — anything transport-shaped.
#: A plain ``CallError`` (cmdFailed) propagates: the replica answered.
_FAILOVER_ERRORS = (
    ConnectionClosed,
    ConnectionRefused,
    HostDownError,
    TransportError,
    DeadlineExceeded,
    BreakerOpen,
)

#: default freshness horizon for cached reads (seconds of sim time)
READ_CACHE_TTL = 5.0


class StoreUnavailable(Exception):
    """No replica answered."""


class StoreClient:
    """One principal's handle on the replicated (optionally sharded) store."""

    def __init__(
        self,
        ctx: DaemonContext,
        host: Host,
        replicas: List[Address],
        principal: str = "store-client",
        balance_reads: bool = True,
        policy: Optional[CallPolicy] = None,
        shard_map: Optional[ShardMap] = None,
        groups: Optional[Sequence[Sequence[Address]]] = None,
        cache_reads: bool = False,
        cache_ttl: float = READ_CACHE_TTL,
        topology_provider=None,
    ):
        if not replicas:
            raise ValueError("need at least one replica address")
        self.ctx = ctx
        self.replicas = list(replicas)
        self.balance_reads = balance_reads
        self.policy = policy or STORE_CALL_POLICY
        self.shard_map = shard_map
        self.groups: List[List[Address]] = [list(g) for g in (groups or [])]
        if shard_map is not None and len(self.groups) != shard_map.groups:
            raise ValueError(
                f"shard map expects {shard_map.groups} groups, got {len(self.groups)}"
            )
        #: optional ``() -> (shard_map, [[Address, ...], ...])`` callable;
        #: when set it is consulted per call, so clients handed out by the
        #: environment follow autoscaling topology changes (added/drained
        #: groups) instead of routing on a map frozen at construction
        self.topology_provider = topology_provider
        self.cache_reads = cache_reads
        self.cache_ttl = cache_ttl
        self._cache: Dict[str, Tuple[str, Dict[str, str], float]] = {}
        self._client = ServiceClient(ctx, host, principal=principal)
        # Seed the round-robin start from the principal so a fleet of cold
        # clients spreads across replicas instead of herding onto replica 0.
        self._read_index = stable_hash(principal) % len(self.replicas)
        metrics = ctx.obs.metrics
        self._m_failovers = metrics.counter("store.client.failovers")
        self._m_unavailable = metrics.counter("store.client.unavailable")
        self._m_cache_hits = metrics.counter("store.client.cache_hits")
        self._m_cache_misses = metrics.counter("store.client.cache_misses")

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _refresh_topology(self) -> None:
        if self.topology_provider is None:
            return
        shard_map, groups = self.topology_provider()
        if shard_map is not self.shard_map:
            self.shard_map = shard_map
            self.groups = [list(g) for g in (groups or [])]
            self.replicas = sorted(
                (a for group in self.groups for a in group), key=str
            ) or self.replicas

    def _group_replicas(self, path: Optional[str]) -> List[Address]:
        """The addresses that can serve ``path`` (all, when unsharded)."""
        self._refresh_topology()
        if path is None or self.shard_map is None or not self.groups:
            return self.replicas
        return self.groups[self.shard_map.shard_for(path)]

    def _rotated(self, base: List[Address]) -> List[Address]:
        if not self.balance_reads or len(base) < 2:
            return list(base)
        start = self._read_index % len(base)
        self._read_index += 1
        return list(base[start:]) + list(base[:start])

    def _write_order(self, path: Optional[str] = None) -> List[Address]:
        return list(self._group_replicas(path))

    def _read_order(self, path: Optional[str] = None) -> List[Address]:
        return self._rotated(self._group_replicas(path))

    # ------------------------------------------------------------------
    def _call_with_failover(self, command: ACECmdLine, order: List[Address]) -> Generator:
        last_error: Optional[Exception] = None
        for replica in order:
            try:
                reply = yield from self._client.call_resilient(
                    replica, command, policy=self.policy, attach=False
                )
                return reply
            except _FAILOVER_ERRORS as exc:
                last_error = exc
                self._m_failovers.inc()
                continue
        self._m_unavailable.inc()
        raise StoreUnavailable(f"all replicas failed for {command.name}: {last_error}")

    def _call_with_failover_checked(self, command: ACECmdLine, order: List[Address]) -> Generator:
        """Like _call_with_failover but treats cmdFailed as 'absent'."""
        last_error: Optional[Exception] = None
        for replica in order:
            try:
                reply = yield from self._client.call_resilient(
                    replica, command, policy=self.policy, check=False, attach=False
                )
                if reply.name != "cmdOk":
                    return None
                return reply
            except _FAILOVER_ERRORS as exc:
                last_error = exc
                self._m_failovers.inc()
                continue
        self._m_unavailable.inc()
        raise StoreUnavailable(f"all replicas failed for {command.name}: {last_error}")

    # ------------------------------------------------------------------
    # Read cache
    # ------------------------------------------------------------------
    def _cache_store(self, path: str, version: str, attrs: Dict[str, str]) -> None:
        if self.cache_reads:
            self._cache[path] = (version, dict(attrs), self.ctx.sim.now + self.cache_ttl)

    def _cache_lookup(self, path: str) -> Optional[Dict[str, str]]:
        if not self.cache_reads:
            return None
        entry = self._cache.get(path)
        if entry is None:
            return None
        version, attrs, expires_at = entry
        if self.ctx.sim.now >= expires_at:
            del self._cache[path]
            return None
        return dict(attrs)

    def invalidate(self, path: Optional[str] = None) -> None:
        """Drop one cached object (or the whole cache)."""
        if path is None:
            self._cache.clear()
        else:
            self._cache.pop(path, None)

    def cached_version(self, path: str) -> Optional[str]:
        """The version string the cache holds for ``path`` (tests/metrics)."""
        entry = self._cache.get(path)
        return entry[0] if entry is not None else None

    # ------------------------------------------------------------------
    def put(self, path: str, attrs: Dict[str, str]) -> Generator:
        reply = yield from self._call_with_failover(
            ACECmdLine("psPut", path=path, value=encode_attrs(attrs)),
            self._write_order(path),
        )
        version = reply.str("version")
        # Write-through: our own write is the freshest value we can know.
        self._cache_store(path, version, attrs)
        return version

    def get(self, path: str) -> Generator:
        """Returns the attribute dict, or None when the object is absent."""
        cached = self._cache_lookup(path)
        if cached is not None:
            self._m_cache_hits.inc()
            return cached
        if self.cache_reads:
            self._m_cache_misses.inc()
        reply = yield from self._call_with_failover_checked(
            ACECmdLine("psGet", path=path), self._read_order(path)
        )
        if reply is None:
            self._cache.pop(path, None)
            return None
        attrs = decode_attrs(reply.str("value", ""))
        self._cache_store(path, reply.str("version", ""), attrs)
        return attrs

    def delete(self, path: str) -> Generator:
        self._cache.pop(path, None)
        try:
            yield from self._call_with_failover(
                ACECmdLine("psDelete", path=path), self._write_order(path)
            )
            return True
        except CallError:
            return False

    def list(self, prefix: str = "/") -> Generator:
        """All matching paths, following ``next`` pages transparently and
        merging across shard groups."""
        self._refresh_topology()
        if self.shard_map is not None and self.groups:
            merged: List[str] = []
            for group in self.groups:
                paths = yield from self._list_pages(prefix, self._rotated(group))
                merged.extend(paths)
            return sorted(set(merged))
        paths = yield from self._list_pages(prefix, self._read_order())
        return sorted(set(paths))

    def _list_pages(self, prefix: str, order: List[Address]) -> Generator:
        results: List[str] = []
        offset = 0
        while True:
            reply = yield from self._call_with_failover(
                ACECmdLine("psList", prefix=prefix, offset=offset), order
            )
            paths = reply.get("paths", ())
            if isinstance(paths, tuple):
                results.extend(paths)
            nxt = reply.get("next")
            if not isinstance(nxt, int) or nxt <= offset:
                break
            offset = nxt
        return results

    # ------------------------------------------------------------------
    # Checkpoint API for restart/robust applications
    # ------------------------------------------------------------------
    @staticmethod
    def state_path(app_id: str) -> str:
        return f"/apps/{app_id}/state"

    def save_state(self, app_id: str, state: Dict[str, str]) -> Generator:
        version = yield from self.put(self.state_path(app_id), state)
        return version

    def load_state(self, app_id: str) -> Generator:
        state = yield from self.get(self.state_path(app_id))
        return state

    def clear_state(self, app_id: str) -> Generator:
        ok = yield from self.delete(self.state_path(app_id))
        return ok
