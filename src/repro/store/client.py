"""Client-side access to the persistent store cluster.

A :class:`StoreClient` knows the replica addresses and:

* **writes** to the first reachable replica (which replicates onward);
* **reads** with failover — and optional round-robin balancing across
  replicas, the property that removes the single-server bottleneck;
* offers the checkpoint/restore API restart/robust applications use
  (``save_state`` / ``load_state``, §5.2–5.3).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.lang import ACECmdLine
from repro.net import Address, ConnectionClosed, ConnectionRefused
from repro.net.host import Host, HostDownError

from repro.core.client import CallError, ServiceClient
from repro.core.context import DaemonContext
from repro.core.policy import BreakerOpen, CallPolicy, DeadlineExceeded, TransportError
from repro.store.namespace import decode_attrs, encode_attrs


#: Per-replica call policy.  ``max_attempts=1`` because failover across
#: replicas *is* the retry; the deadline bounds how long a slow (degraded,
#: not dead) replica can stall a caller, and the breaker skips replicas
#: that keep failing without waiting out a connect timeout each time.
STORE_CALL_POLICY = CallPolicy(
    deadline=2.5,
    attempt_timeout=1.5,
    max_attempts=1,
    breaker_threshold=3,
    breaker_reset=5.0,
)

#: Failures that mean "try the next replica" — anything transport-shaped.
#: A plain ``CallError`` (cmdFailed) propagates: the replica answered.
_FAILOVER_ERRORS = (
    ConnectionClosed,
    ConnectionRefused,
    HostDownError,
    TransportError,
    DeadlineExceeded,
    BreakerOpen,
)


class StoreUnavailable(Exception):
    """No replica answered."""


class StoreClient:
    """One principal's handle on the replicated store."""

    def __init__(
        self,
        ctx: DaemonContext,
        host: Host,
        replicas: List[Address],
        principal: str = "store-client",
        balance_reads: bool = True,
        policy: Optional[CallPolicy] = None,
    ):
        if not replicas:
            raise ValueError("need at least one replica address")
        self.ctx = ctx
        self.replicas = list(replicas)
        self.balance_reads = balance_reads
        self.policy = policy or STORE_CALL_POLICY
        self._client = ServiceClient(ctx, host, principal=principal)
        self._read_index = 0
        self._m_failovers = ctx.obs.metrics.counter("store.client.failovers")
        self._m_unavailable = ctx.obs.metrics.counter("store.client.unavailable")

    # ------------------------------------------------------------------
    def _call_with_failover(self, command: ACECmdLine, order: List[Address]) -> Generator:
        last_error: Optional[Exception] = None
        for replica in order:
            try:
                reply = yield from self._client.call_resilient(
                    replica, command, policy=self.policy, attach=False
                )
                return reply
            except _FAILOVER_ERRORS as exc:
                last_error = exc
                self._m_failovers.inc()
                continue
        self._m_unavailable.inc()
        raise StoreUnavailable(f"all replicas failed for {command.name}: {last_error}")

    def _write_order(self) -> List[Address]:
        return list(self.replicas)

    def _read_order(self) -> List[Address]:
        if not self.balance_reads:
            return list(self.replicas)
        start = self._read_index % len(self.replicas)
        self._read_index += 1
        return self.replicas[start:] + self.replicas[:start]

    # ------------------------------------------------------------------
    def put(self, path: str, attrs: Dict[str, str]) -> Generator:
        reply = yield from self._call_with_failover(
            ACECmdLine("psPut", path=path, value=encode_attrs(attrs)),
            self._write_order(),
        )
        return reply.str("version")

    def get(self, path: str) -> Generator:
        """Returns the attribute dict, or None when the object is absent."""
        reply = yield from self._call_with_failover_checked(
            ACECmdLine("psGet", path=path), self._read_order()
        )
        if reply is None:
            return None
        return decode_attrs(reply.str("value", ""))

    def _call_with_failover_checked(self, command: ACECmdLine, order: List[Address]) -> Generator:
        """Like _call_with_failover but treats cmdFailed as 'absent'."""
        last_error: Optional[Exception] = None
        for replica in order:
            try:
                reply = yield from self._client.call_resilient(
                    replica, command, policy=self.policy, check=False, attach=False
                )
                if reply.name != "cmdOk":
                    return None
                return reply
            except _FAILOVER_ERRORS as exc:
                last_error = exc
                self._m_failovers.inc()
                continue
        self._m_unavailable.inc()
        raise StoreUnavailable(f"all replicas failed for {command.name}: {last_error}")

    def delete(self, path: str) -> Generator:
        try:
            yield from self._call_with_failover(
                ACECmdLine("psDelete", path=path), self._write_order()
            )
            return True
        except CallError:
            return False

    def list(self, prefix: str = "/") -> Generator:
        reply = yield from self._call_with_failover(
            ACECmdLine("psList", prefix=prefix), self._read_order()
        )
        paths = reply.get("paths", ())
        return list(paths) if isinstance(paths, tuple) else []

    # ------------------------------------------------------------------
    # Checkpoint API for restart/robust applications
    # ------------------------------------------------------------------
    @staticmethod
    def state_path(app_id: str) -> str:
        return f"/apps/{app_id}/state"

    def save_state(self, app_id: str, state: Dict[str, str]) -> Generator:
        version = yield from self.put(self.state_path(app_id), state)
        return version

    def load_state(self, app_id: str) -> Generator:
        state = yield from self.get(self.state_path(app_id))
        return state

    def clear_state(self, app_id: str) -> Generator:
        ok = yield from self.delete(self.state_path(app_id))
        return ok
