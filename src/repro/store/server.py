"""Persistent store server daemon.

Each replica:

* serves ``psPut``/``psGet``/``psDelete``/``psList`` to clients;
* on a client write, applies locally then replicates the versioned object
  to every peer in its replica-group (the paper's "constant data
  synchronization") — by default coalesced into per-peer buffers flushed
  as one ``psReplicateBatch`` (many objects per RPC, pipelined), with the
  original per-object synchronous push kept behind
  ``batch_replication=False`` as the A/B control;
* runs an anti-entropy loop: periodically compares per-bucket namespace
  hashes with a peer and pulls only the buckets that differ, so a
  crashed-and-restarted replica converges back to "the same exact data
  ... within each of their individual storage areas" at a cost
  proportional to what changed, not to the whole namespace;
* when a :class:`~repro.store.sharding.ShardMap` is installed, owns only
  its shard of the path space — misrouted commands are forwarded to (or
  rejected with a pointer at) the owning group, and
  :meth:`install_shard_map` streams misplaced objects out when the map
  grows.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics
from repro.lang.command import RESERVED_ARGS, error_reply
from repro.net import Address, ConnectionClosed, ConnectionRefused
from repro.net.host import HostDownError
from repro.core.client import CallError
from repro.core.daemon import ACEDaemon, Request, ServiceError
from repro.core.policy import DeadlineExceeded, TransportError
from repro.store.namespace import (
    DIGEST_BUCKETS,
    NamespaceError,
    ObjectNamespace,
    StoredObject,
    Version,
    decode_attrs,
    decode_object,
    encode_attrs,
    encode_object,
)
from repro.store.sharding import ShardMap
from repro.services.base import Checkpointable

#: bounded reply size for psList/psDigest pages and psFetch batches —
#: the store-side analogue of the ASD's LOOKUP_CHUNK.
STORE_CHUNK = 32

#: transport-shaped failures on the replication path (a peer may be down;
#: anti-entropy repairs whatever a failed flush lost).
_REPL_ERRORS = (
    CallError,
    ConnectionClosed,
    ConnectionRefused,
    TransportError,
    DeadlineExceeded,
)


class PersistentStoreDaemon(Checkpointable, ACEDaemon):
    """One replica of the Fig. 17 persistent-store cluster."""

    service_type = "PersistentStore"
    #: the store's checkpoint *is* its namespace; writing it back into the
    #: store would re-capture itself on every round (supervisor memory is
    #: the checkpoint medium — anti-entropy from peers covers durability)
    checkpoint_to_store = False

    def __init__(self, ctx, name, host, *, peers: Optional[List[Address]] = None,
                 sync_interval: float = 5.0, replicate_writes: bool = True,
                 batch_replication: bool = True, repl_batch_size: int = 16,
                 repl_flush_age: float = 0.05, repl_buffer_cap: int = 512,
                 shard_map: Optional[ShardMap] = None, group_index: int = 0,
                 group_addresses: Optional[Dict[int, List[Address]]] = None,
                 forward_misrouted: bool = True,
                 digest_buckets: int = DIGEST_BUCKETS, **kwargs):
        kwargs.setdefault("authorize_commands", False)  # robust core service
        super().__init__(ctx, name, host, **kwargs)
        self.namespace = ObjectNamespace(site=name, buckets=digest_buckets)
        self.peers: List[Address] = list(peers or [])
        self.sync_interval = sync_interval
        self.replicate_writes = replicate_writes
        self.batch_replication = batch_replication
        self.repl_batch_size = repl_batch_size
        self.repl_flush_age = repl_flush_age
        self.repl_buffer_cap = repl_buffer_cap
        self.shard_map = shard_map
        self.group_index = group_index
        self.group_addresses: Dict[int, List[Address]] = dict(group_addresses or {})
        self.forward_misrouted = forward_misrouted
        self.writes = 0
        self.reads = 0
        self.replications_sent = 0
        self.replications_applied = 0
        self.syncs_completed = 0
        # Per-peer replication buffers: path -> newest StoredObject, in
        # insertion order so the cap drops the oldest entry first.
        self._repl_buffers: Dict[Address, Dict[str, StoredObject]] = {}
        self._flushing: Dict[Address, bool] = {}
        self._peer_down_until: Dict[Address, float] = {}
        self._repl_client = None
        metrics = ctx.obs.metrics
        self._m_repl_sent = metrics.counter(f"store.{name}.replications_sent")
        self._m_repl_applied = metrics.counter(f"store.{name}.replications_applied")
        self._m_repl_failed = metrics.counter(f"store.{name}.replications_failed")
        self._m_repl_batches = metrics.counter(f"store.{name}.replication_batches")
        self._m_repl_dropped = metrics.counter(f"store.{name}.replication_lag_dropped")
        self._m_syncs = metrics.counter(f"store.{name}.syncs")
        self._m_ae_checked = metrics.counter(f"store.{name}.ae_buckets_checked")
        self._m_ae_changed = metrics.counter(f"store.{name}.ae_buckets_changed")
        self._m_forwards = metrics.counter(f"store.{name}.forwards")
        self._m_rebalanced = metrics.counter(f"store.{name}.rebalanced")
        # The data plane's own telemetry scope: ``store.<name>.*`` feeds
        # the cluster replication-lag SLO, tagged with this incarnation.
        ctx.obs.register_scope(
            f"store.{name}", f"{host.name}:{self.port}", host.name,
            incarnation=self.incarnation, prefix=f"store.{name}.",
        )

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "psPut",
            ArgSpec("path", ArgType.STRING),
            ArgSpec("value", ArgType.STRING, required=False, default=""),
            ArgSpec("fwd", ArgType.INTEGER, required=False, default=0),
            description="store an object (coordinator write)",
        )
        sem.define(
            "psGet",
            ArgSpec("path", ArgType.STRING),
            ArgSpec("fwd", ArgType.INTEGER, required=False, default=0),
        )
        sem.define(
            "psDelete",
            ArgSpec("path", ArgType.STRING),
            ArgSpec("fwd", ArgType.INTEGER, required=False, default=0),
        )
        sem.define(
            "psList",
            ArgSpec("prefix", ArgType.STRING, required=False, default="/"),
            ArgSpec("offset", ArgType.INTEGER, required=False, default=0),
        )
        sem.define(
            "psReplicate",
            ArgSpec("path", ArgType.STRING),
            ArgSpec("value", ArgType.STRING, required=False, default=""),
            ArgSpec("version", ArgType.STRING),
            ArgSpec("deleted", ArgType.INTEGER, required=False, default=0),
            description="peer-to-peer versioned write propagation",
        )
        sem.define(
            "psReplicateBatch",
            ArgSpec("entries", ArgType.VECTOR),
            description="batched versioned write propagation (one RPC, many objects)",
        )
        sem.define(
            "psDigest",
            ArgSpec("bucket", ArgType.INTEGER, required=False, default=-1),
            ArgSpec("offset", ArgType.INTEGER, required=False, default=0),
            description="paged path|version listing for anti-entropy",
        )
        sem.define(
            "psDigestBuckets",
            description="per-bucket namespace hashes (incremental anti-entropy)",
        )
        sem.define("psFetch", ArgSpec("paths", ArgType.VECTOR))
        sem.define("psStats")

    def set_peers(self, peers: List[Address]) -> None:
        self.peers = [p for p in peers if p != self.address]

    def on_started(self) -> None:
        self._spawn(self._anti_entropy_loop(), "anti-entropy")
        if self.batch_replication:
            self._spawn(self._flush_loop(), "repl-flush-loop")
        # A reincarnated peer is reachable again: drop its replication
        # cooldown immediately instead of waiting it out.
        self.ctx.resilience.on_restart(self._peer_restarted)

    def _peer_restarted(self, address: Address) -> None:
        if self.running and self._peer_down_until.pop(address, None) is not None:
            self.ctx.trace.emit(
                self.ctx.sim.now, self.name, "peer-cooldown-cleared",
                peer=str(address),
            )

    # ------------------------------------------------------------------
    # Recovery-plane checkpointing: the whole namespace, one encoded
    # object (tombstones included) per line.  LWW versions make restore +
    # anti-entropy convergent even against a checkpoint taken mid-write.
    # ------------------------------------------------------------------
    def checkpoint_state(self):
        return tuple(encode_object(obj) for obj in self.namespace.all_objects())

    def restore_state(self, lines) -> None:
        for line in lines:
            try:
                obj = decode_object(line)
            except NamespaceError:
                continue
            self.namespace.apply(obj)

    def _respawn_kwargs(self) -> dict:
        return {
            "peers": list(self.peers),
            "sync_interval": self.sync_interval,
            "replicate_writes": self.replicate_writes,
            "batch_replication": self.batch_replication,
            "repl_batch_size": self.repl_batch_size,
            "repl_flush_age": self.repl_flush_age,
            "repl_buffer_cap": self.repl_buffer_cap,
            "shard_map": self.shard_map,
            "group_index": self.group_index,
            "group_addresses": dict(self.group_addresses),
            "forward_misrouted": self.forward_misrouted,
            "digest_buckets": self.namespace.buckets,
        }

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------
    def install_shard_map(self, shard_map: ShardMap,
                          group_addresses: Dict[int, List[Address]]):
        """Adopt a (grown) map and stream misplaced objects to their new
        owner groups; returns the rebalance process."""
        self.shard_map = shard_map
        self.group_addresses = dict(group_addresses)
        return self._spawn(self._rebalance(), "rebalance")

    def _rebalance(self) -> Generator:
        """Hand off every object this group no longer owns, then drop it."""
        if self.shard_map is None:
            return 0
        by_owner: Dict[int, List[StoredObject]] = {}
        for obj in self.namespace.all_objects():
            owner = self.shard_map.shard_for(obj.path)
            if owner != self.group_index:
                by_owner.setdefault(owner, []).append(obj)
        moved = 0
        client = self._replication_client()
        for owner in sorted(by_owner):
            addresses = self.group_addresses.get(owner, ())
            if not addresses:
                continue
            objs = by_owner[owner]
            for start in range(0, len(objs), self.repl_batch_size):
                batch = objs[start:start + self.repl_batch_size]
                command = ACECmdLine(
                    "psReplicateBatch",
                    entries=tuple(encode_object(o) for o in batch),
                )
                delivered = False
                for address in addresses:
                    try:
                        yield from client.call_pipelined(
                            address, command, attach=False,
                            timeout=self.sync_interval,
                        )
                        delivered = True
                    except _REPL_ERRORS:
                        continue
                if delivered:
                    for obj in batch:
                        self.namespace.drop(obj.path)
                    moved += len(batch)
                    self._m_rebalanced.inc(len(batch))
        return moved

    def _misroute_owner(self, path: str) -> Optional[int]:
        if self.shard_map is None:
            return None
        if self.shard_map.groups == 1 and self.group_index == 0:
            # Unsharded fast path.  A *draining* daemon (group_index
            # beyond the map, e.g. shrunk back to one group) must still
            # fall through and forward — it owns nothing anymore.
            return None
        owner = self.shard_map.shard_for(path)
        return None if owner == self.group_index else owner

    def _forward(self, request: Request, owner: int) -> Generator:
        """Relay a misrouted command to the owning group (stale-map client)."""
        if request.command.int("fwd", 0):
            raise ServiceError(
                f"shard loop: group {self.group_index} does not own this path "
                f"(owner group {owner})"
            )
        if not self.forward_misrouted:
            raise ServiceError(
                f"misrouted: group {owner} owns this path, not {self.group_index}"
            )
        addresses = self.group_addresses.get(owner, ())
        if not addresses:
            raise ServiceError(f"no known addresses for owner group {owner}")
        command = request.command.without_args(*RESERVED_ARGS).with_args(fwd=1)
        client = self._service_client()
        last: Optional[Exception] = None
        for address in addresses:
            conn = None
            try:
                conn = yield from client.connect(address, attach=False)
                reply = yield from conn.call(command, check=False)
            except _REPL_ERRORS as exc:
                last = exc
                continue
            finally:
                if conn is not None:
                    conn.close()
            self._m_forwards.inc()
            return reply.without_args(*RESERVED_ARGS)
        raise ServiceError(f"owner group {owner} unreachable: {last}")

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def _replication_client(self):
        """One long-lived client whose pipelined channels carry batches."""
        if self._repl_client is None:
            self._repl_client = self._service_client()
        return self._repl_client

    def _replicate(self, obj: StoredObject) -> Generator:
        """Propagate one committed write: enqueue for a batched flush, or
        (A/B control) push synchronously to every peer in parallel."""
        if not self.replicate_writes or not self.peers:
            return 0
        if self.batch_replication:
            self._enqueue_replication(obj)
            return 0
        procs = []
        for peer in self.peers:
            procs.append(self._spawn(self._push_to_peer(peer, obj), "replicate"))
        results = yield self.ctx.sim.all_of(procs)
        return sum(1 for v in results.values() if v)

    def _enqueue_replication(self, obj: StoredObject) -> None:
        for peer in self.peers:
            buf = self._repl_buffers.setdefault(peer, {})
            if obj.path not in buf and len(buf) >= self.repl_buffer_cap:
                # Bounded lag: shed the oldest buffered write; anti-entropy
                # repairs the gap once the peer is reachable again.
                buf.pop(next(iter(buf)))
                self._m_repl_dropped.inc()
            buf[obj.path] = obj
            if (
                len(buf) >= self.repl_batch_size
                and not self._flushing.get(peer)
                and self.ctx.sim.now >= self._peer_down_until.get(peer, 0.0)
            ):
                self._spawn(self._flush_peer(peer), "repl-flush")

    def _flush_loop(self) -> Generator:
        """Age-based flush: no buffered write waits longer than
        ``repl_flush_age`` while its peer is believed up."""
        while self.running:
            yield self.ctx.sim.timeout(self.repl_flush_age)
            if not self.running:
                return
            for peer in list(self._repl_buffers):
                if self._repl_buffers.get(peer) and not self._flushing.get(peer):
                    self._spawn(self._flush_peer(peer), "repl-flush")

    def _flush_peer(self, peer: Address) -> Generator:
        if self._flushing.get(peer):
            return
        self._flushing[peer] = True
        try:
            client = self._replication_client()
            while True:
                buf = self._repl_buffers.get(peer)
                if not buf:
                    return
                if self.ctx.sim.now < self._peer_down_until.get(peer, 0.0):
                    return
                batch = [buf.pop(path) for path in list(buf)[: self.repl_batch_size]]
                command = ACECmdLine(
                    "psReplicateBatch",
                    entries=tuple(encode_object(o) for o in batch),
                )
                try:
                    yield from client.call_pipelined(
                        peer, command, attach=False, timeout=self.sync_interval
                    )
                except _REPL_ERRORS:
                    self._m_repl_failed.inc()
                    self._peer_down_until[peer] = self.ctx.sim.now + self.sync_interval
                    # Re-buffer the failed batch (newest version wins) and
                    # re-apply the cap so a dead peer's lag stays bounded.
                    for obj in batch:
                        cur = buf.get(obj.path)
                        if cur is None or cur.version < obj.version:
                            buf[obj.path] = obj
                    while len(buf) > self.repl_buffer_cap:
                        buf.pop(next(iter(buf)))
                        self._m_repl_dropped.inc()
                    return
                self.replications_sent += len(batch)
                self._m_repl_sent.inc(len(batch))
                self._m_repl_batches.inc()
        finally:
            self._flushing[peer] = False

    def _flush_all_pending(self) -> Generator:
        """Drain every peer buffer inline (shutdown path)."""
        for peer in list(self._repl_buffers):
            if self._repl_buffers.get(peer) and not self._flushing.get(peer):
                yield from self._flush_peer(peer)

    def _shutdown(self) -> Generator:
        if self.running and self.batch_replication and self.host.up:
            try:
                yield from self._flush_all_pending()
            except (HostDownError, ConnectionClosed, ConnectionRefused):
                pass
        yield from super()._shutdown()

    def _teardown(self) -> None:
        if self._repl_client is not None:
            self._repl_client.close_channels()
        super()._teardown()

    def _push_to_peer(self, peer: Address, obj: StoredObject) -> Generator:
        client = self._service_client()
        command = ACECmdLine(
            "psReplicate",
            path=obj.path,
            value=encode_attrs(obj.attrs),
            version=obj.version.to_wire(),
            deleted=1 if obj.deleted else 0,
        )
        try:
            yield from client.call_once(peer, command, attach=False)
            self.replications_sent += 1
            self._m_repl_sent.inc()
            return True
        except (CallError, ConnectionClosed, ConnectionRefused):
            self._m_repl_failed.inc()
            return False

    # ------------------------------------------------------------------
    # Anti-entropy
    # ------------------------------------------------------------------
    def _anti_entropy_loop(self) -> Generator:
        """Round-robin digest exchange with peers."""
        index = 0
        while self.running:
            yield self.ctx.sim.timeout(self.sync_interval)
            if not self.peers or not self.running:
                continue
            peer = self.peers[index % len(self.peers)]
            index += 1
            try:
                yield from self._sync_with(peer)
                self.syncs_completed += 1
                self._m_syncs.inc()
            except HostDownError:
                return  # our own host died; the daemon is gone
            except (CallError, ConnectionClosed, ConnectionRefused):
                continue

    def _sync_with(self, peer: Address) -> Generator:
        """Pull anything the peer has that is newer than our copy, touching
        only the hash buckets whose summaries differ."""
        client = self._service_client()
        conn = yield from client.connect(peer, attach=False)
        try:
            reply = yield from conn.call(ACECmdLine("psDigestBuckets"))
            hashes = reply.get("hashes", ())
            remote = (
                [int(h, 16) for h in hashes] if isinstance(hashes, tuple) else []
            )
            mine = self.namespace.bucket_hashes()
            if len(remote) == len(mine):
                changed = [i for i, (a, b) in enumerate(zip(mine, remote)) if a != b]
            else:
                # Bucket-scheme mismatch (mixed configs): fall back to a
                # full walk rather than silently skipping divergence.
                changed = list(range(self.namespace.buckets))
            self._m_ae_checked.inc(len(mine))
            self._m_ae_changed.inc(len(changed))
            if not changed:
                return
            local = self.namespace.digest()
            wanted: List[str] = []
            for bucket in changed:
                offset = 0
                while True:
                    dreply = yield from conn.call(
                        ACECmdLine("psDigest", bucket=bucket, offset=offset)
                    )
                    entries = dreply.get("entries", ())
                    for entry in entries if isinstance(entries, tuple) else ():
                        path, _, version = entry.rpartition("|")
                        theirs = Version.from_wire(version)
                        ours = local.get(path)
                        if ours is None or ours < theirs:
                            wanted.append(path)
                    nxt = dreply.get("next")
                    if not isinstance(nxt, int) or nxt <= offset:
                        break
                    offset = nxt
            for start in range(0, len(wanted), STORE_CHUNK):
                chunk = tuple(wanted[start:start + STORE_CHUNK])
                freply = yield from conn.call(ACECmdLine("psFetch", paths=chunk))
                objects = freply.get("objects", ())
                for encoded in objects if isinstance(objects, tuple) else ():
                    try:
                        obj = decode_object(encoded)
                    except NamespaceError:
                        continue
                    if self.namespace.apply(obj):
                        self.replications_applied += 1
                        self._m_repl_applied.inc()
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def cmd_psPut(self, request: Request) -> Generator:
        cmd = request.command
        path = cmd.str("path")
        owner = self._misroute_owner(path)
        if owner is not None:
            reply = yield from self._forward(request, owner)
            return reply
        try:
            attrs = decode_attrs(cmd.str("value", ""))
            obj = self.namespace.put(path, attrs)
        except NamespaceError as exc:
            raise ServiceError(str(exc))
        self.writes += 1
        acks = yield from self._replicate(obj)
        return {"path": obj.path, "version": obj.version.to_wire(),
                "replicas": (acks or 0) + 1}

    def cmd_psGet(self, request: Request) -> Generator:
        path = request.command.str("path")
        owner = self._misroute_owner(path)
        if owner is not None:
            reply = yield from self._forward(request, owner)
            return reply
        self.reads += 1
        obj = self.namespace.get(path)
        if obj is None:
            raw = self.namespace.raw(path)
            if raw is not None and raw.deleted:
                # Report the tombstone so anti-entropy can replicate deletes.
                return error_reply(request.command, f"object {path!r} deleted",
                                   deleted=1, version=raw.version.to_wire())
            raise ServiceError(f"no object at {path!r}")
        return {"path": path, "value": encode_attrs(obj.attrs),
                "version": obj.version.to_wire()}

    def cmd_psDelete(self, request: Request) -> Generator:
        path = request.command.str("path")
        owner = self._misroute_owner(path)
        if owner is not None:
            reply = yield from self._forward(request, owner)
            return reply
        try:
            tombstone = self.namespace.delete(path)
        except NamespaceError as exc:
            raise ServiceError(str(exc))
        if tombstone is None:
            raise ServiceError(f"no object at {path!r}")
        self.writes += 1
        acks = yield from self._replicate(tombstone)
        return {"path": path, "replicas": (acks or 0) + 1}

    def cmd_psList(self, request: Request) -> dict:
        paths = self.namespace.list(request.command.str("prefix", "/"))
        offset = max(request.command.int("offset", 0), 0)
        total = len(paths)
        page = paths[offset:offset + STORE_CHUNK]
        result: dict = {"count": total}
        if page:
            result["paths"] = tuple(page)
        if offset + STORE_CHUNK < total:
            result["next"] = offset + STORE_CHUNK
        return result

    def cmd_psReplicate(self, request: Request) -> dict:
        cmd = request.command
        obj = StoredObject(
            cmd.str("path"),
            decode_attrs(cmd.str("value", "")),
            Version.from_wire(cmd.str("version")),
            deleted=bool(cmd.int("deleted", 0)),
        )
        won = self.namespace.apply(obj)
        if won:
            self.replications_applied += 1
            self._m_repl_applied.inc()
        return {"applied": 1 if won else 0}

    def cmd_psReplicateBatch(self, request: Request) -> dict:
        applied = 0
        entries = request.command.vector("entries")
        for encoded in entries:
            try:
                obj = decode_object(encoded)
            except NamespaceError:
                continue
            if self.namespace.apply(obj):
                applied += 1
        if applied:
            self.replications_applied += applied
            self._m_repl_applied.inc(applied)
        return {"count": len(entries), "applied": applied}

    def cmd_psDigest(self, request: Request) -> dict:
        bucket = request.command.int("bucket", -1)
        if bucket < 0:
            digest = self.namespace.digest()
        else:
            digest = self.namespace.bucket_digest(bucket % self.namespace.buckets)
        listing = sorted(digest.items())
        offset = max(request.command.int("offset", 0), 0)
        total = len(listing)
        page = listing[offset:offset + STORE_CHUNK]
        result: dict = {"count": total}
        if page:
            result["entries"] = tuple(
                f"{path}|{version.to_wire()}" for path, version in page
            )
        if offset + STORE_CHUNK < total:
            result["next"] = offset + STORE_CHUNK
        return result

    def cmd_psDigestBuckets(self, request: Request) -> dict:
        hashes = self.namespace.bucket_hashes()
        return {
            "count": len(hashes),
            "hashes": tuple(f"{h:x}" for h in hashes),
        }

    def cmd_psFetch(self, request: Request) -> dict:
        paths = request.command.vector("paths")
        found = []
        for path in paths[:STORE_CHUNK]:
            obj = self.namespace.raw(path)
            if obj is not None:
                found.append(encode_object(obj))
        result: dict = {"count": len(found)}
        if found:
            result["objects"] = tuple(found)
        return result

    def cmd_psStats(self, request: Request) -> dict:
        return {
            "objects": len(self.namespace),
            "writes": self.writes,
            "reads": self.reads,
            "replications_sent": self.replications_sent,
            "replications_applied": self.replications_applied,
            "syncs": self.syncs_completed,
            "buffered": sum(len(b) for b in self._repl_buffers.values()),
            "group": self.group_index,
        }
