"""Persistent store server daemon.

Each replica:

* serves ``psPut``/``psGet``/``psDelete``/``psList`` to clients;
* on a client write, applies locally then *synchronously* pushes the
  versioned object to every peer (the paper's "constant data
  synchronization"), tolerating unreachable peers;
* runs an anti-entropy loop: periodically exchanges digests with a peer
  and pulls anything newer, so a crashed-and-restarted replica converges
  back to "the same exact data ... within each of their individual
  storage areas".
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics
from repro.net import Address, ConnectionClosed, ConnectionRefused
from repro.net.host import HostDownError
from repro.core.client import CallError
from repro.core.daemon import ACEDaemon, Request, ServiceError
from repro.store.namespace import (
    NamespaceError,
    ObjectNamespace,
    StoredObject,
    Version,
    decode_attrs,
    encode_attrs,
)


class PersistentStoreDaemon(ACEDaemon):
    """One replica of the Fig. 17 persistent-store cluster."""

    service_type = "PersistentStore"

    def __init__(self, ctx, name, host, *, peers: Optional[List[Address]] = None,
                 sync_interval: float = 5.0, replicate_writes: bool = True, **kwargs):
        kwargs.setdefault("authorize_commands", False)  # robust core service
        super().__init__(ctx, name, host, **kwargs)
        self.namespace = ObjectNamespace(site=name)
        self.peers: List[Address] = list(peers or [])
        self.sync_interval = sync_interval
        self.replicate_writes = replicate_writes
        self.writes = 0
        self.reads = 0
        self.replications_sent = 0
        self.replications_applied = 0
        self.syncs_completed = 0
        metrics = ctx.obs.metrics
        self._m_repl_sent = metrics.counter(f"store.{name}.replications_sent")
        self._m_repl_applied = metrics.counter(f"store.{name}.replications_applied")
        self._m_repl_failed = metrics.counter(f"store.{name}.replications_failed")
        self._m_syncs = metrics.counter(f"store.{name}.syncs")

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "psPut",
            ArgSpec("path", ArgType.STRING),
            ArgSpec("value", ArgType.STRING, required=False, default=""),
            description="store an object (coordinator write)",
        )
        sem.define("psGet", ArgSpec("path", ArgType.STRING))
        sem.define("psDelete", ArgSpec("path", ArgType.STRING))
        sem.define("psList", ArgSpec("prefix", ArgType.STRING, required=False, default="/"))
        sem.define(
            "psReplicate",
            ArgSpec("path", ArgType.STRING),
            ArgSpec("value", ArgType.STRING, required=False, default=""),
            ArgSpec("version", ArgType.STRING),
            ArgSpec("deleted", ArgType.INTEGER, required=False, default=0),
            description="peer-to-peer versioned write propagation",
        )
        sem.define("psDigest", description="path|version listing for anti-entropy")
        sem.define("psStats")

    def set_peers(self, peers: List[Address]) -> None:
        self.peers = [p for p in peers if p != self.address]

    def on_started(self) -> None:
        self._spawn(self._anti_entropy_loop(), "anti-entropy")

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def _replicate(self, obj: StoredObject) -> Generator:
        """Push one object to all peers, best effort, in parallel."""
        if not self.replicate_writes or not self.peers:
            return 0
        procs = []
        for peer in self.peers:
            procs.append(self._spawn(self._push_to_peer(peer, obj), "replicate"))
        results = yield self.ctx.sim.all_of(procs)
        return sum(1 for v in results.values() if v)

    def _push_to_peer(self, peer: Address, obj: StoredObject) -> Generator:
        client = self._service_client()
        command = ACECmdLine(
            "psReplicate",
            path=obj.path,
            value=encode_attrs(obj.attrs),
            version=obj.version.to_wire(),
            deleted=1 if obj.deleted else 0,
        )
        try:
            yield from client.call_once(peer, command, attach=False)
            self.replications_sent += 1
            self._m_repl_sent.inc()
            return True
        except (CallError, ConnectionClosed, ConnectionRefused):
            self._m_repl_failed.inc()
            return False

    def _anti_entropy_loop(self) -> Generator:
        """Round-robin digest exchange with peers."""
        index = 0
        while self.running:
            yield self.ctx.sim.timeout(self.sync_interval)
            if not self.peers or not self.running:
                continue
            peer = self.peers[index % len(self.peers)]
            index += 1
            try:
                yield from self._sync_with(peer)
                self.syncs_completed += 1
                self._m_syncs.inc()
            except HostDownError:
                return  # our own host died; the daemon is gone
            except (CallError, ConnectionClosed, ConnectionRefused):
                continue

    def _sync_with(self, peer: Address) -> Generator:
        """Pull anything the peer has that is newer than our copy."""
        client = self._service_client()
        conn = yield from client.connect(peer, attach=False)
        try:
            digest_reply = yield from conn.call(ACECmdLine("psDigest"))
            entries = digest_reply.get("entries", ())
            remote: Dict[str, Version] = {}
            for entry in entries if isinstance(entries, tuple) else ():
                path, _, version = entry.rpartition("|")
                remote[path] = Version.from_wire(version)
            mine = self.namespace.digest()
            # Pull objects where the remote is strictly newer (or we lack).
            for path, their_version in sorted(remote.items()):
                ours = mine.get(path)
                if ours is not None and ours >= their_version:
                    continue
                reply = yield from conn.call(
                    ACECmdLine("psGet", path=path), check=False
                )
                if reply.name != "cmdOk":
                    # Deleted remotely: replicate the tombstone.
                    if reply.get("deleted") == 1 and reply.get("version"):
                        self.namespace.apply(StoredObject(
                            path, {}, Version.from_wire(reply.str("version")), deleted=True
                        ))
                    continue
                obj = StoredObject(
                    path,
                    decode_attrs(reply.str("value", "")),
                    Version.from_wire(reply.str("version")),
                )
                if self.namespace.apply(obj):
                    self.replications_applied += 1
                    self._m_repl_applied.inc()
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def cmd_psPut(self, request: Request) -> Generator:
        cmd = request.command
        try:
            attrs = decode_attrs(cmd.str("value", ""))
            obj = self.namespace.put(cmd.str("path"), attrs)
        except NamespaceError as exc:
            raise ServiceError(str(exc))
        self.writes += 1
        acks = yield from self._replicate(obj)
        return {"path": obj.path, "version": obj.version.to_wire(),
                "replicas": (acks or 0) + 1}

    def cmd_psGet(self, request: Request) -> dict:
        path = request.command.str("path")
        self.reads += 1
        obj = self.namespace.get(path)
        if obj is None:
            raw = self.namespace.raw(path)
            if raw is not None and raw.deleted:
                # Report the tombstone so anti-entropy can replicate deletes.
                from repro.lang.command import error_reply

                return error_reply(request.command, f"object {path!r} deleted",
                                   deleted=1, version=raw.version.to_wire())
            raise ServiceError(f"no object at {path!r}")
        return {"path": path, "value": encode_attrs(obj.attrs),
                "version": obj.version.to_wire()}

    def cmd_psDelete(self, request: Request) -> Generator:
        path = request.command.str("path")
        try:
            tombstone = self.namespace.delete(path)
        except NamespaceError as exc:
            raise ServiceError(str(exc))
        if tombstone is None:
            raise ServiceError(f"no object at {path!r}")
        self.writes += 1
        acks = yield from self._replicate(tombstone)
        return {"path": path, "replicas": (acks or 0) + 1}

    def cmd_psList(self, request: Request) -> dict:
        paths = self.namespace.list(request.command.str("prefix", "/"))
        result: dict = {"count": len(paths)}
        if paths:
            result["paths"] = tuple(paths)
        return result

    def cmd_psReplicate(self, request: Request) -> dict:
        cmd = request.command
        obj = StoredObject(
            cmd.str("path"),
            decode_attrs(cmd.str("value", "")),
            Version.from_wire(cmd.str("version")),
            deleted=bool(cmd.int("deleted", 0)),
        )
        won = self.namespace.apply(obj)
        if won:
            self.replications_applied += 1
            self._m_repl_applied.inc()
        return {"applied": 1 if won else 0}

    def cmd_psDigest(self, request: Request) -> dict:
        digest = self.namespace.digest()
        result: dict = {"count": len(digest)}
        if digest:
            result["entries"] = tuple(
                f"{path}|{version.to_wire()}" for path, version in sorted(digest.items())
            )
        return result

    def cmd_psStats(self, request: Request) -> dict:
        return {
            "objects": len(self.namespace),
            "writes": self.writes,
            "reads": self.reads,
            "replications_sent": self.replications_sent,
            "replications_applied": self.replications_applied,
            "syncs": self.syncs_completed,
        }
