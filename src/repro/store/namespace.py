"""The object-oriented namespace a store server holds.

Objects live at slash-separated paths (``/wss/workspaces/john-default``)
and carry a flat string→string attribute dict plus a version for
last-writer-wins replication.  Attribute dicts cross the wire as one
encoded string (:func:`encode_attrs`), since ACE argument values are flat.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lang.wire import join_wire, split_wire
from repro.store.sharding import bucket_of, stable_hash

_PATH_RE = re.compile(r"^(/[A-Za-z0-9_.\-]+)+$")

#: Default number of digest buckets for incremental anti-entropy.
DIGEST_BUCKETS = 32


class NamespaceError(Exception):
    """Bad path or malformed attribute encoding."""


@dataclass(frozen=True, order=True)
class Version:
    """Monotonic (counter, site) pair; totally ordered for LWW."""

    counter: int
    site: str

    def next_after(self, site: str) -> "Version":
        return Version(self.counter + 1, site)

    def to_wire(self) -> str:
        return f"{self.counter}@{self.site}"

    @classmethod
    def from_wire(cls, text: str) -> "Version":
        counter, _, site = text.partition("@")
        return cls(int(counter), site)


ZERO_VERSION = Version(0, "")


@dataclass
class StoredObject:
    path: str
    attrs: Dict[str, str]
    version: Version
    deleted: bool = False  # tombstone so deletes replicate


def check_path(path: str) -> str:
    if not _PATH_RE.match(path):
        raise NamespaceError(f"bad object path {path!r}")
    return path


def encode_attrs(attrs: Dict[str, str]) -> str:
    """Flat dict → one wire string.  Keys must be words; values arbitrary
    printable strings (escaped)."""
    parts = []
    for key in sorted(attrs):
        if not re.match(r"^[A-Za-z0-9_]+$", key):
            raise NamespaceError(f"bad attribute name {key!r}")
        value = str(attrs[key]).replace("\\", "\\\\").replace("&", "\\a").replace("=", "\\e")
        parts.append(f"{key}={value}")
    return "&".join(parts)


def decode_attrs(text: str) -> Dict[str, str]:
    if not text:
        return {}
    attrs: Dict[str, str] = {}
    for pair in _split_unescaped(text, "&"):
        key, sep, value = pair.partition("=")
        if not sep:
            raise NamespaceError(f"malformed attribute pair {pair!r}")
        attrs[key] = _unescape_value(value)
    return attrs


_UNESCAPE = {"\\": "\\", "a": "&", "e": "="}


def _unescape_value(value: str) -> str:
    # One left-to-right scan: chained str.replace is order-sensitive and
    # mis-decodes values where an escaped backslash precedes a literal
    # 'a'/'e' (encode("\\a") -> "\\\\a", whose tail "\\a" a later replace
    # would wrongly turn back into "&").
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append(_UNESCAPE.get(nxt, nxt))
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def encode_object(obj: StoredObject) -> str:
    """Whole object → one ``|``-delimited wire field (batch replication)."""
    return join_wire(
        (obj.path, encode_attrs(obj.attrs), obj.version.to_wire(), int(obj.deleted))
    )


def decode_object(text: str) -> StoredObject:
    fields = split_wire(text)
    if len(fields) != 4:
        raise NamespaceError(f"malformed object record {text!r}")
    path, attrs_text, version_text, deleted = fields
    return StoredObject(
        path,
        decode_attrs(attrs_text),
        Version.from_wire(version_text),
        deleted=deleted == "1",
    )


def _split_unescaped(text: str, sep: str) -> List[str]:
    out, buf, i = [], [], 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            buf.append(text[i : i + 2])
            i += 2
            continue
        if ch == sep:
            out.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
        i += 1
    out.append("".join(buf))
    return out


class ObjectNamespace:
    """One replica's object table."""

    def __init__(self, site: str, *, buckets: int = DIGEST_BUCKETS):
        self.site = site
        self.buckets = buckets
        self._objects: Dict[str, StoredObject] = {}
        self._clock = 0
        # Incrementally-maintained XOR of per-object tokens, one slot per
        # hash bucket, so anti-entropy can compare O(buckets) values and
        # only walk buckets that differ.
        self._bucket_hash: List[int] = [0] * buckets

    @staticmethod
    def _token(obj: StoredObject) -> int:
        return stable_hash(f"{obj.path}|{obj.version.to_wire()}|{int(obj.deleted)}")

    def _store(self, obj: StoredObject) -> None:
        slot = bucket_of(obj.path, self.buckets)
        old = self._objects.get(obj.path)
        if old is not None:
            self._bucket_hash[slot] ^= self._token(old)
        self._bucket_hash[slot] ^= self._token(obj)
        self._objects[obj.path] = obj

    def __len__(self) -> int:
        return sum(1 for o in self._objects.values() if not o.deleted)

    # -- local writes (coordinator side) ------------------------------------
    def next_version(self) -> Version:
        self._clock += 1
        return Version(self._clock, self.site)

    def _observe(self, version: Version) -> None:
        self._clock = max(self._clock, version.counter)

    def put(self, path: str, attrs: Dict[str, str]) -> StoredObject:
        check_path(path)
        obj = StoredObject(path, dict(attrs), self.next_version())
        self._store(obj)
        return obj

    def delete(self, path: str) -> Optional[StoredObject]:
        check_path(path)
        existing = self._objects.get(path)
        if existing is None or existing.deleted:
            return None
        tombstone = StoredObject(path, {}, self.next_version(), deleted=True)
        self._store(tombstone)
        return tombstone

    # -- replica application (LWW) ----------------------------------------------
    def apply(self, obj: StoredObject) -> bool:
        """Apply a remote write; returns True when it won (was newer)."""
        self._observe(obj.version)
        existing = self._objects.get(obj.path)
        if existing is not None and existing.version >= obj.version:
            return False
        self._store(obj)
        return True

    # -- reads --------------------------------------------------------------------
    def get(self, path: str) -> Optional[StoredObject]:
        obj = self._objects.get(path)
        if obj is None or obj.deleted:
            return None
        return obj

    def list(self, prefix: str = "/") -> List[str]:
        return sorted(
            path
            for path, obj in self._objects.items()
            if not obj.deleted and path.startswith(prefix)
        )

    # -- anti-entropy -----------------------------------------------------------------
    def digest(self) -> Dict[str, Version]:
        """path → version of everything including tombstones."""
        return {path: obj.version for path, obj in self._objects.items()}

    def bucket_hashes(self) -> List[int]:
        """One XOR token per bucket; equal slots need no path-level exchange."""
        return list(self._bucket_hash)

    def bucket_digest(self, bucket: int) -> Dict[str, Version]:
        """path → version for one hash bucket only (including tombstones)."""
        return {
            path: obj.version
            for path, obj in self._objects.items()
            if bucket_of(path, self.buckets) == bucket
        }

    def namespace_hash(self) -> str:
        """Deterministic digest of full replica state for convergence checks.

        LWW guarantees equal versions imply equal attrs, so hashing
        path|version|deleted lines is enough to compare replicas.
        """
        lines = sorted(
            f"{path}|{obj.version.to_wire()}|{int(obj.deleted)}"
            for path, obj in self._objects.items()
        )
        return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()

    def newer_than(self, remote: Dict[str, Version]) -> List[StoredObject]:
        """Objects the remote is missing or holds older versions of."""
        out = []
        for path, obj in self._objects.items():
            theirs = remote.get(path)
            if theirs is None or theirs < obj.version:
                out.append(obj)
        return sorted(out, key=lambda o: o.path)

    def raw(self, path: str) -> Optional[StoredObject]:
        """Including tombstones (replication internals)."""
        return self._objects.get(path)

    def all_objects(self) -> List[StoredObject]:
        """Every record including tombstones, path-sorted (rebalance)."""
        return [self._objects[path] for path in sorted(self._objects)]

    def drop(self, path: str) -> Optional[StoredObject]:
        """Forget a record entirely — no tombstone.  Rebalance uses this to
        release objects handed off to another shard group."""
        obj = self._objects.pop(path, None)
        if obj is not None:
            self._bucket_hash[bucket_of(path, self.buckets)] ^= self._token(obj)
        return obj
