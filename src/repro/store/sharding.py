"""Consistent-hash sharding of the store namespace (Dynamo-style).

A :class:`ShardMap` partitions object paths across N replica-groups via a
ring of virtual nodes.  Every client and every store daemon holds the same
map, so routing is computed locally — no lookup service in the hot path.
Growing the map (`grown`) adds one group's vnodes to the ring; only keys
whose ring successor is now a new vnode move, which keeps rebalancing
proportional to 1/N of the namespace.

All hashing goes through :func:`stable_hash` (blake2b) because Python's
builtin ``hash`` is salted per process and would give every replica a
different ring.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import List, Sequence, Tuple


def stable_hash(text: str) -> int:
    """Deterministic 64-bit hash, identical across processes and runs."""
    return int.from_bytes(
        hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "big"
    )


def bucket_of(path: str, buckets: int) -> int:
    """Digest bucket for a path (incremental anti-entropy)."""
    return stable_hash(path) % buckets


class ShardMap:
    """Maps object paths to shard groups via a consistent-hash vnode ring.

    ``groups`` is the number of replica-groups; each contributes ``vnodes``
    points to the ring.  ``epoch`` increments on growth so daemons can tell
    stale maps apart from current ones.
    """

    def __init__(self, groups: int, *, vnodes: int = 64, epoch: int = 1):
        if groups < 1:
            raise ValueError("ShardMap needs at least one group")
        self.groups = groups
        self.vnodes = vnodes
        self.epoch = epoch
        self._ring: List[Tuple[int, int]] = sorted(
            (stable_hash(f"shard:{g}:{v}"), g)
            for g in range(groups)
            for v in range(vnodes)
        )
        self._points = [p for p, _ in self._ring]

    def shard_for(self, path: str) -> int:
        """Group index owning ``path``."""
        if self.groups == 1:
            return 0
        idx = bisect_right(self._points, stable_hash(path)) % len(self._ring)
        return self._ring[idx][1]

    def grown(self) -> "ShardMap":
        """A new map with one more group (epoch bumped)."""
        return ShardMap(self.groups + 1, vnodes=self.vnodes, epoch=self.epoch + 1)

    def shrunk(self) -> "ShardMap":
        """A new map with the *last* group removed (epoch bumped).

        Only the highest group index can leave: its vnodes vanish from
        the ring and every key it owned falls to the next surviving
        vnode, while keys owned by remaining groups keep their owners —
        the mirror of :meth:`grown`, so a drain moves only the departing
        group's 1/N of the namespace."""
        if self.groups <= 1:
            raise ValueError("cannot shrink below one group")
        return ShardMap(self.groups - 1, vnodes=self.vnodes, epoch=self.epoch + 1)

    def moved_paths(self, paths: Sequence[str], new_map: "ShardMap") -> List[str]:
        """Paths whose owner changes between this map and ``new_map``."""
        return [p for p in paths if self.shard_for(p) != new_map.shard_for(p)]

    def to_wire(self) -> str:
        return f"{self.groups}:{self.vnodes}:{self.epoch}"

    @classmethod
    def from_wire(cls, text: str) -> "ShardMap":
        groups, vnodes, epoch = (int(part) for part in text.split(":"))
        return cls(groups, vnodes=vnodes, epoch=epoch)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ShardMap)
            and self.groups == other.groups
            and self.vnodes == other.vnodes
            and self.epoch == other.epoch
        )

    def __repr__(self) -> str:
        return f"ShardMap(groups={self.groups}, vnodes={self.vnodes}, epoch={self.epoch})"
