"""Core event loop: events, processes, and the simulator.

The kernel is intentionally small.  An :class:`Event` is a one-shot future
with callbacks; a :class:`Process` wraps a generator and drives it by
subscribing to whatever event the generator yields; the :class:`Simulator`
owns the event heap and the virtual clock.

Only the pieces ACE needs are implemented: timeouts, process spawning and
interruption, and ``AnyOf``/``AllOf`` composition.  The scheduling order is
total and deterministic: ``(time, priority, sequence-number)``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

#: Event priorities.  Lower sorts earlier at equal timestamps.
URGENT = 0
NORMAL = 1
LOW = 2


class SimulationError(RuntimeError):
    """Raised for kernel misuse (re-triggering events, bad yields, ...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process may catch it and continue; the event it was
    waiting on remains pending and may be re-yielded.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* once (``succeed`` or ``fail``) and then delivered
    to all registered callbacks when the simulator pops it off the heap.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_scheduled", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._scheduled = False
        self._defused = False

    # -- inspection ------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Mark the event successful and schedule callback delivery."""
        self._trigger(True, value, priority)
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        """Mark the event failed; waiting processes see ``exc`` raised."""
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._trigger(False, exc, priority)
        return self

    def defuse(self) -> None:
        """Suppress the 'unhandled failure' crash for this event."""
        self._defused = True

    def _trigger(self, ok: bool, value: Any, priority: int) -> None:
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = ok
        self._value = value
        self.sim._schedule(self, delay=0.0, priority=priority)

    def _deliver(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for cb in callbacks:
            cb(self)
        if not self._ok and not self._defused and not callbacks:
            # A failure nobody waited on: surface it instead of losing it.
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None, priority: int = NORMAL):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        sim._schedule(self, delay=delay, priority=priority)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process itself is an event that fires when the generator returns
    (value = the generator's return value) or raises (failure).
    """

    __slots__ = ("generator", "name", "_waiting_on", "obs_context")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Ambient observability context: spawned processes inherit the
        # spawner's current span, so fan-out work (notifications, store
        # replication, RPC attempts) stays causally attached to the request
        # that caused it.  Opaque to the kernel.
        parent = sim.active_process
        self.obs_context = parent.obs_context if parent is not None else None
        # Bootstrap: resume once at the current time.
        boot = Event(sim)
        boot.callbacks.append(self._resume)
        boot.succeed(priority=URGENT)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return  # already finished; interrupting is a no-op
        kick = Event(self.sim)
        kick.callbacks.append(lambda _ev: self._throw(Interrupt(cause)))
        kick.succeed(priority=URGENT)

    # -- internal --------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._ok:
            self._step(self.generator.send, event._value)
        else:
            event.defuse()
            self._step(self.generator.throw, event._value)

    def _throw(self, exc: BaseException) -> None:
        if self._triggered:
            return
        waiting = self._waiting_on
        if waiting is not None and waiting.callbacks is not None:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self._step(self.generator.throw, exc)

    def _step(self, call: Callable, arg: Any) -> None:
        prev_active = self.sim.active_process
        self.sim.active_process = self
        try:
            self._step_inner(call, arg)
        finally:
            self.sim.active_process = prev_active

    def _step_inner(self, call: Callable, arg: Any) -> None:
        try:
            target = call(arg)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            err = SimulationError(f"process {self.name!r} yielded non-event {target!r}")
            self._step(self.generator.throw, err)
            return
        if target.sim is not self.sim:
            err = SimulationError("yielded event belongs to a different simulator")
            self._step(self.generator.throw, err)
            return
        if target.callbacks is None:
            # Already processed: resume immediately via a fresh event so the
            # heap ordering stays consistent.
            relay = Event(self.sim)
            relay.callbacks.append(self._resume)
            if target._ok:
                relay.succeed(target._value, priority=URGENT)
            else:
                target.defuse()
                relay.fail(target._value, priority=URGENT)
            self._waiting_on = relay
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class _Condition(Event):
    """Base for AnyOf/AllOf: waits on several events at once."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes simulators")
        self._pending = 0
        for ev in self.events:
            if ev.callbacks is None:
                self._observe(ev)
            else:
                self._pending += 1
                ev.callbacks.append(self._on_child)
        self._finalize_if_done()

    def _on_child(self, ev: Event) -> None:
        self._pending -= 1
        if not self._triggered:
            self._observe(ev)
            self._finalize_if_done()
        elif not ev._ok:
            ev.defuse()

    def _observe(self, ev: Event) -> None:
        raise NotImplementedError

    def _finalize_if_done(self) -> None:
        raise NotImplementedError

    def results(self) -> dict[Event, Any]:
        """Values of all child events that have completed successfully."""
        return {
            ev: ev._value
            for ev in self.events
            if ev._triggered and ev._ok and ev.callbacks is None
        }


class AnyOf(_Condition):
    """Fires when the first child event fires (success or failure)."""

    __slots__ = ()

    def _observe(self, ev: Event) -> None:
        if self._triggered:
            return
        if ev._ok:
            self.succeed({ev: ev._value})
        else:
            ev.defuse()
            self.fail(ev._value)

    def _finalize_if_done(self) -> None:
        if not self._triggered and not self.events:
            self.succeed({})


class AllOf(_Condition):
    """Fires when every child has fired; fails fast on any child failure."""

    __slots__ = ()

    def _observe(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev._ok:
            ev.defuse()
            self.fail(ev._value)

    def _finalize_if_done(self) -> None:
        if self._triggered:
            return
        if all(ev._triggered and ev.callbacks is None for ev in self.events):
            self.succeed({ev: ev._value for ev in self.events})


class Simulator:
    """The event loop: a heap of ``(time, priority, seq, event)`` entries."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._running = False
        #: the process currently being stepped (None between steps); lets
        #: freshly spawned processes inherit the spawner's obs_context
        self.active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None, priority: int = NORMAL) -> Timeout:
        return Timeout(self, delay, value, priority)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn a new process from a generator."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        when, _prio, _seq, event = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("time went backwards")
        self._now = when
        event._deliver()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or the clock would pass ``until``.

        When ``until`` is given the clock is always advanced to exactly
        ``until`` on return, even if the heap drained earlier.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            if until is None:
                while self._heap:
                    self.step()
            else:
                if until < self._now:
                    raise SimulationError(f"until={until} is in the past (now={self._now})")
                while self._heap and self._heap[0][0] <= until:
                    self.step()
                self._now = until
        finally:
            self._running = False

    def run_process(self, generator: Generator, name: str = "", timeout: Optional[float] = None) -> Any:
        """Convenience: spawn a process, run until it finishes, return its value.

        Raises whatever the process raised; raises ``SimulationError`` if the
        heap drains (or ``timeout`` elapses) before the process completes.
        """
        proc = self.process(generator, name=name)
        deadline = None if timeout is None else self._now + timeout
        while not proc.triggered:
            if not self._heap:
                raise SimulationError(f"deadlock: process {proc.name!r} never completed")
            if deadline is not None and self._heap[0][0] > deadline:
                raise SimulationError(f"process {proc.name!r} exceeded timeout {timeout}")
            self.step()
        # Drain the delivery of the completion event itself.
        while self._heap and not proc.processed and self._heap[0][0] <= self._now:
            self.step()
        if proc.ok:
            return proc.value
        proc.defuse()
        raise proc.value
