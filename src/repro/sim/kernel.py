"""Core event loop: events, processes, and the simulator.

The kernel is intentionally small.  An :class:`Event` is a one-shot future
with callbacks; a :class:`Process` wraps a generator and drives it by
subscribing to whatever event the generator yields; the :class:`Simulator`
owns the event heap and the virtual clock.

Only the pieces ACE needs are implemented: timeouts, process spawning and
interruption, and ``AnyOf``/``AllOf`` composition.  The scheduling order is
total and deterministic: ``(time, priority, sequence-number)``.

Hot path (E24)
--------------
Almost every occurrence in an ACE run is *zero-delay*: event triggers,
queue hand-offs, process bootstraps, relays for already-processed yields,
interrupt kicks.  Pushing each of those through the binary heap costs a
tuple allocation plus O(log n) sift both ways.  The fast path (default;
disable with ``ACE_KERNEL_FASTPATH=0``) instead lands zero-delay
occurrences on per-priority FIFO **ready queues** and replaces the relay/
bootstrap/kick ``Event`` allocations with small :class:`_Resume` records.

The total order is *unchanged*: every schedule still consumes one global
sequence number, ready entries are FIFO-by-sequence within their priority,
and :meth:`Simulator._pop_next` compares the heap head's
``(time, priority, seq)`` against the best ready head before popping — so
delivery order is exactly the ``(time, priority, seq)`` min in both modes
and same-seed traces are bit-identical (regression-tested).
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

#: Event priorities.  Lower sorts earlier at equal timestamps.
URGENT = 0
NORMAL = 1
LOW = 2


class SimulationError(RuntimeError):
    """Raised for kernel misuse (re-triggering events, bad yields, ...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process may catch it and continue; the event it was
    waiting on remains pending and may be re-yielded.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* once (``succeed`` or ``fail``) and then delivered
    to all registered callbacks when the simulator pops it off the heap.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_scheduled", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._scheduled = False
        self._defused = False

    # -- inspection ------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Mark the event successful and schedule callback delivery."""
        self._trigger(True, value, priority)
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        """Mark the event failed; waiting processes see ``exc`` raised."""
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._trigger(False, exc, priority)
        return self

    def defuse(self) -> None:
        """Suppress the 'unhandled failure' crash for this event."""
        self._defused = True

    def _trigger(self, ok: bool, value: Any, priority: int) -> None:
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = ok
        self._value = value
        self.sim._schedule(self, delay=0.0, priority=priority)

    def _deliver(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for cb in callbacks:
            cb(self)
        if not self._ok and not self._defused and not callbacks:
            # A failure nobody waited on: surface it instead of losing it.
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class _Resume:
    """A ready-queue record resuming (or interrupting) a process directly.

    Replaces the fast path's three throwaway ``Event`` allocations — the
    bootstrap event in :meth:`Process.__init__`, the relay event for
    already-processed yields in :meth:`Process._step_inner`, and the kick
    event in :meth:`Process.interrupt` — with one four-slot record and a
    deque append.  ``cancelled`` lets :meth:`Process._throw` revoke a
    pending resume exactly like removing ``_resume`` from a relay's
    callback list.
    """

    __slots__ = ("proc", "ok", "value", "kick", "cancelled")

    def __init__(self, proc: "Process", ok: bool, value: Any, kick: bool = False):
        self.proc = proc
        self.ok = ok
        self.value = value
        self.kick = kick
        self.cancelled = False

    def _deliver(self) -> None:
        if self.cancelled:
            return
        proc = self.proc
        if self.kick:
            proc._throw(Interrupt(self.value))
            return
        proc._pending_resume = None
        proc._waiting_on = None
        if self.ok:
            proc._step(proc.generator.send, self.value)
        else:
            proc._step(proc.generator.throw, self.value)


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None, priority: int = NORMAL):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        sim._schedule(self, delay=delay, priority=priority)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process itself is an event that fires when the generator returns
    (value = the generator's return value) or raises (failure).
    """

    __slots__ = ("generator", "name", "_waiting_on", "_pending_resume", "_resume_cb", "obs_context")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._pending_resume: Optional[_Resume] = None
        # One bound method reused for every yield instead of allocating a
        # fresh one per callbacks.append.
        self._resume_cb = self._resume
        # Ambient observability context: spawned processes inherit the
        # spawner's current span, so fan-out work (notifications, store
        # replication, RPC attempts) stays causally attached to the request
        # that caused it.  Opaque to the kernel.
        parent = sim.active_process
        self.obs_context = parent.obs_context if parent is not None else None
        # Bootstrap: resume once at the current time.
        if sim.fastpath:
            record = _Resume(self, True, None)
            self._pending_resume = record
            sim._schedule_record(record, URGENT)
        else:
            boot = Event(sim)
            boot.callbacks.append(self._resume_cb)
            boot.succeed(priority=URGENT)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return  # already finished; interrupting is a no-op
        sim = self.sim
        if sim.fastpath:
            sim._schedule_record(_Resume(self, True, cause, kick=True), URGENT)
            return
        kick = Event(sim)
        kick.callbacks.append(lambda _ev: self._throw(Interrupt(cause)))
        kick.succeed(priority=URGENT)

    # -- internal --------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._ok:
            self._step(self.generator.send, event._value)
        else:
            event.defuse()
            self._step(self.generator.throw, event._value)

    def _throw(self, exc: BaseException) -> None:
        if self._triggered:
            return
        record = self._pending_resume
        if record is not None:
            record.cancelled = True
            self._pending_resume = None
        waiting = self._waiting_on
        if waiting is not None and waiting.callbacks is not None:
            try:
                waiting.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._waiting_on = None
        self._step(self.generator.throw, exc)

    def _step(self, call: Callable, arg: Any) -> None:
        sim = self.sim
        prev_active = sim.active_process
        sim.active_process = self
        try:
            try:
                target = call(arg)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.fail(exc)
                return
            if not isinstance(target, Event):
                err = SimulationError(f"process {self.name!r} yielded non-event {target!r}")
                self._step(self.generator.throw, err)
                return
            if target.sim is not sim:
                err = SimulationError("yielded event belongs to a different simulator")
                self._step(self.generator.throw, err)
                return
            if target.callbacks is None:
                # Already processed: resume at the current time through the
                # scheduler so ordering stays consistent.
                if sim.fastpath:
                    if not target._ok:
                        target.defuse()
                    record = _Resume(self, target._ok, target._value)
                    self._pending_resume = record
                    self._waiting_on = None
                    sim._schedule_record(record, URGENT)
                    return
                relay = Event(sim)
                relay.callbacks.append(self._resume_cb)
                if target._ok:
                    relay.succeed(target._value, priority=URGENT)
                else:
                    target.defuse()
                    relay.fail(target._value, priority=URGENT)
                self._waiting_on = relay
            else:
                target.callbacks.append(self._resume_cb)
                self._waiting_on = target
        finally:
            sim.active_process = prev_active


class _Condition(Event):
    """Base for AnyOf/AllOf: waits on several events at once."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes simulators")
        self._pending = 0
        for ev in self.events:
            if ev.callbacks is None:
                self._observe(ev)
            else:
                self._pending += 1
                ev.callbacks.append(self._on_child)
        self._finalize_if_done()

    def _on_child(self, ev: Event) -> None:
        self._pending -= 1
        if not self._triggered:
            self._observe(ev)
            self._finalize_if_done()
        elif not ev._ok:
            ev.defuse()

    def _observe(self, ev: Event) -> None:
        raise NotImplementedError

    def _finalize_if_done(self) -> None:
        raise NotImplementedError

    def results(self) -> dict[Event, Any]:
        """Values of all child events that have completed successfully."""
        return {
            ev: ev._value
            for ev in self.events
            if ev._triggered and ev._ok and ev.callbacks is None
        }


class AnyOf(_Condition):
    """Fires when the first child event fires (success or failure)."""

    __slots__ = ()

    def _observe(self, ev: Event) -> None:
        if self._triggered:
            return
        if ev._ok:
            self.succeed({ev: ev._value})
        else:
            ev.defuse()
            self.fail(ev._value)

    def _finalize_if_done(self) -> None:
        if not self._triggered and not self.events:
            self.succeed({})


class AllOf(_Condition):
    """Fires when every child has fired; fails fast on any child failure."""

    __slots__ = ()

    def _observe(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev._ok:
            ev.defuse()
            self.fail(ev._value)

    def _finalize_if_done(self) -> None:
        if self._triggered:
            return
        if all(ev._triggered and ev.callbacks is None for ev in self.events):
            self.succeed({ev: ev._value for ev in self.events})


class Simulator:
    """The event loop: a heap of ``(time, priority, seq, event)`` entries
    plus, on the fast path, per-priority ready queues for the zero-delay
    occurrences that dominate real runs (see the module docstring).

    ``fastpath=None`` (default) reads ``ACE_KERNEL_FASTPATH`` from the
    environment at construction time — ``0`` disables — so determinism
    tests can run the same workload on both paths.
    """

    def __init__(self, fastpath: Optional[bool] = None) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Any]] = []
        self._seq = 0
        self._running = False
        if fastpath is None:
            fastpath = os.environ.get("ACE_KERNEL_FASTPATH", "1") != "0"
        #: zero-delay occurrences bypass the heap when True (default)
        self.fastpath = bool(fastpath)
        #: ready queues, one FIFO of ``(seq, item)`` per priority level
        self._ready: tuple[deque, deque, deque] = (deque(), deque(), deque())
        #: the process currently being stepped (None between steps); lets
        #: freshly spawned processes inherit the spawner's obs_context
        self.active_process: Optional[Process] = None
        # -- hot-path counters (read by repro.obs.profiling / E24) --------
        #: heap entries pushed (delayed, or all schedules on the slow path)
        self.n_heap_pushes = 0
        #: relay/boot/kick Event allocations replaced by _Resume records
        self.n_relays_avoided = 0
        #: events + resume records delivered by step()
        self.n_delivered = 0

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None, priority: int = NORMAL) -> Timeout:
        return Timeout(self, delay, value, priority)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn a new process from a generator."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        self._seq += 1
        if self.fastpath and delay == 0.0 and 0 <= priority <= 2:
            self._ready[priority].append((self._seq, event))
        else:
            self.n_heap_pushes += 1
            heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def _schedule_record(self, record: _Resume, priority: int) -> None:
        """Fast-path only: land a resume record on a ready queue.  Consumes
        one sequence number, exactly like the Event it replaces."""
        self._seq += 1
        self.n_relays_avoided += 1
        self._ready[priority].append((self._seq, record))

    def counters(self) -> dict[str, int]:
        """Kernel hot-path counters (E24's profiling harness reads these).

        ``ready_hits`` is derived (every schedule goes to exactly one of
        heap or ready queue) so the hottest branch pays no counter cost.
        """
        return {
            "events_scheduled": self._seq,
            "heap_pushes": self.n_heap_pushes,
            "ready_hits": self._seq - self.n_heap_pushes,
            "relays_avoided": self.n_relays_avoided,
            "events_delivered": self.n_delivered,
        }

    def _pop_next(self, _heappop=heapq.heappop) -> tuple[float, Any]:
        """Pop the globally next occurrence: the ``(time, priority, seq)``
        minimum across the heap and the ready queues.

        Ready entries always carry ``time == now`` (time only advances when
        the heap delivers, and the heap never delivers past a non-empty
        ready queue), so the comparison against the heap head reduces to
        ``(priority, seq)`` when the head is due now.
        """
        ready = self._ready
        if ready[0]:
            queue, prio = ready[0], 0
        elif ready[1]:
            queue, prio = ready[1], 1
        elif ready[2]:
            queue, prio = ready[2], 2
        else:
            entry = _heappop(self._heap)
            return entry[0], entry[3]
        heap = self._heap
        if heap:
            head = heap[0]
            if head[0] <= self._now and (
                head[1] < prio or (head[1] == prio and head[2] < queue[0][0])
            ):
                _heappop(heap)
                return head[0], head[3]
        return self._now, queue.popleft()[1]

    def peek(self) -> float:
        """Time of the next scheduled occurrence, or ``inf`` if none."""
        ready = self._ready
        if ready[0] or ready[1] or ready[2]:
            return self._now
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one occurrence (event delivery or resume)."""
        when, item = self._pop_next()
        if when < self._now:
            raise SimulationError("time went backwards")
        self._now = when
        self.n_delivered += 1
        item._deliver()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queues drain or the clock would pass ``until``.

        When ``until`` is given the clock is always advanced to exactly
        ``until`` on return, even if the queues drained earlier.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        heap = self._heap
        r0, r1, r2 = self._ready
        pop = self._pop_next
        delivered = 0
        try:
            if until is None:
                while r0 or r1 or r2 or heap:
                    when, item = pop()
                    self._now = when
                    delivered += 1
                    item._deliver()
            else:
                if until < self._now:
                    raise SimulationError(f"until={until} is in the past (now={self._now})")
                # Ready entries are always due at the current time, which
                # never exceeds ``until`` inside this loop.
                while r0 or r1 or r2 or (heap and heap[0][0] <= until):
                    when, item = pop()
                    self._now = when
                    delivered += 1
                    item._deliver()
                self._now = until
        finally:
            self.n_delivered += delivered
            self._running = False

    def run_window(self, before: float) -> int:
        """Process every occurrence strictly earlier than ``before``.

        The conservative-sync hook for sharded runs (E29): a shard kernel
        may safely process all events with ``time < before`` when its peers
        cannot send it anything arriving earlier than ``before`` (the
        coordinator guarantees this via the inter-shard lookahead).  Unlike
        :meth:`run`, the clock is **not** advanced to ``before`` — it stays
        at the last delivered occurrence, because the window bound is a
        safety horizon, not a time barrier.  Returns the number of
        occurrences delivered.
        """
        if self._running:
            raise SimulationError("run_window() is not reentrant")
        if before <= self._now:
            return 0
        self._running = True
        heap = self._heap
        r0, r1, r2 = self._ready
        pop = self._pop_next
        delivered = 0
        try:
            # Ready entries are always due at the current time, which stays
            # strictly below ``before`` inside this loop (only delivered
            # occurrence times advance it).
            while r0 or r1 or r2 or (heap and heap[0][0] < before):
                when, item = pop()
                self._now = when
                delivered += 1
                item._deliver()
        finally:
            self.n_delivered += delivered
            self._running = False
        return delivered

    def run_process(self, generator: Generator, name: str = "", timeout: Optional[float] = None) -> Any:
        """Convenience: spawn a process, run until it finishes, return its value.

        Raises whatever the process raised; raises ``SimulationError`` if the
        queues drain (or ``timeout`` elapses) before the process completes.
        """
        proc = self.process(generator, name=name)
        deadline = None if timeout is None else self._now + timeout
        heap = self._heap
        r0, r1, r2 = self._ready
        pop = self._pop_next
        delivered = 0
        try:
            while not proc._triggered:
                if not (r0 or r1 or r2):
                    # Only heap entries can advance the clock, so the
                    # deadlock/timeout checks live on this branch alone:
                    # ready entries are always due at the current time,
                    # which is already known to be within the deadline.
                    if not heap:
                        raise SimulationError(
                            f"deadlock: process {proc.name!r} never completed"
                        )
                    if deadline is not None and heap[0][0] > deadline:
                        raise SimulationError(
                            f"process {proc.name!r} exceeded timeout {timeout}"
                        )
                when, item = pop()
                self._now = when
                delivered += 1
                item._deliver()
            # Drain the delivery of the completion event itself.
            while proc.callbacks is not None and self.peek() <= self._now:
                when, item = pop()
                self._now = when
                delivered += 1
                item._deliver()
        finally:
            self.n_delivered += delivered
        if proc.ok:
            return proc.value
        proc.defuse()
        raise proc.value
