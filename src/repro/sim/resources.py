"""Shared-resource primitives: counted resources and continuous containers.

:class:`Resource` models things like CPU execution slots on a simulated host
(a host with one core serializes daemon work; an SMP host runs the four
daemon threads genuinely concurrently, which experiment E20 measures).
:class:`Container` models divisible quantities such as memory or disk.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.sim.kernel import Event, SimulationError, Simulator, URGENT


class Request(Event):
    """The event returned by :meth:`Resource.request`; fires on grant."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource

    def release(self) -> None:
        self.resource.release(self)


class Resource:
    """A resource with ``capacity`` identical slots and a FIFO wait queue."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._users: set[Request] = set()
        self._queue: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queued(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Request:
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed(req, priority=URGENT)
        else:
            self._queue.append(req)
        return req

    def release(self, request: Request) -> None:
        if request in self._users:
            self._users.remove(request)
        else:
            # Releasing a still-queued (never granted) request cancels it.
            try:
                self._queue.remove(request)
                return
            except ValueError:
                raise SimulationError("release of a request this resource never granted")
        if self._queue:
            nxt = self._queue.popleft()
            self._users.add(nxt)
            nxt.succeed(nxt, priority=URGENT)


class Container:
    """A continuous quantity with bounded level (memory, disk, battery)."""

    def __init__(
        self,
        sim: Simulator,
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "",
    ):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise SimulationError(f"init {init} outside [0, {capacity}]")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._level = init
        self._getters: deque[tuple[Event, float]] = deque()
        self._putters: deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError("negative put amount")
        ev = Event(self.sim)
        if self._level + amount <= self.capacity:
            self._level += amount
            ev.succeed(priority=URGENT)
            self._drain()
        else:
            self._putters.append((ev, amount))
        return ev

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError("negative get amount")
        if amount > self.capacity:
            raise SimulationError(f"get {amount} exceeds capacity {self.capacity}")
        ev = Event(self.sim)
        if amount <= self._level:
            self._level -= amount
            ev.succeed(priority=URGENT)
            self._drain()
        else:
            self._getters.append((ev, amount))
        return ev

    def try_get(self, amount: float) -> bool:
        if 0 <= amount <= self._level:
            self._level -= amount
            self._drain()
            return True
        return False

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._getters and self._getters[0][1] <= self._level:
                ev, amount = self._getters.popleft()
                self._level -= amount
                ev.succeed(priority=URGENT)
                progressed = True
            if self._putters and self._level + self._putters[0][1] <= self.capacity:
                ev, amount = self._putters.popleft()
                self._level += amount
                ev.succeed(priority=URGENT)
                progressed = True
