"""Deterministic discrete-event simulation kernel.

This package is the substrate every other ``repro`` subsystem runs on.  It
provides a generator-based process model (in the style of SimPy, but minimal
and fully deterministic): simulation *processes* are Python generators that
``yield`` :class:`~repro.sim.kernel.Event` objects and are resumed by the
:class:`~repro.sim.kernel.Simulator` when those events fire.

Determinism rules
-----------------
* Ties in the event heap are broken by a monotonically increasing sequence
  number, so two runs with the same seed replay identically.
* Wall-clock time is never consulted; ``Simulator.now`` is the only clock.
* All randomness must come from :class:`~repro.sim.rng.RngRegistry` streams.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
    URGENT,
    NORMAL,
    LOW,
)
from repro.sim.queues import PriorityStore, QueueClosed, Store
from repro.sim.resources import Container, Resource
from repro.sim.rng import RngRegistry
from repro.sim.trace import (
    MergedTrace,
    MergedTraceRecord,
    TraceRecord,
    TraceRecorder,
    canonical_trace_hash,
    merge_traces,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Event",
    "Interrupt",
    "LOW",
    "MergedTrace",
    "MergedTraceRecord",
    "NORMAL",
    "PriorityStore",
    "Process",
    "QueueClosed",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecord",
    "TraceRecorder",
    "URGENT",
    "canonical_trace_hash",
    "merge_traces",
]
