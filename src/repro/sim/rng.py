"""Named, seeded random streams.

Every stochastic element of a simulation (link jitter, fingerprint sensor
noise, workload arrivals, ...) draws from its own named stream so that adding
a new consumer of randomness never perturbs the draws of existing ones.
Streams are derived from the registry's root seed and the stream name, so a
given ``(seed, name)`` pair always yields the identical sequence.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np


class RngRegistry:
    """Factory of deterministic per-name random generators."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._py: Dict[str, random.Random] = {}
        self._np: Dict[str, np.random.Generator] = {}

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def derive_seed(self, name: str) -> int:
        """The deterministic 64-bit seed for ``name`` — for callers that
        want a *transient* generator (e.g. a compact per-user RNG at
        population scale) without the registry caching a ``random.Random``
        per name.  Same derivation as :meth:`py`/:meth:`np`, so a given
        ``(seed, name)`` still always yields the identical sequence."""
        return self._derive(name)

    def py(self, name: str) -> random.Random:
        """A ``random.Random`` dedicated to ``name``."""
        if name not in self._py:
            self._py[name] = random.Random(self._derive(name))
        return self._py[name]

    def np(self, name: str) -> np.random.Generator:
        """A numpy ``Generator`` dedicated to ``name``."""
        if name not in self._np:
            self._np[name] = np.random.default_rng(self._derive(name))
        return self._np[name]

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of the parent's."""
        return RngRegistry(self._derive(f"fork:{name}"))
