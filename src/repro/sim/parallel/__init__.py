"""Sharded multi-process simulation kernel (E29).

Partitions a simulated network across kernel shards — one OS process per
shard — with conservative (CMB-style) synchronization: the minimum
cross-shard link latency is the lookahead, and the coordinator grants
time windows the shards process independently.  See
:mod:`repro.sim.parallel.sharded` for the protocol and
:mod:`repro.net.boundary` for how cross-shard traffic stays on the
ordinary link model.
"""

from repro.sim.parallel.context import ShardContext
from repro.sim.parallel.runtime import ShardServer, shard_process_main
from repro.sim.parallel.sharded import ShardedSimulator

__all__ = ["ShardContext", "ShardServer", "ShardedSimulator",
           "shard_process_main"]
