"""Per-shard runtime: the message loop that drives one kernel shard.

Each shard — whether it lives in its own OS process or in-process for
tests — is a :class:`ShardServer` answering a tiny request/reply protocol
from the coordinator (:class:`~repro.sim.parallel.sharded.ShardedSimulator`):

=============  =====================================================
``build``      run the topology builder, report lookahead + next event
``boot``       start ``env.boot_async(settle)`` as a kernel process
``spawn``      call a module-level ``fn(env, ctx, *args, **kwargs)``
``peek``       report next event time and current clock
``window``     inject boundary messages, run events strictly before W,
               drain the outbox, report next event time
``advance``    ``sim.run(until=t)`` — clock catch-up, queues already dry
``collect``    call ``fn(env, ctx, ...)`` and return its (picklable) result
``counters``   kernel counters + sync/boundary/cpu telemetry
``trace``      the shard-local trace log
``stop``       exit the loop
=============  =====================================================

Requests and replies are plain picklable tuples: ``("verb", *payload)``
in, ``("ok", result)`` or ``("error", traceback_text)`` out.  ``spawn``/
``collect`` functions must be module-level (they cross a pickle
boundary in process mode).
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Callable, Dict, Optional, Tuple

from repro.net.boundary import BoundaryNetwork
from repro.sim.parallel.context import ShardContext


def _maxrss_kb() -> int:
    """Peak RSS of this shard process in KiB (0 where unsupported).

    Linux reports ``ru_maxrss`` in KiB, macOS in bytes — normalized here
    so the 100k-user memory telemetry reads the same everywhere.
    """
    try:
        import resource
        import sys
        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(rss // 1024) if sys.platform == "darwin" else int(rss)
    except Exception:  # pragma: no cover - non-POSIX
        return 0


class ShardServer:
    """Owns one environment + kernel and executes coordinator requests."""

    def __init__(self, index: int, n_shards: int,
                 builder: Callable[[ShardContext], Any],
                 host_to_shard: Optional[Callable[[str], int]] = None,
                 seed: int = 0):
        self.ctx = ShardContext(index, n_shards, host_to_shard, seed)
        self.builder = builder
        self.env: Any = None
        self.windows = 0
        self.lookahead_stalls = 0

    # -- dispatch -------------------------------------------------------
    def handle(self, msg: Tuple[Any, ...]) -> Any:
        return getattr(self, f"_do_{msg[0]}")(*msg[1:])

    def _eot(self, next_event: float) -> Dict[int, float]:
        """The EOT promise vector piggybacked on every reply carrying a
        next-event time (empty on single-kernel fabrics)."""
        net = self.env.net
        if isinstance(net, BoundaryNetwork):
            return net.earliest_output_times(next_event)
        return {}

    # -- verbs ----------------------------------------------------------
    def _do_build(self) -> Dict[str, Any]:
        self.env = self.builder(self.ctx)
        sim, net = self.env.sim, self.env.net
        lookahead = float("inf")
        lookahead_row: Dict[int, float] = {}
        if isinstance(net, BoundaryNetwork):
            lookahead_row = net.compute_lookahead_row()
            lookahead = net.compute_lookahead()
        owned = sum(1 for name in net.hosts if self.ctx.owns(name))
        nxt = sim.peek()
        return {
            "lookahead": lookahead,
            "lookahead_row": lookahead_row,
            "next": nxt,
            "eot": self._eot(nxt),
            "hosts_owned": owned,
            "hosts_total": len(net.hosts),
        }

    def _do_boot(self, settle: float) -> Dict[str, Any]:
        self.env.sim.process(self.env.boot_async(settle), name="boot")
        nxt = self.env.sim.peek()
        return {"next": nxt, "eot": self._eot(nxt)}

    def _do_spawn(self, fn: Callable, args: tuple, kwargs: dict) -> Dict[str, Any]:
        result = fn(self.env, self.ctx, *args, **kwargs)
        nxt = self.env.sim.peek()
        return {"next": nxt, "eot": self._eot(nxt), "result": result}

    def _do_peek(self) -> Dict[str, Any]:
        return {"next": self.env.sim.peek(), "now": self.env.sim.now}

    def _do_window(self, before: float, msgs: list) -> Dict[str, Any]:
        net = self.env.net
        if msgs:
            net.inject(msgs)
        delivered = self.env.sim.run_window(before)
        self.windows += 1
        if delivered == 0:
            self.lookahead_stalls += 1
        outbox = net.drain_outbox() if isinstance(net, BoundaryNetwork) else {}
        nxt = self.env.sim.peek()
        return {
            "next": nxt,
            "eot": self._eot(nxt),
            "now": self.env.sim.now,
            "outbox": outbox,
            "delivered": delivered,
        }

    def _do_advance(self, until: float) -> Dict[str, Any]:
        if until > self.env.sim.now:
            self.env.sim.run(until=until)
        nxt = self.env.sim.peek()
        return {"next": nxt, "eot": self._eot(nxt), "now": self.env.sim.now}

    def _do_collect(self, fn: Callable, args: tuple, kwargs: dict) -> Dict[str, Any]:
        return {"result": fn(self.env, self.ctx, *args, **kwargs)}

    def _do_counters(self) -> Dict[str, Any]:
        sim, net = self.env.sim, self.env.net
        info: Dict[str, Any] = {
            "kernel": dict(sim.counters()),
            "now": sim.now,
            "cpu_s": time.process_time(),
            "maxrss_kb": _maxrss_kb(),
            "windows": self.windows,
            "lookahead_stalls": self.lookahead_stalls,
            "trace_records": len(self.env.trace.records),
        }
        if isinstance(net, BoundaryNetwork):
            info["boundary"] = net.boundary.snapshot()
        return info

    def _do_trace(self) -> list:
        return list(self.env.trace.records)

    def _do_stop(self) -> Dict[str, Any]:
        return {}


def shard_process_main(index: int, n_shards: int,
                       builder: Callable[[ShardContext], Any],
                       host_to_shard: Optional[Callable[[str], int]],
                       seed: int, conn) -> None:
    """Entry point of a shard OS process: serve requests until ``stop``.

    Any exception inside a request is reported as ``("error", tb)`` and the
    loop keeps serving — the coordinator decides whether it is fatal.  A
    broken pipe (coordinator gone) exits quietly.
    """
    server = ShardServer(index, n_shards, builder, host_to_shard, seed)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        try:
            reply = ("ok", server.handle(msg))
        except BaseException:
            reply = ("error", traceback.format_exc())
        try:
            conn.send(reply)
        except (EOFError, OSError):
            return
        except Exception:
            # result not picklable — still answer, or the coordinator hangs
            try:
                conn.send(("error",
                           f"shard {index}: unpicklable reply to {msg[0]!r}\n"
                           + traceback.format_exc()))
            except Exception:
                return
        if msg and msg[0] == "stop":
            return
