"""Shard identity: which shard a host belongs to, and shard-local RNG.

A :class:`ShardContext` is handed to the topology *builder* callable in
every shard.  All shards build the identical topology from it (ghost
hosts included — see :mod:`repro.net.boundary`); the context only decides
*ownership*: which hosts run live daemons/workloads in this kernel.

RNG discipline (satellite: shard count must never perturb draws)
----------------------------------------------------------------
Per-host / per-user / per-daemon named streams must keep coming from the
environment's **root** :class:`~repro.sim.rng.RngRegistry` — streams are
keyed ``(seed, name)`` only, so a host's draw sequence is identical at 1,
2, or 4 shards (regression-tested).  ``shard_rng`` — the registry forked
via ``RngRegistry.fork("shard:<i>")`` — exists for randomness that is
*inherently* shard-local (e.g. shard-infrastructure jitter) and must not
collide with, or perturb, the root streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.kernel import SimulationError
from repro.sim.rng import RngRegistry


@dataclass
class ShardContext:
    """Identity and host-placement map for one kernel shard."""

    index: int
    n_shards: int
    #: host name -> shard index; ``None`` means everything lives on shard 0
    host_to_shard: Optional[Callable[[str], int]] = None
    seed: int = 0
    shard_rng: RngRegistry = field(init=False, repr=False)
    #: memoized host -> shard results; ownership is asked per message on
    #: the boundary fast path and per session at population spawn, so the
    #: user map is consulted once per host, not once per call
    _shard_cache: dict = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.n_shards:
            raise SimulationError(
                f"shard index {self.index} out of range for {self.n_shards} shards"
            )
        self.shard_rng = RngRegistry(self.seed).fork(f"shard:{self.index}")

    def shard_of(self, host_name: str) -> int:
        """The shard that owns ``host_name`` (memoized)."""
        if self.n_shards == 1 or self.host_to_shard is None:
            return 0
        shard = self._shard_cache.get(host_name)
        if shard is None:
            shard = int(self.host_to_shard(host_name))
            if not 0 <= shard < self.n_shards:
                raise SimulationError(
                    f"host {host_name!r} mapped to shard {shard}, "
                    f"but only {self.n_shards} shards exist"
                )
            self._shard_cache[host_name] = shard
        return shard

    def owns(self, host_name: str) -> bool:
        """Does this shard run the live daemons/sockets of ``host_name``?"""
        return self.shard_of(host_name) == self.index
