"""Coordinator for the sharded multi-process simulation kernel (E29).

:class:`ShardedSimulator` partitions a simulated network across kernel
shards — OS processes in ``mode="process"``, in-process servers in
``mode="local"`` (same code path, handy for tests) — and keeps them
conservatively synchronized with a *time-grant window* protocol:

1. Every shard reports its next event time; together with the timestamps
   of boundary messages still held by the coordinator this gives the
   global next-event time ``T``.
2. The coordinator grants the window ``W = min(T + lookahead,
   nextafter(until))`` to all shards in one round: each shard receives its
   pending boundary messages, processes every event strictly before ``W``
   (:meth:`~repro.sim.kernel.Simulator.run_window`), drains its outbox,
   and reports its new next-event time.
3. Repeat until the horizon is reached, then a final ``advance`` round
   snaps every shard clock to ``until`` exactly like ``Simulator.run``.

Safety: the lookahead is the minimum cross-shard link latency
(:meth:`~repro.net.boundary.BoundaryNetwork.compute_lookahead`), so a
message sent at ``t >= T`` arrives at ``t' >= T + lookahead >= W`` — never
inside the window being processed.  A grant that moves no events forward
on a shard is that shard's *null message* in classic CMB terms; both are
counted and surfaced through :meth:`counters`.

With one shard the coordinator degenerates to a single window per
``run()`` over the unmodified kernel — bit-identical to ``Simulator.run``
(guarded by the kernel determinism suite).
"""

from __future__ import annotations

import math
import multiprocessing
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.kernel import SimulationError
from repro.sim.parallel.context import ShardContext
from repro.sim.parallel.runtime import ShardServer, shard_process_main
from repro.sim.trace import MergedTrace, merge_traces


class _LocalHandle:
    """In-process shard: requests execute synchronously on send()."""

    def __init__(self, index: int, n_shards: int, builder, host_to_shard, seed):
        self.server = ShardServer(index, n_shards, builder, host_to_shard, seed)
        self._reply: Any = None

    def send(self, msg: tuple) -> None:
        import traceback
        try:
            self._reply = ("ok", self.server.handle(msg))
        except Exception:
            self._reply = ("error", traceback.format_exc())

    def recv(self) -> Any:
        reply, self._reply = self._reply, None
        return reply

    def shutdown(self, force: bool = False) -> None:
        self.server = None


class _ProcessHandle:
    """A shard in its own OS process, reached over a multiprocessing pipe."""

    def __init__(self, index: int, n_shards: int, builder, host_to_shard, seed):
        try:
            mp = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            mp = multiprocessing.get_context()
        parent, child = mp.Pipe()
        self.proc = mp.Process(
            target=shard_process_main,
            args=(index, n_shards, builder, host_to_shard, seed, child),
            name=f"ace-shard-{index}",
            daemon=True,
        )
        self.proc.start()
        child.close()
        self.conn = parent

    def send(self, msg: tuple) -> None:
        self.conn.send(msg)

    def recv(self) -> Any:
        return self.conn.recv()

    def shutdown(self, force: bool = False) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        self.proc.join(timeout=None if not force else 0.5)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=5)


class ShardedSimulator:
    """Drive N kernel shards as one logical simulation.

    Parameters
    ----------
    builder:
        ``builder(ctx: ShardContext) -> Environment``.  Must build the
        *full* topology deterministically in every shard; in process mode
        it must be picklable-by-fork (module-level or closure — the fork
        start method inherits it).
    n_shards:
        Number of kernel shards.  ``1`` runs the unmodified kernel.
    host_to_shard:
        Module-level callable mapping host name -> shard index.  Required
        when ``n_shards > 1``.
    mode:
        ``"process"`` (default) or ``"local"`` (in-process, for tests).
    seed:
        Forwarded to every :class:`ShardContext` (shard-local RNG forks).

    Duck-types the slice of :class:`~repro.sim.kernel.Simulator` that
    :class:`~repro.obs.profiling.ProfileScope` consumes (``now``,
    ``counters()``), so profiling a sharded run needs no special casing.
    """

    def __init__(self, builder: Callable[[ShardContext], Any], *,
                 n_shards: int = 1,
                 host_to_shard: Optional[Callable[[str], int]] = None,
                 mode: str = "process",
                 seed: int = 0):
        if n_shards < 1:
            raise SimulationError(f"n_shards must be >= 1, got {n_shards}")
        if n_shards > 1 and host_to_shard is None:
            raise SimulationError("n_shards > 1 requires a host_to_shard map")
        if mode not in ("process", "local"):
            raise SimulationError(f"unknown shard mode {mode!r}")
        self.builder = builder
        self.n_shards = n_shards
        self.host_to_shard = host_to_shard
        self.mode = mode
        self.seed = seed
        self.lookahead = float("inf")
        self.rounds = 0          # window rounds completed
        self.grants = 0          # window grants sent (rounds * shards)
        self.null_grants = 0     # grants carrying no boundary payload
        self._now = 0.0
        self._handles: List[Any] = []
        self._next: List[float] = []
        #: boundary messages awaiting relay, dst shard -> [msg, ...]
        self._held: Dict[int, List[tuple]] = {}
        self._started = False
        self._closed = False
        self._build_info: List[Dict[str, Any]] = []

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ShardedSimulator":
        if self._started:
            raise SimulationError("ShardedSimulator already started")
        self._started = True
        handle_cls = _ProcessHandle if self.mode == "process" else _LocalHandle
        for i in range(self.n_shards):
            self._handles.append(
                handle_cls(i, self.n_shards, self.builder,
                           self.host_to_shard, self.seed)
            )
        infos = self._request_all(("build",))
        self._build_info = infos
        self._next = [info["next"] for info in infos]
        self.lookahead = min(info["lookahead"] for info in infos)
        if self.n_shards > 1:
            if self.lookahead <= 0.0:
                self._abort()
                raise SimulationError(
                    "zero inter-shard lookahead: hosts in different shards "
                    "share a zero-latency link; adjust the host_to_shard map "
                    "or the link latencies"
                )
            owned = sum(info["hosts_owned"] for info in infos)
            total = infos[0]["hosts_total"]
            if owned != total:
                self._abort()
                raise SimulationError(
                    f"host_to_shard is not a partition: {owned} hosts owned "
                    f"across shards, {total} in the topology"
                )
        return self

    def close(self) -> None:
        """Stop all shards cleanly.  Idempotent."""
        if not self._started or self._closed:
            self._closed = True
            return
        self._closed = True
        for handle in self._handles:
            try:
                handle.send(("stop",))
                handle.recv()
            except Exception:
                pass
        for handle in self._handles:
            handle.shutdown()

    def _abort(self) -> None:
        """Tear down after a failure: no stop round, just reap."""
        self._closed = True
        for handle in self._handles:
            handle.shutdown(force=True)

    def __enter__(self) -> "ShardedSimulator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request plumbing ----------------------------------------------
    def _request_all(self, msg: Optional[tuple],
                     per_shard: Optional[List[tuple]] = None) -> List[Any]:
        """Send to every shard, then collect every reply.

        Sending everything before receiving anything is what lets process
        shards execute a window concurrently.
        """
        for i, handle in enumerate(self._handles):
            try:
                handle.send(msg if per_shard is None else per_shard[i])
            except (OSError, ValueError) as exc:
                self._abort()
                raise SimulationError(f"shard {i} died mid-run ({exc!r})") from None
        out: List[Any] = []
        for i, handle in enumerate(self._handles):
            try:
                reply = handle.recv()
            except (EOFError, OSError) as exc:
                self._abort()
                raise SimulationError(f"shard {i} died mid-run ({exc!r})") from None
            if not reply or reply[0] != "ok":
                detail = reply[1] if reply else "no reply"
                self._abort()
                raise SimulationError(f"shard {i} failed:\n{detail}")
            out.append(reply[1])
        return out

    def _require_started(self) -> None:
        if not self._started:
            raise SimulationError("ShardedSimulator not started (use start() "
                                  "or a with-block)")
        if self._closed:
            raise SimulationError("ShardedSimulator is closed")

    # -- simulation driving --------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    def run(self, until: float) -> int:
        """Advance the whole simulation to ``until`` (inclusive).

        Returns the number of events delivered across all shards.  The
        horizon is mandatory: daemon loops never drain, so an unbounded
        run would not terminate (same contract as ``Simulator.run`` in
        practice everywhere in this repo).
        """
        self._require_started()
        until = float(until)
        if until < self._now:
            raise SimulationError(
                f"cannot run backwards: until={until} < now={self._now}"
            )
        upper = math.nextafter(until, math.inf)
        delivered = 0
        while True:
            horizon = min(self._next)
            for msgs in self._held.values():
                for m in msgs:
                    if m[1] < horizon:
                        horizon = m[1]
            if horizon > until:
                break
            window = horizon + self.lookahead
            if window > upper:
                window = upper
            per_shard: List[tuple] = []
            for i in range(self.n_shards):
                inbox = self._held.pop(i, [])
                if not inbox:
                    self.null_grants += 1
                per_shard.append(("window", window, inbox))
            self.grants += self.n_shards
            reports = self._request_all(None, per_shard)
            self.rounds += 1
            for i, rep in enumerate(reports):
                self._next[i] = rep["next"]
                delivered += rep["delivered"]
                for dst, msgs in rep["outbox"].items():
                    self._held.setdefault(int(dst), []).extend(msgs)
        finals = self._request_all(("advance", until))
        self._next = [f["next"] for f in finals]
        self._now = until
        return delivered

    def run_for(self, duration: float) -> int:
        """Advance by ``duration`` simulated seconds from the current time."""
        return self.run(self._now + float(duration))

    def boot(self, settle: float = 2.0) -> "ShardedSimulator":
        """Boot every shard's environment (tiered, staggered) and settle.

        Mirrors ``Environment.boot(settle)``: the async boot sequence
        spans ``2.25 * settle`` plus sub-millisecond start staggers, so we
        run to ``2.5 * settle + 1.0`` — a fixed horizon, making the
        post-boot clock shard-count invariant.
        """
        self._require_started()
        reports = self._request_all(("boot", float(settle)))
        self._next = [r["next"] for r in reports]
        self.run(self._now + 2.5 * float(settle) + 1.0)
        return self

    def spawn(self, fn: Callable, *args: Any, **kwargs: Any) -> List[Any]:
        """Call ``fn(env, ctx, *args, **kwargs)`` in every shard.

        ``fn`` decides per shard what to start (typically: spawn workload
        processes only for hosts the shard owns).  Must be module-level in
        process mode.  Returns the per-shard results.
        """
        self._require_started()
        reports = self._request_all(("spawn", fn, tuple(args), dict(kwargs)))
        self._next = [r["next"] for r in reports]
        return [r["result"] for r in reports]

    def collect(self, fn: Callable, *args: Any, **kwargs: Any) -> List[Any]:
        """Call ``fn(env, ctx, ...)`` in every shard and gather results."""
        self._require_started()
        reports = self._request_all(("collect", fn, tuple(args), dict(kwargs)))
        return [r["result"] for r in reports]

    # -- observability ---------------------------------------------------
    def shard_reports(self) -> List[Dict[str, Any]]:
        """Raw per-shard telemetry (kernel counters, cpu_s, boundary...)."""
        self._require_started()
        return self._request_all(("counters",))

    def counters(self) -> Dict[str, float]:
        """Aggregated counters, ProfileScope-compatible (flat numerics).

        Kernel counters are summed across shards; ``sync.*`` and
        ``boundary.*`` keys expose the conservative-sync telemetry (null
        messages == payload-free grants, lookahead stalls == windows that
        delivered nothing on a shard).
        """
        reports = self.shard_reports()
        out: Dict[str, float] = {}
        for key in ("events_scheduled", "heap_pushes", "ready_hits",
                    "relays_avoided", "events_delivered"):
            out[key] = sum(r["kernel"].get(key, 0) for r in reports)
        out["sync.shards"] = self.n_shards
        out["sync.windows"] = self.rounds
        out["sync.grants"] = self.grants
        out["sync.null_messages"] = self.null_grants
        out["sync.lookahead_stalls"] = sum(r["lookahead_stalls"] for r in reports)
        out["boundary.msgs_out"] = sum(
            r.get("boundary", {}).get("boundary_msgs_out", 0) for r in reports)
        out["boundary.bytes_out"] = sum(
            r.get("boundary", {}).get("boundary_bytes_out", 0) for r in reports)
        out["boundary.connects"] = sum(
            r.get("boundary", {}).get("boundary_connects", 0) for r in reports)
        return out

    def merged_trace(self) -> MergedTrace:
        """Totally-ordered merge of every shard-local trace (satellite 2)."""
        self._require_started()
        return merge_traces(self._request_all(("trace",)))
