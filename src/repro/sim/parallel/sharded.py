"""Coordinator for the sharded multi-process simulation kernel (E29/E30).

:class:`ShardedSimulator` partitions a simulated network across kernel
shards — OS processes in ``mode="process"``, in-process servers in
``mode="local"`` (same code path, handy for tests) — and keeps them
conservatively synchronized.  Two sync protocols are built in, selected
by the ``sync=`` kwarg (default) or ``ACE_SYNC_LOCKSTEP=1`` (the A/B
control, mirroring the ``ACE_KERNEL_FASTPATH`` pattern):

``sync="demand"`` (default, E30)
    Per-shard, demand-driven grants.  The coordinator assembles a
    **per-pair lookahead matrix** ``L[i][j]`` at build time (min latency
    from shard-*i*-owned hosts to shard-*j*-owned hosts,
    :meth:`~repro.net.boundary.BoundaryNetwork.compute_lookahead_row`);
    shard reports piggyback **earliest-output-time promises** per
    destination shard.  From ``(next_i, held-message floors, L)`` the
    coordinator solves the classic LBTS fixed point

        ``E_j = min(wake_j, min_{k != j}(E_k + L[k][j]))``

    (``wake_j`` = the earliest time shard *j* could execute anything;
    frozen at the dispatch floor while *j* is mid-window) and issues

        ``grant_i = min_{j != i} min(EOT_j[i], E_j + L[j][i])``

    A shard is dispatched **only when it has demand** — an event or a
    pending boundary message strictly inside its grant — so every grant
    delivers at least one event and the classic CMB *null message* (a
    pure-overhead sync message that moves no simulation work) is
    structurally eliminated.  Grants are asynchronous: replies are
    collected with wait-any, so one slow shard no longer barriers the
    rest, and a shard whose horizon advanced is re-dispatched
    immediately.  Boundary messages are batched per (dispatch,
    destination shard).  Windows widen automatically to the full safe
    horizon — when peers are quiescent far into the future the fixed
    point pushes ``grant_i`` out accordingly, which is what the lockstep
    protocol's fixed ``T + lookahead`` window never could.

``sync="lockstep"`` (E29, the control)
    Synchronous send-all/recv-all rounds over one global window
    ``W = min(T + global_lookahead, nextafter(until))`` — kept verbatim
    for A/B benchmarking and trace-equivalence regression.

Safety (both modes): a message posted at local time ``t`` by shard ``j``
arrives at shard ``i`` no earlier than ``t + L[j][i]`` (every send path
computes arrival timestamps that include one full path latency — see
:mod:`repro.net.boundary`).  Since shard ``j`` executes nothing before
``E_j``, no message can land in shard ``i`` before ``grant_i`` — so
processing ``[now, grant_i)`` is safe, and the merged trace is
bit-identical between the two protocols at every shard count
(regression-tested and CI-guarded via ``BENCH_E30.json``).

With one shard the coordinator degenerates to a single window per
``run()`` over the unmodified kernel — bit-identical to ``Simulator.run``
(guarded by the kernel determinism suite).
"""

from __future__ import annotations

import math
import multiprocessing
import os
from multiprocessing import connection as _mpconn
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.registry import Histogram
from repro.sim.kernel import SimulationError
from repro.sim.parallel.context import ShardContext
from repro.sim.parallel.runtime import ShardServer, shard_process_main
from repro.sim.trace import MergedTrace, merge_traces

_INF = float("inf")

#: bucket bounds for the granted-window-width histograms (seconds).
#: Demand-driven grants legitimately span microseconds (tight cross-shard
#: chatter) to whole simulated seconds (quiescent peers), so the buckets
#: run wider than the latency defaults.
WINDOW_WIDTH_BUCKETS: Tuple[float, ...] = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class _LocalHandle:
    """In-process shard: requests execute synchronously on send()."""

    def __init__(self, index: int, n_shards: int, builder, host_to_shard, seed):
        self.server = ShardServer(index, n_shards, builder, host_to_shard, seed)
        self._reply: Any = None

    def send(self, msg: tuple) -> None:
        import traceback
        try:
            self._reply = ("ok", self.server.handle(msg))
        except Exception:
            self._reply = ("error", traceback.format_exc())

    def recv(self) -> Any:
        reply, self._reply = self._reply, None
        return reply

    def shutdown(self, force: bool = False) -> None:
        self.server = None


class _ProcessHandle:
    """A shard in its own OS process, reached over a multiprocessing pipe."""

    def __init__(self, index: int, n_shards: int, builder, host_to_shard, seed):
        try:
            mp = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            mp = multiprocessing.get_context()
        parent, child = mp.Pipe()
        self.proc = mp.Process(
            target=shard_process_main,
            args=(index, n_shards, builder, host_to_shard, seed, child),
            name=f"ace-shard-{index}",
            daemon=True,
        )
        self.proc.start()
        child.close()
        self.conn = parent

    def send(self, msg: tuple) -> None:
        self.conn.send(msg)

    def recv(self) -> Any:
        return self.conn.recv()

    def shutdown(self, force: bool = False) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        self.proc.join(timeout=None if not force else 0.5)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=5)


class ShardedSimulator:
    """Drive N kernel shards as one logical simulation.

    Parameters
    ----------
    builder:
        ``builder(ctx: ShardContext) -> Environment``.  Must build the
        *full* topology deterministically in every shard; in process mode
        it must be picklable-by-fork (module-level or closure — the fork
        start method inherits it).
    n_shards:
        Number of kernel shards.  ``1`` runs the unmodified kernel.
    host_to_shard:
        Module-level callable mapping host name -> shard index.  Required
        when ``n_shards > 1``.
    mode:
        ``"process"`` (default) or ``"local"`` (in-process, for tests).
    seed:
        Forwarded to every :class:`ShardContext` (shard-local RNG forks).
    sync:
        ``"demand"`` (per-shard EOT grants, the default) or
        ``"lockstep"`` (the E29 global-window rounds).  ``None`` reads
        ``ACE_SYNC_LOCKSTEP`` from the environment: ``1`` selects
        lockstep, anything else demand.

    Duck-types the slice of :class:`~repro.sim.kernel.Simulator` that
    :class:`~repro.obs.profiling.ProfileScope` consumes (``now``,
    ``counters()``), so profiling a sharded run needs no special casing.
    """

    def __init__(self, builder: Callable[[ShardContext], Any], *,
                 n_shards: int = 1,
                 host_to_shard: Optional[Callable[[str], int]] = None,
                 mode: str = "process",
                 seed: int = 0,
                 sync: Optional[str] = None):
        if n_shards < 1:
            raise SimulationError(f"n_shards must be >= 1, got {n_shards}")
        if n_shards > 1 and host_to_shard is None:
            raise SimulationError("n_shards > 1 requires a host_to_shard map")
        if mode not in ("process", "local"):
            raise SimulationError(f"unknown shard mode {mode!r}")
        if sync is None:
            sync = ("lockstep"
                    if os.environ.get("ACE_SYNC_LOCKSTEP", "0") == "1"
                    else "demand")
        if sync not in ("demand", "lockstep"):
            raise SimulationError(f"unknown sync protocol {sync!r}")
        self.builder = builder
        self.n_shards = n_shards
        self.host_to_shard = host_to_shard
        self.mode = mode
        self.seed = seed
        self.sync = sync
        self.lookahead = _INF
        #: per-pair lookahead matrix, ``L[i][j]`` = min latency i -> j
        self.lookahead_matrix: List[Dict[int, float]] = []
        self.rounds = 0          # scheduler passes (lockstep: window rounds)
        self.grants = 0          # window grants dispatched
        self.null_grants = 0     # grants that moved no simulation work
        self.payload_free_grants = 0  # grants carrying no boundary payload
        self._now = 0.0
        self._handles: List[Any] = []
        self._next: List[float] = []
        #: latest EOT promise vector per shard, ``{dst: ts}``
        self._eot: List[Dict[int, float]] = []
        #: boundary messages awaiting relay, dst shard -> [msg, ...]
        self._held: Dict[int, List[tuple]] = {}
        self._started = False
        self._closed = False
        self._build_info: List[Dict[str, Any]] = []
        #: per-shard grant counts and granted-window-width histograms
        self._grants_per_shard: List[int] = [0] * n_shards
        self._width_hists: List[Histogram] = [
            Histogram(WINDOW_WIDTH_BUCKETS) for _ in range(n_shards)
        ]

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ShardedSimulator":
        if self._started:
            raise SimulationError("ShardedSimulator already started")
        self._started = True
        handle_cls = _ProcessHandle if self.mode == "process" else _LocalHandle
        for i in range(self.n_shards):
            self._handles.append(
                handle_cls(i, self.n_shards, self.builder,
                           self.host_to_shard, self.seed)
            )
        infos = self._request_all(("build",))
        self._build_info = infos
        self._next = [info["next"] for info in infos]
        self._eot = [dict(info.get("eot") or {}) for info in infos]
        self.lookahead_matrix = [
            {int(j): float(v) for j, v in (info.get("lookahead_row") or {}).items()}
            for info in infos
        ]
        self.lookahead = min(info["lookahead"] for info in infos)
        if self.n_shards > 1:
            if self.lookahead <= 0.0:
                self._abort()
                raise SimulationError(
                    "zero inter-shard lookahead: hosts in different shards "
                    "share a zero-latency link; adjust the host_to_shard map "
                    "or the link latencies"
                )
            owned = sum(info["hosts_owned"] for info in infos)
            total = infos[0]["hosts_total"]
            if owned != total:
                self._abort()
                raise SimulationError(
                    f"host_to_shard is not a partition: {owned} hosts owned "
                    f"across shards, {total} in the topology"
                )
        return self

    def close(self) -> None:
        """Stop all shards cleanly.  Idempotent."""
        if not self._started or self._closed:
            self._closed = True
            return
        self._closed = True
        for handle in self._handles:
            try:
                handle.send(("stop",))
                handle.recv()
            except Exception:
                pass
        for handle in self._handles:
            handle.shutdown()

    def _abort(self) -> None:
        """Tear down after a failure: no stop round, just reap."""
        self._closed = True
        for handle in self._handles:
            handle.shutdown(force=True)

    def __enter__(self) -> "ShardedSimulator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request plumbing ----------------------------------------------
    def _request_all(self, msg: Optional[tuple],
                     per_shard: Optional[List[tuple]] = None) -> List[Any]:
        """Send to every shard, then collect every reply.

        Sending everything before receiving anything is what lets process
        shards execute a window concurrently.
        """
        for i, handle in enumerate(self._handles):
            try:
                handle.send(msg if per_shard is None else per_shard[i])
            except (OSError, ValueError) as exc:
                self._abort()
                raise SimulationError(f"shard {i} died mid-run ({exc!r})") from None
        out: List[Any] = []
        for i, handle in enumerate(self._handles):
            out.append(self._recv_checked(i))
        return out

    def _recv_checked(self, i: int) -> Any:
        """Receive one reply from shard ``i``, turning failures into
        :class:`SimulationError` (and reaping every shard)."""
        try:
            reply = self._handles[i].recv()
        except (EOFError, OSError) as exc:
            self._abort()
            raise SimulationError(f"shard {i} died mid-run ({exc!r})") from None
        if not reply or reply[0] != "ok":
            detail = reply[1] if reply else "no reply"
            self._abort()
            raise SimulationError(f"shard {i} failed:\n{detail}")
        return reply[1]

    def _require_started(self) -> None:
        if not self._started:
            raise SimulationError("ShardedSimulator not started (use start() "
                                  "or a with-block)")
        if self._closed:
            raise SimulationError("ShardedSimulator is closed")

    # -- simulation driving --------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    def run(self, until: float) -> int:
        """Advance the whole simulation to ``until`` (inclusive).

        Returns the number of events delivered across all shards.  The
        horizon is mandatory: daemon loops never drain, so an unbounded
        run would not terminate (same contract as ``Simulator.run`` in
        practice everywhere in this repo).
        """
        self._require_started()
        until = float(until)
        if until < self._now:
            raise SimulationError(
                f"cannot run backwards: until={until} < now={self._now}"
            )
        upper = math.nextafter(until, math.inf)
        if self.sync == "lockstep":
            delivered = self._run_lockstep(until, upper)
        else:
            delivered = self._run_demand(until, upper)
        finals = self._request_all(("advance", until))
        for i, f in enumerate(finals):
            self._next[i] = f["next"]
            self._eot[i] = dict(f.get("eot") or {})
        self._now = until
        return delivered

    def _held_min(self, i: int) -> float:
        """Earliest timestamp among boundary messages held for shard ``i``."""
        msgs = self._held.get(i)
        if not msgs:
            return _INF
        return min(m[1] for m in msgs)

    # -- lockstep (E29, the A/B control) --------------------------------
    def _run_lockstep(self, until: float, upper: float) -> int:
        """Global-window rounds, kept verbatim from E29.

        ``null_grants`` here keeps the E29 accounting — a grant carrying
        no boundary payload — which is exactly the blind-broadcast cost
        the demand protocol eliminates.
        """
        delivered = 0
        while True:
            horizon = min(self._next)
            for msgs in self._held.values():
                for m in msgs:
                    if m[1] < horizon:
                        horizon = m[1]
            if horizon > until:
                break
            window = horizon + self.lookahead
            if window > upper:
                window = upper
            per_shard: List[tuple] = []
            for i in range(self.n_shards):
                inbox = self._held.pop(i, [])
                if not inbox:
                    self.null_grants += 1
                    self.payload_free_grants += 1
                per_shard.append(("window", window, inbox))
                self._grants_per_shard[i] += 1
                self._width_hists[i].observe(window - horizon)
            self.grants += self.n_shards
            reports = self._request_all(None, per_shard)
            self.rounds += 1
            for i, rep in enumerate(reports):
                self._next[i] = rep["next"]
                self._eot[i] = dict(rep.get("eot") or {})
                delivered += rep["delivered"]
                for dst, msgs in rep["outbox"].items():
                    self._held.setdefault(int(dst), []).extend(msgs)
        return delivered

    # -- demand-driven (E30) --------------------------------------------
    def _compute_grants(self, busy: Dict[int, tuple], upper: float) -> List[float]:
        """Per-shard safe horizons from the EOT/lookahead fixed point.

        ``E[j]`` lower-bounds every future *execution* (hence every future
        send-decision) of shard ``j``: its own wake time — ``min(next_j,
        earliest held message)``, frozen at the dispatch floor while the
        shard is mid-window — relaxed by the earliest timestamp a message
        from any peer could wake it at.  With every ``L[k][j] > 0``
        (enforced at :meth:`start`) the relaxation converges in at most
        ``n_shards`` passes: a cycle only adds positive latency.
        """
        n = self.n_shards
        E: List[float] = []
        for j in range(n):
            if j in busy:
                E.append(busy[j][0])  # frozen dispatch floor
            else:
                E.append(min(self._next[j], self._held_min(j)))
        for _ in range(n):
            changed = False
            for j in range(n):
                if j in busy:
                    continue  # the floor already bounds the open window
                best = min(self._next[j], self._held_min(j))
                for k in range(n):
                    if k == j:
                        continue
                    cand = E[k] + self.lookahead_matrix[k].get(j, _INF)
                    if cand < best:
                        best = cand
                if best < E[j]:
                    E[j] = best
                    changed = True
            if not changed:
                break
        grants: List[float] = []
        for i in range(n):
            g = upper
            for j in range(n):
                if j == i:
                    continue
                bound = min(self._eot[j].get(i, _INF),
                            E[j] + self.lookahead_matrix[j].get(i, _INF))
                if bound < g:
                    g = bound
            grants.append(g)
        return grants

    def _run_demand(self, until: float, upper: float) -> int:
        """Asynchronous demand-driven grant loop (the E30 tentpole).

        Each scheduler pass dispatches every idle shard whose wake time —
        an event or a held boundary message — falls strictly inside its
        grant, then waits for *at least one* reply (wait-any in process
        mode), folds the replies in, and recomputes.  Dispatch-on-demand
        means every grant delivers at least one event, so ``null_grants``
        (grants that moved no work) stays at zero by construction; it is
        still counted, as the honest regression signal the E30 benchmark
        guards.
        """
        delivered = 0
        #: shard -> (dispatch floor, had_payload) for in-flight windows
        busy: Dict[int, Tuple[float, bool]] = {}
        while True:
            grants = self._compute_grants(busy, upper)
            for i in range(self.n_shards):
                if i in busy:
                    continue
                wake = min(self._next[i], self._held_min(i))
                if wake > until:
                    continue
                g = grants[i]
                if wake >= g:
                    continue  # no executable demand inside the safe window
                inbox = self._held.pop(i, [])
                try:
                    self._handles[i].send(("window", g, inbox))
                except (OSError, ValueError) as exc:
                    self._abort()
                    raise SimulationError(
                        f"shard {i} died mid-run ({exc!r})") from None
                busy[i] = (wake, bool(inbox))
                self.grants += 1
                self._grants_per_shard[i] += 1
                if not inbox:
                    self.payload_free_grants += 1
                self._width_hists[i].observe(g - wake)
            if not busy:
                pending = [i for i in range(self.n_shards)
                           if min(self._next[i], self._held_min(i)) <= until]
                if not pending:
                    break
                # Unreachable by the progress argument (the module
                # docstring): the earliest-wake shard always receives a
                # grant strictly beyond its wake time.  Fail loudly
                # rather than spin if the invariant is ever broken.
                raise SimulationError(
                    f"conservative sync stalled: shards {pending} have work "
                    f"before t={until} but no grant advances them"
                )
            self.rounds += 1
            for i, rep in self._collect_ready(busy):
                floor, had_payload = busy.pop(i)
                self._next[i] = rep["next"]
                self._eot[i] = dict(rep.get("eot") or {})
                delivered += rep["delivered"]
                if rep["delivered"] == 0 and not had_payload:
                    self.null_grants += 1
                for dst, msgs in rep["outbox"].items():
                    self._held.setdefault(int(dst), []).extend(msgs)
        return delivered

    def _collect_ready(self, busy: Dict[int, Any]) -> List[Tuple[int, Any]]:
        """Replies from at least one busy shard (all of them in local mode,
        whichever pipes are readable in process mode)."""
        out: List[Tuple[int, Any]] = []
        if self.mode == "process":
            conns = {self._handles[i].conn: i for i in busy}
            try:
                ready = _mpconn.wait(list(conns))
            except OSError as exc:
                self._abort()
                raise SimulationError(f"shard pipe failed ({exc!r})") from None
            for conn in ready:
                i = conns[conn]
                out.append((i, self._recv_checked(i)))
        else:
            for i in list(busy):
                out.append((i, self._recv_checked(i)))
        return out

    def run_for(self, duration: float) -> int:
        """Advance by ``duration`` simulated seconds from the current time."""
        return self.run(self._now + float(duration))

    def boot(self, settle: float = 2.0) -> "ShardedSimulator":
        """Boot every shard's environment (tiered, staggered) and settle.

        Mirrors ``Environment.boot(settle)``: the async boot sequence
        spans ``2.25 * settle`` plus sub-millisecond start staggers, so we
        run to ``2.5 * settle + 1.0`` — a fixed horizon, making the
        post-boot clock shard-count invariant.
        """
        self._require_started()
        reports = self._request_all(("boot", float(settle)))
        for i, r in enumerate(reports):
            self._next[i] = r["next"]
            self._eot[i] = dict(r.get("eot") or {})
        self.run(self._now + 2.5 * float(settle) + 1.0)
        return self

    def spawn(self, fn: Callable, *args: Any, **kwargs: Any) -> List[Any]:
        """Call ``fn(env, ctx, *args, **kwargs)`` in every shard.

        ``fn`` decides per shard what to start (typically: spawn workload
        processes only for hosts the shard owns).  Must be module-level in
        process mode.  Returns the per-shard results.
        """
        self._require_started()
        reports = self._request_all(("spawn", fn, tuple(args), dict(kwargs)))
        for i, r in enumerate(reports):
            self._next[i] = r["next"]
            self._eot[i] = dict(r.get("eot") or {})
        return [r["result"] for r in reports]

    def collect(self, fn: Callable, *args: Any, **kwargs: Any) -> List[Any]:
        """Call ``fn(env, ctx, ...)`` in every shard and gather results."""
        self._require_started()
        reports = self._request_all(("collect", fn, tuple(args), dict(kwargs)))
        return [r["result"] for r in reports]

    # -- observability ---------------------------------------------------
    def shard_reports(self) -> List[Dict[str, Any]]:
        """Raw per-shard telemetry (kernel counters, cpu_s, boundary...)."""
        self._require_started()
        return self._request_all(("counters",))

    def counters(self) -> Dict[str, float]:
        """Aggregated counters, ProfileScope-compatible (flat numerics).

        Kernel counters are summed across shards.  ``sync.*`` telemetry:

        * ``sync.rounds`` — scheduler passes (lockstep: window rounds);
          ``sync.windows`` is kept as a compatibility alias.
        * ``sync.grants`` — window grants dispatched.  Lockstep sends one
          per shard per round; demand mode only dispatches shards with
          executable demand, so the two are no longer conflated.
        * ``sync.null_messages`` — grants that moved no simulation work:
          payload-free broadcasts under lockstep (the E29 accounting),
          delivered-nothing dispatches under demand (structurally ~0).
        * ``sync.payload_free_grants`` — grants carrying no boundary
          payload, reported under both protocols for transparency.
        """
        reports = self.shard_reports()
        out: Dict[str, float] = {}
        for key in ("events_scheduled", "heap_pushes", "ready_hits",
                    "relays_avoided", "events_delivered"):
            out[key] = sum(r["kernel"].get(key, 0) for r in reports)
        out["sync.shards"] = self.n_shards
        out["sync.demand"] = 0.0 if self.sync == "lockstep" else 1.0
        out["sync.rounds"] = self.rounds
        out["sync.windows"] = self.rounds
        out["sync.grants"] = self.grants
        out["sync.null_messages"] = self.null_grants
        out["sync.payload_free_grants"] = self.payload_free_grants
        out["sync.lookahead_stalls"] = sum(r["lookahead_stalls"] for r in reports)
        out["boundary.msgs_out"] = sum(
            r.get("boundary", {}).get("boundary_msgs_out", 0) for r in reports)
        out["boundary.bytes_out"] = sum(
            r.get("boundary", {}).get("boundary_bytes_out", 0) for r in reports)
        out["boundary.connects"] = sum(
            r.get("boundary", {}).get("boundary_connects", 0) for r in reports)
        return out

    def sync_report(self) -> Dict[str, Any]:
        """Structured sync telemetry: protocol, totals, and per-shard
        grant counts + granted-window-width histograms (picklable)."""
        return {
            "protocol": self.sync,
            "rounds": self.rounds,
            "grants": self.grants,
            "null_grants": self.null_grants,
            "payload_free_grants": self.payload_free_grants,
            "lookahead": self.lookahead,
            "per_shard": [
                {
                    "grants": self._grants_per_shard[i],
                    "window_width": self._width_hists[i].snapshot(),
                }
                for i in range(self.n_shards)
            ],
        }

    def merged_trace(self) -> MergedTrace:
        """Totally-ordered merge of every shard-local trace (satellite 2)."""
        self._require_started()
        return merge_traces(self._request_all(("trace",)))
