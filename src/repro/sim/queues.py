"""Inter-process message queues for the simulation kernel.

ACE daemons talk to their four logical threads over message queues (§2.1.1
of the paper); :class:`Store` is that primitive.  A ``put`` never blocks
(queues are unbounded unless a capacity is given), a ``get`` yields an event
that fires when an item is available.  FIFO delivery order is guaranteed
among waiters and items, which keeps traces deterministic.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Optional

from repro.sim.kernel import Event, SimulationError, Simulator, URGENT


class QueueClosed(Exception):
    """Raised to getters when a queue is closed and drained."""

    def __init__(self, name: str = ""):
        super().__init__(f"queue {name!r} closed")
        self.name = name


class Store:
    """Unbounded (or capacity-bounded) FIFO of arbitrary items."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: Any) -> Event:
        """Deposit ``item``; returns an event (immediate unless at capacity)."""
        if self._closed:
            ev = Event(self.sim)
            ev.defuse()
            ev.fail(QueueClosed(self.name), priority=URGENT)
            return ev
        ev = Event(self.sim)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item, priority=URGENT)
            ev.succeed(priority=URGENT)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(priority=URGENT)
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if at capacity or closed."""
        if self._closed:
            return False
        if self._getters:
            self._getters.popleft().succeed(item, priority=URGENT)
            return True
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        return True

    def get(self) -> Event:
        """Yieldable event that fires with the next item."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft(), priority=URGENT)
            self._admit_putter()
        elif self._closed:
            ev.defuse()
            ev.fail(QueueClosed(self.name), priority=URGENT)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns ``(found, item)``."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def close(self) -> None:
        """Close the queue: pending getters fail, future puts fail.

        The failure events are defused: a waiter that was interrupted away
        before the close must not crash the simulator with an unhandled
        QueueClosed (live waiters still receive the exception normally).
        """
        if self._closed:
            return
        self._closed = True
        while self._getters:
            ev = self._getters.popleft()
            ev.defuse()
            ev.fail(QueueClosed(self.name), priority=URGENT)
        while self._putters:
            ev, _item = self._putters.popleft()
            ev.defuse()
            ev.fail(QueueClosed(self.name), priority=URGENT)

    def _admit_putter(self) -> None:
        if self._putters:
            ev, item = self._putters.popleft()
            self._items.append(item)
            ev.succeed(priority=URGENT)


class PriorityStore(Store):
    """A store that hands out the smallest item first.

    Items must be orderable; ties are broken by insertion order (a stable
    sequence number keeps the heap deterministic).
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        super().__init__(sim, capacity, name)
        self._pq: list[tuple[Any, int, Any]] = []
        self._counter = 0

    def __len__(self) -> int:
        return len(self._pq)

    def put(self, item: Any) -> Event:
        if self._closed:
            ev = Event(self.sim)
            ev.defuse()
            ev.fail(QueueClosed(self.name), priority=URGENT)
            return ev
        ev = Event(self.sim)
        if self._getters:
            # A waiter exists and the heap is empty (invariant), so the new
            # item is trivially the minimum: hand it straight over.
            self._getters.popleft().succeed(item, priority=URGENT)
        else:
            self._push(item)
        ev.succeed(priority=URGENT)
        return ev

    def try_put(self, item: Any) -> bool:
        if self._closed:
            return False
        if self._getters:
            self._getters.popleft().succeed(item, priority=URGENT)
        else:
            self._push(item)
        return True

    def get(self) -> Event:
        ev = Event(self.sim)
        if self._pq:
            ev.succeed(self._pop(), priority=URGENT)
        elif self._closed:
            ev.defuse()
            ev.fail(QueueClosed(self.name), priority=URGENT)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        if self._pq:
            return True, self._pop()
        return False, None

    def _push(self, item: Any) -> None:
        self._counter += 1
        heapq.heappush(self._pq, (item, self._counter, item))

    def _pop(self) -> Any:
        return heapq.heappop(self._pq)[2]
