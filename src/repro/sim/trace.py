"""Structured event tracing.

Scenario experiments (E12–E15) reproduce the paper's step-by-step figures
(Figs. 9, 18, 19) by emitting a :class:`TraceRecord` per protocol step and
then asserting the ordering/latency of the trace.  The recorder is a plain
append-only log — cheap enough to leave on everywhere.

Sharded runs (E29)
------------------
A sharded simulation produces one shard-local trace per kernel process.
:func:`merge_traces` folds them into a single totally-ordered stream keyed
``(time, priority, seq, shard)`` — ``seq`` being the record's position in
its shard-local log, a faithful stand-in for the kernel sequence number
since records are appended in delivery order.  Consumers that hash a trace
for determinism checks must use :func:`canonical_trace_hash`, which sorts
records by *content* at equal timestamps: same-instant records may be
delivered in different relative order on different shard counts (they live
in different kernels), but the set of records is invariant.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped step: who did what, with free-form detail."""

    time: float
    source: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:12.6f}] {self.source:<24} {self.kind} {extras}".rstrip()


class TraceRecorder:
    """Append-only trace log with simple query helpers."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.records: List[TraceRecord] = []

    def emit(self, time: float, source: str, kind: str, **detail: Any) -> None:
        if self.enabled:
            self.records.append(TraceRecord(time, source, kind, detail))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def filter(self, kind: Optional[str] = None, source: Optional[str] = None) -> List[TraceRecord]:
        """Records matching the given kind and/or source."""
        out = self.records
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if source is not None:
            out = [r for r in out if r.source == source]
        return list(out)

    def first(self, kind: str) -> Optional[TraceRecord]:
        for rec in self.records:
            if rec.kind == kind:
                return rec
        return None

    def last(self, kind: str) -> Optional[TraceRecord]:
        for rec in reversed(self.records):
            if rec.kind == kind:
                return rec
        return None

    def span(self, start_kind: str, end_kind: str) -> Optional[float]:
        """Elapsed time from the first ``start_kind`` to the last ``end_kind``."""
        start = self.first(start_kind)
        end = self.last(end_kind)
        if start is None or end is None:
            return None
        return end.time - start.time

    def between(self, t0: float, t1: float) -> List[TraceRecord]:
        """Records with ``t0 <= time < t1`` (metrics-window queries)."""
        return [r for r in self.records if t0 <= r.time < t1]

    def kinds(self) -> List[str]:
        """Kinds in first-occurrence order (useful for step-order asserts)."""
        seen: List[str] = []
        for rec in self.records:
            if rec.kind not in seen:
                seen.append(rec.kind)
        return seen

    def clear(self) -> None:
        self.records.clear()


@dataclass(frozen=True)
class MergedTraceRecord(TraceRecord):
    """A trace record annotated with its shard-local merge key."""

    shard: int = 0
    seq: int = 0
    priority: int = 1  # NORMAL; records carry no kernel priority today

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"{TraceRecord.__str__(self)} [s{self.shard}#{self.seq}]"


class MergedTrace(TraceRecorder):
    """A read-only, totally-ordered view over shard-local traces.

    Subclasses :class:`TraceRecorder` so every consumer using the query
    helpers (``filter``/``first``/``span``/``kinds``/...) works unchanged
    on a merged stream.  ``emit`` is disabled — the merge is a snapshot.
    """

    def __init__(self, records: Iterable[TraceRecord]):
        super().__init__(enabled=False)
        self.records = list(records)

    def hash(self) -> str:
        """Shard-count-invariant content hash (see module docstring)."""
        return canonical_trace_hash(self.records)


def merge_traces(shard_logs: Sequence[Iterable[TraceRecord]]) -> MergedTrace:
    """Merge per-shard trace logs into one totally-ordered stream.

    The total order is ``(time, priority, seq, shard)``: within one shard,
    records already appear in kernel delivery order (their log position is
    the ``seq`` key); across shards, equal-time records are ordered by the
    shard index as the final deterministic tiebreak.
    """
    merged: List[MergedTraceRecord] = []
    for shard, log in enumerate(shard_logs):
        for seq, rec in enumerate(log):
            merged.append(
                MergedTraceRecord(
                    time=rec.time, source=rec.source, kind=rec.kind,
                    detail=rec.detail, shard=shard, seq=seq,
                    priority=getattr(rec, "priority", 1),
                )
            )
    merged.sort(key=lambda r: (r.time, r.priority, r.seq, r.shard))
    return MergedTrace(merged)


def _canonical_value(value: Any) -> str:
    """A stable, order-normalized string form for trace detail values."""
    if isinstance(value, dict):
        inner = ",".join(
            f"{_canonical_value(k)}:{_canonical_value(value[k])}"
            for k in sorted(value, key=str)
        )
        return "{" + inner + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical_value(v) for v in value) + "]"
    if isinstance(value, float):
        return repr(value)
    return repr(value)


def canonical_trace_hash(records: Iterable[TraceRecord]) -> str:
    """Content hash of a trace that is invariant to same-time reordering.

    Records are serialized as ``time|source|kind|detail`` lines and sorted
    before hashing, so two runs producing the *same set* of records — even
    if equal-timestamp records were delivered in different relative order
    (the only freedom a sharded run has) — hash identically.  Any change
    in record content or timing changes the hash.
    """
    lines = sorted(
        f"{rec.time!r}|{rec.source}|{rec.kind}|{_canonical_value(rec.detail)}"
        for rec in records
    )
    digest = hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()
    return digest


def diff_traces(a: Iterable[TraceRecord], b: Iterable[TraceRecord],
                limit: int = 10) -> List[str]:
    """First records present in one trace but not the other.

    The debugging companion to :func:`canonical_trace_hash`: when two
    runs that should be equivalent hash differently, this names the
    earliest diverging records (``-`` only in ``a``, ``+`` only in ``b``)
    instead of leaving the investigator with two opaque digests.
    Comparison is by canonical content line, so same-time reordering —
    the freedom the hash grants — never shows up as a difference.
    """
    def lines(records: Iterable[TraceRecord]) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for rec in records:
            key = (f"{rec.time!r}|{rec.source}|{rec.kind}|"
                   f"{_canonical_value(rec.detail)}")
            counts[key] = counts.get(key, 0) + 1
        return counts

    ca, cb = lines(a), lines(b)
    out: List[str] = []
    for key in sorted(set(ca) | set(cb)):
        delta = ca.get(key, 0) - cb.get(key, 0)
        if delta > 0:
            out.extend([f"- {key}"] * delta)
        elif delta < 0:
            out.extend([f"+ {key}"] * (-delta))
        if len(out) >= limit:
            break
    return out[:limit]
