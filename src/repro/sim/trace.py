"""Structured event tracing.

Scenario experiments (E12–E15) reproduce the paper's step-by-step figures
(Figs. 9, 18, 19) by emitting a :class:`TraceRecord` per protocol step and
then asserting the ordering/latency of the trace.  The recorder is a plain
append-only log — cheap enough to leave on everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped step: who did what, with free-form detail."""

    time: float
    source: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:12.6f}] {self.source:<24} {self.kind} {extras}".rstrip()


class TraceRecorder:
    """Append-only trace log with simple query helpers."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.records: List[TraceRecord] = []

    def emit(self, time: float, source: str, kind: str, **detail: Any) -> None:
        if self.enabled:
            self.records.append(TraceRecord(time, source, kind, detail))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def filter(self, kind: Optional[str] = None, source: Optional[str] = None) -> List[TraceRecord]:
        """Records matching the given kind and/or source."""
        out = self.records
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if source is not None:
            out = [r for r in out if r.source == source]
        return list(out)

    def first(self, kind: str) -> Optional[TraceRecord]:
        for rec in self.records:
            if rec.kind == kind:
                return rec
        return None

    def last(self, kind: str) -> Optional[TraceRecord]:
        for rec in reversed(self.records):
            if rec.kind == kind:
                return rec
        return None

    def span(self, start_kind: str, end_kind: str) -> Optional[float]:
        """Elapsed time from the first ``start_kind`` to the last ``end_kind``."""
        start = self.first(start_kind)
        end = self.last(end_kind)
        if start is None or end is None:
            return None
        return end.time - start.time

    def between(self, t0: float, t1: float) -> List[TraceRecord]:
        """Records with ``t0 <= time < t1`` (metrics-window queries)."""
        return [r for r in self.records if t0 <= r.time < t1]

    def kinds(self) -> List[str]:
        """Kinds in first-occurrence order (useful for step-order asserts)."""
        seen: List[str] = []
        for rec in self.records:
            if rec.kind not in seen:
                seen.append(rec.kind)
        return seen

    def clear(self) -> None:
        self.records.clear()
