"""Declarative fault schedules for chaos experiments.

A :class:`FaultPlan` is an ordered list of :class:`FaultSpec` entries, each
saying *what* breaks, *when* (seconds after the controller starts), and for
*how long*.  Plans are pure data — building one touches nothing; the
:class:`~repro.faults.controller.ChaosController` schedules the actual
injections on the simulation kernel.

Five composable fault kinds cover the paper's clean failures plus the two
gray-failure modes the reliability machinery cannot see:

* ``crash`` — host crash, optional restart (+ relaunch hook for daemons);
* ``partition`` — split the network into groups, heal after a while;
* ``loss`` — a burst of elevated i.i.d. datagram loss;
* ``degrade`` — a host's networking slows by latency/bandwidth multipliers
  while its leases keep renewing (gray failure);
* ``flaky`` — time-varying message loss on one host pair, applied to
  streams too (gray failure: TCP stalls, nothing ever refuses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: kind, start offset, duration, and parameters."""

    kind: str
    at: float
    duration: Optional[float] = None
    params: Tuple = ()

    @property
    def until(self) -> float:
        """Offset at which this fault has fully healed."""
        return self.at + (self.duration or 0.0)


@dataclass
class FaultPlan:
    """A composable schedule of faults, built fluently::

        plan = (FaultPlan()
                .degrade_host("svc1", at=10, duration=15, latency_mult=2000)
                .flaky_link("users", "svc1", at=25, duration=10, peak_loss=0.9)
                .crash_host("svc2", at=35, restart_after=7))
    """

    specs: List[FaultSpec] = field(default_factory=list)

    def _add(self, spec: FaultSpec) -> "FaultPlan":
        if spec.at < 0:
            raise ValueError(f"fault start offset must be >= 0, got {spec.at}")
        if spec.duration is not None and spec.duration <= 0:
            raise ValueError(f"fault duration must be positive, got {spec.duration}")
        self.specs.append(spec)
        return self

    # -- clean failures (the modes §5.2–5.3 already recovers from) ---------
    def crash_host(
        self,
        host: str,
        at: float,
        restart_after: Optional[float] = None,
        relaunch: Optional[Callable[[], None]] = None,
    ) -> "FaultPlan":
        """Crash ``host``; optionally restart it ``restart_after`` seconds
        later, invoking ``relaunch()`` (e.g. to re-start its daemons)."""
        return self._add(FaultSpec("crash", at, restart_after, (host, relaunch)))

    def kill_daemon(
        self,
        name: str,
        at: float,
        kill: Optional[Callable[[], None]] = None,
    ) -> "FaultPlan":
        """Abruptly kill one daemon (not its host): no deregistration, no
        lease release — the supervision plane's detection target.  ``kill``
        overrides the default action (the controller's daemon lookup +
        ``.kill()``); the lookup resolves at fire time, so killing the same
        name twice hits the *latest* incarnation."""
        return self._add(FaultSpec("kill", at, None, (name, kill)))

    def partition(
        self, groups: Sequence[Sequence[str]], at: float, heal_after: float
    ) -> "FaultPlan":
        """Split the network into ``groups``; heal after ``heal_after`` s."""
        frozen = tuple(tuple(g) for g in groups)
        return self._add(FaultSpec("partition", at, heal_after, (frozen,)))

    def loss_burst(self, rate: float, at: float, duration: float) -> "FaultPlan":
        """Raise the i.i.d. datagram loss rate to ``rate`` for ``duration`` s."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        return self._add(FaultSpec("loss", at, duration, (rate,)))

    # -- gray failures (the new modes) -------------------------------------
    def degrade_host(
        self,
        host: str,
        at: float,
        duration: float,
        latency_mult: float = 1.0,
        bandwidth_mult: float = 1.0,
    ) -> "FaultPlan":
        """Slow ``host``'s networking by the given multipliers — it stays
        up, keeps renewing leases, and only deadlines notice."""
        for label, mult in (("latency_mult", latency_mult), ("bandwidth_mult", bandwidth_mult)):
            if mult < 1.0:
                raise ValueError(f"{label} must be >= 1.0, got {mult}")
        return self._add(
            FaultSpec("degrade", at, duration, (host, latency_mult, bandwidth_mult))
        )

    def flaky_link(
        self,
        a: str,
        b: str,
        at: float,
        duration: float,
        peak_loss: float,
        steps: int = 8,
        profile: str = "triangle",
    ) -> "FaultPlan":
        """Time-varying loss on the ``a``–``b`` link (streams included).

        ``profile`` shapes loss over the window: ``"triangle"`` ramps up to
        ``peak_loss`` at the midpoint and back down (the classic slow-onset
        gray failure); ``"constant"`` holds ``peak_loss`` throughout.
        """
        if not 0.0 < peak_loss <= 1.0:
            raise ValueError(f"peak loss must be in (0, 1], got {peak_loss}")
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        if profile not in ("triangle", "constant"):
            raise ValueError(f"unknown loss profile {profile!r}")
        return self._add(
            FaultSpec("flaky", at, duration, (a, b, peak_loss, steps, profile))
        )

    # -- inspection --------------------------------------------------------
    @property
    def end_offset(self) -> float:
        """Offset by which every scheduled fault has healed."""
        return max((spec.until for spec in self.specs), default=0.0)

    def ordered(self) -> List[FaultSpec]:
        return sorted(self.specs, key=lambda s: (s.at, s.kind))

    def __len__(self) -> int:
        return len(self.specs)


def flaky_loss_at(
    peak_loss: float, steps: int, profile: str, step_index: int
) -> float:
    """Loss level for step ``step_index`` of a flaky-link window."""
    if profile == "constant" or steps == 1:
        return peak_loss
    # Triangle: ramp up to the peak at the window midpoint, then back down;
    # sampled at step centres so the first/last steps are small but nonzero.
    centre = 2.0 * (step_index + 0.5) / steps - 1.0  # in (-1, 1)
    return peak_loss * (1.0 - abs(centre))
