"""Fault injection for chaos experiments (gray failures included).

Build a :class:`FaultPlan` declaratively, then hand it to a
:class:`ChaosController` to execute on the simulation kernel::

    plan = (FaultPlan()
            .degrade_host("svc1", at=10, duration=15, latency_mult=2000)
            .flaky_link("users", "svc1", at=25, duration=10, peak_loss=0.9)
            .crash_host("svc2", at=35, restart_after=7))
    ChaosController(env.net, plan).start()

The resilient RPC layer (:mod:`repro.core.policy`) is the counterpart:
these faults are what its deadlines, retries, and breakers are measured
against in the chaos experiment (``benchmarks/bench_chaos.py``).
"""

from repro.faults.controller import ChaosController
from repro.faults.plan import FaultPlan, FaultSpec, flaky_loss_at

__all__ = [
    "ChaosController",
    "FaultPlan",
    "FaultSpec",
    "flaky_loss_at",
]
