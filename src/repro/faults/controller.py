"""The chaos controller: executes a :class:`~repro.faults.plan.FaultPlan`.

The controller turns a declarative plan into simulation processes — one per
fault — that apply the fault at its start offset, hold it for its duration,
and revert it.  Everything is deterministic: the only randomness (which
messages a flaky link drops) comes from the network's seeded loss stream.

Every injection and heal is emitted on the trace recorder (kinds
``fault-*``), so experiments can line availability timelines up against
the schedule.
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from repro.net import Network

from repro.faults.plan import FaultPlan, FaultSpec, flaky_loss_at


class ChaosController:
    """Drives one fault plan against one network.

    Usage::

        controller = ChaosController(net, plan)
        controller.start()          # offsets are relative to this moment
        sim.run(until=...)          # faults fire as the clock passes them
    """

    def __init__(self, net: Network, plan: FaultPlan, daemons=None):
        self.net = net
        self.sim = net.sim
        self.plan = plan
        #: daemon lookup for ``kill`` faults: a dict (e.g. ``env.daemons``,
        #: consulted live so reincarnations are found) or a ``name ->
        #: daemon`` callable
        self.daemons = daemons
        self.started_at: float = 0.0
        #: (sim_time, description) log of applied/healed faults
        self.history: List[Tuple[float, str]] = []
        self._active = 0

    @property
    def active_faults(self) -> int:
        return self._active

    def start(self) -> "ChaosController":
        """Schedule every fault in the plan, offsets relative to *now*."""
        self.started_at = self.sim.now
        for spec in self.plan.ordered():
            self.sim.process(self._run_spec(spec), name=f"chaos.{spec.kind}@{spec.at}")
        return self

    # ------------------------------------------------------------------
    def _note(self, event: str, spec: FaultSpec, **detail) -> None:
        self.history.append((self.sim.now, f"{event}:{spec.kind}"))
        self.net.trace.emit(self.sim.now, "chaos", f"fault-{event}",
                            fault=spec.kind, **detail)

    def _run_spec(self, spec: FaultSpec) -> Generator:
        yield self.sim.timeout(spec.at)
        handler = getattr(self, f"_run_{spec.kind}")
        self._active += 1
        try:
            yield from handler(spec)
        finally:
            self._active -= 1

    # -- kind handlers -----------------------------------------------------
    def _run_crash(self, spec: FaultSpec) -> Generator:
        host, relaunch = spec.params
        self.net.crash_host(host)
        self._note("inject", spec, host=host)
        if spec.duration is None:
            return
        yield self.sim.timeout(spec.duration)
        self.net.restart_host(host)
        if relaunch is not None:
            relaunch()
        self._note("heal", spec, host=host)

    def _run_kill(self, spec: FaultSpec) -> Generator:
        name, kill = spec.params
        if kill is None:
            daemon = self._find_daemon(name)
            if daemon is None:
                self._note("skip", spec, daemon=name)
                return
            kill = daemon.kill
        kill()
        self._note("inject", spec, daemon=name)
        return
        yield  # pragma: no cover — keeps this handler a generator

    def _find_daemon(self, name: str):
        if self.daemons is None:
            return None
        if callable(self.daemons):
            return self.daemons(name)
        return self.daemons.get(name)

    def _run_partition(self, spec: FaultSpec) -> Generator:
        (groups,) = spec.params
        self.net.set_partition(groups)
        self._note("inject", spec, groups=len(groups))
        if spec.duration is None:
            return
        yield self.sim.timeout(spec.duration)
        self.net.clear_partition()
        self._note("heal", spec)

    def _run_loss(self, spec: FaultSpec) -> Generator:
        (rate,) = spec.params
        previous = self.net.loss_rate
        self.net.loss_rate = rate
        self._note("inject", spec, rate=rate)
        yield self.sim.timeout(spec.duration or 0.0)
        self.net.loss_rate = previous
        self._note("heal", spec)

    def _run_degrade(self, spec: FaultSpec) -> Generator:
        host_name, latency_mult, bandwidth_mult = spec.params
        host = self.net.host(host_name)
        host.degrade(latency_mult=latency_mult, bandwidth_mult=bandwidth_mult)
        self._note("inject", spec, host=host_name,
                   latency_mult=latency_mult, bandwidth_mult=bandwidth_mult)
        yield self.sim.timeout(spec.duration or 0.0)
        host.restore_performance()
        self._note("heal", spec, host=host_name)

    def _run_flaky(self, spec: FaultSpec) -> Generator:
        a, b, peak_loss, steps, profile = spec.params
        duration = spec.duration or 0.0
        step_time = duration / steps
        self._note("inject", spec, a=a, b=b, peak_loss=peak_loss)
        for index in range(steps):
            self.net.set_link_fault(a, b, flaky_loss_at(peak_loss, steps, profile, index))
            yield self.sim.timeout(step_time)
        self.net.clear_link_fault(a, b)
        self._note("heal", spec, a=a, b=b)
