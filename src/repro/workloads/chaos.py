"""Closed-loop workload for chaos experiments (the E21 driver).

A population of clients issues request → reply → think against a primary
service, failing over to an optional secondary, while a
:class:`~repro.faults.ChaosController` breaks things underneath them.  Two
modes share the same traffic shape so runs are comparable:

* **resilient** — calls go through
  :meth:`~repro.core.client.ServiceClient.call_resilient` (deadline,
  retries, circuit breaker);
* **naive** — calls use plain ``call_once`` with no deadline, the
  pre-policy behaviour: a stalled stream hangs the client forever.

Every completed call is timestamped into an
:class:`~repro.metrics.AvailabilityRecorder`; calls still in flight when
the run ends are counted as **hung** — the headline difference between the
two modes under gray failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.lang import ACECmdLine
from repro.core.client import RETRYABLE, CallError, ServiceClient
from repro.core.policy import BreakerOpen, CallPolicy
from repro.metrics import AvailabilityRecorder
from repro.net import Address, ConnectionClosed, ConnectionRefused

#: Anything that should push a call to the secondary target.
_FAILOVER = (ConnectionRefused, ConnectionClosed) + RETRYABLE + (BreakerOpen,)


@dataclass(frozen=True)
class CallRecord:
    """One completed (or cleanly failed) client call."""

    client: int
    start: float
    elapsed: float
    ok: bool
    error: str = ""


@dataclass
class ChaosRunResult:
    """Everything a chaos experiment needs to assert its recovery shape."""

    started_at: float
    ended_at: float
    records: List[CallRecord] = field(default_factory=list)
    availability: AvailabilityRecorder = field(default_factory=AvailabilityRecorder)
    #: calls still in flight when the run ended (never completed, never
    #: failed — the unbounded-hang signature of the naive mode)
    hung: int = 0

    @property
    def completed(self) -> int:
        return len(self.records)

    @property
    def delivered(self) -> int:
        return sum(1 for r in self.records if r.ok)

    def delivered_between(self, t0: float, t1: float) -> int:
        return sum(1 for r in self.records if r.ok and t0 <= r.start < t1)

    def availability_between(self, t0: float, t1: float) -> float:
        return self.availability.availability_between(t0, t1)

    def latencies(self, only_ok: bool = True) -> List[float]:
        return sorted(
            r.elapsed for r in self.records if r.ok or not only_ok
        )

    def latency_percentile(self, q: float, only_ok: bool = True) -> float:
        """Percentile (``q`` in [0, 100]) of recorded call latencies."""
        values = self.latencies(only_ok)
        if not values:
            return 0.0
        index = min(len(values) - 1, int(round(q / 100.0 * (len(values) - 1))))
        return values[index]

    @property
    def max_elapsed(self) -> float:
        return max((r.elapsed for r in self.records), default=0.0)


def run_chaos_workload(
    env,
    *,
    n_clients: int,
    duration: float,
    primary: Address,
    secondary: Optional[Address] = None,
    make_command: Optional[Callable[[int, int], ACECmdLine]] = None,
    policy: Optional[CallPolicy] = None,
    resilient: bool = True,
    think_time: float = 0.2,
    client_host_name: Optional[str] = None,
    bucket: float = 1.0,
    grace: float = 5.0,
) -> ChaosRunResult:
    """Drive ``n_clients`` closed-loop clients for ``duration`` sim-seconds.

    ``make_command(client_index, iteration)`` builds each request (default:
    an ``echo``).  The sim is run to ``duration + grace`` so late replies
    and backoffs drain; whatever is *still* in flight then counts as hung.
    """
    sim = env.sim
    start_at = sim.now
    stop_at = start_at + duration
    host = (
        env.net.host(client_host_name)
        if client_host_name
        else env.net.hosts[sorted(env.net.hosts)[0]]
    )
    make_command = make_command or (
        lambda i, k: ACECmdLine("echo", text=f"chaos.{i}.{k}")
    )
    think_rng = env.rng.py("workload.chaos.think")
    result = ChaosRunResult(
        started_at=start_at,
        ended_at=stop_at,
        availability=AvailabilityRecorder(bucket=bucket),
    )
    in_flight: Dict[Tuple[int, int], float] = {}

    def call_target(client: ServiceClient, target: Address, command: ACECmdLine) -> Generator:
        if resilient:
            reply = yield from client.call_resilient(target, command, policy=policy)
        else:
            reply = yield from client.call_once(target, command)
        return reply

    def one_call(client: ServiceClient, index: int, iteration: int) -> Generator:
        command = make_command(index, iteration)
        targets = [primary] + ([secondary] if secondary is not None else [])
        error = ""
        ok = False
        for target in targets:
            try:
                yield from call_target(client, target, command)
                ok = True
                break
            except _FAILOVER as exc:
                error = type(exc).__name__
            except CallError as exc:  # cmdFailed: service answered, no failover
                error = type(exc).__name__
                break
        return ok, error

    def one_client(index: int) -> Generator:
        client = ServiceClient(env.ctx, host, principal=f"chaos-{index}")
        iteration = 0
        while sim.now < stop_at:
            key = (index, iteration)
            t0 = sim.now
            in_flight[key] = t0
            ok, error = yield from one_call(client, index, iteration)
            del in_flight[key]
            now = sim.now
            result.records.append(
                CallRecord(index, t0, now - t0, ok, error)
            )
            result.availability.record(now, ok)
            iteration += 1
            delay = (
                think_rng.expovariate(1.0 / think_time) if think_time > 0 else 0.0
            )
            yield sim.timeout(delay)

    for i in range(n_clients):
        sim.process(one_client(i), name=f"chaos-client-{i}")
    sim.run(until=stop_at + grace)
    result.ended_at = sim.now
    result.hung = len(in_flight)
    return result
