"""Population-scale workload generator (E29).

Scales the E18 "hundreds of users" session mix to tens of thousands by
separating *who arrives when* from *what a session does*:

* :func:`generate_arrivals` draws an arrival schedule from a single root
  RNG stream (``population.arrivals``) via thinning against a rate curve
  — homogeneous Poisson, two-state MMPP, or a diurnal sinusoid — with an
  optional flash crowd (the E28 shape: a hard rate multiplier plus
  frantic think times inside the window).
* each arrival becomes a per-user session FSM on its home region's
  client host, looking services up in the regional directory, listing
  users in the regional AUD, and occasionally *roaming* to another
  region (cross-shard traffic in a sharded run).

Sharding contract: the schedule is computed identically in every shard
from the same root stream, and each shard spawns only the sessions whose
home client host it owns.  Every random draw a session makes comes from
its own ``population.user.<uid>`` stream, so draw sequences are
shard-count invariant (regression-tested).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Generator, List, Optional, Tuple

from repro.lang import ACECmdLine
from repro.core.client import CallError, ServiceClient
from repro.metrics import LatencyRecorder
from repro.net import ConnectionClosed, ConnectionRefused
from repro.obs.registry import Histogram

_MASK64 = (1 << 64) - 1


class CompactUserRng:
    """A per-session generator costing tens of bytes, not kilobytes.

    ``random.Random`` carries a ~2.5 KB Mersenne state; one per user is
    a quarter gigabyte at 100k users before a single event runs.  This
    xorshift64* generator holds one 64-bit word and implements exactly
    the draws a session FSM makes.  Seeded through
    :meth:`~repro.sim.rng.RngRegistry.derive_seed`, so sequences stay
    deterministic in ``(seed, stream-name)`` — just from a different
    (documented) generator family than the standard streams, which is
    why it is opt-in per profile (``compact_sessions``) rather than a
    global swap that would shift every pinned trace hash.
    """

    __slots__ = ("_s",)

    def __init__(self, seed: int):
        self._s = (seed ^ 0x9E3779B97F4A7C15) & _MASK64 or 0x9E3779B97F4A7C15

    def random(self) -> float:
        """Uniform in [0, 1) with 53 random bits (xorshift64*)."""
        s = self._s
        s ^= s >> 12
        s ^= (s << 25) & _MASK64
        s ^= s >> 27
        self._s = s
        return (((s * 2685821657736338717) & _MASK64) >> 11) * (2.0 ** -53)

    def expovariate(self, lambd: float) -> float:
        return -math.log(1.0 - self.random()) / lambd

    def randrange(self, n: int) -> int:
        value = int(self.random() * n)
        return value if value < n else n - 1


class HistogramRecorder:
    """Duck-types the slice of :class:`~repro.metrics.LatencyRecorder`
    the population workload uses, but folds observations into a
    fixed-bucket digest — bounded memory regardless of op count (the
    100k rung records hundreds of thousands of latencies)."""

    __slots__ = ("hist",)

    def __init__(self) -> None:
        self.hist = Histogram()

    def record(self, elapsed: float) -> None:
        self.hist.observe(float(elapsed))

    @property
    def samples(self) -> list:
        return []

    def snapshot(self) -> dict:
        return self.hist.snapshot()

    def __len__(self) -> int:
        return self.hist.count


@dataclass(frozen=True)
class PopulationProfile:
    """Everything that defines a population run.  Picklable on purpose."""

    n_users: int
    duration: float
    #: arrival process: "poisson", "mmpp", or "diurnal"
    process: str = "poisson"
    #: arrivals land inside [0, arrival_window); None = duration / 2
    arrival_window: Optional[float] = None
    # -- MMPP (two-state) ------------------------------------------------
    mmpp_low: float = 0.4        # relative rate in the quiet state
    mmpp_high: float = 2.5       # relative rate in the bursty state
    mmpp_mean_low: float = 8.0   # mean seconds spent quiet
    mmpp_mean_high: float = 2.0  # mean seconds spent bursty
    # -- diurnal sinusoid ------------------------------------------------
    diurnal_amplitude: float = 0.8
    diurnal_period: Optional[float] = None  # None = arrival window
    # -- flash crowd (E28 shape) ----------------------------------------
    flash_at: Optional[float] = None
    flash_duration: float = 0.0
    flash_multiplier: float = 7.0
    flash_think_divisor: float = 10.0
    # -- session behaviour ----------------------------------------------
    think_time: float = 1.0
    roam_fraction: float = 0.1
    # -- population-scale memory trim (E30, the 100k rung) ---------------
    #: spawn sessions from one pump process at their arrival times
    #: instead of pre-creating every generator (and its heap entry) up
    #: front; scheduling inside a session is unchanged
    lazy_sessions: bool = False
    #: compact per-user state: :class:`CompactUserRng` instead of a
    #: cached ``random.Random`` per user, and a :class:`HistogramRecorder`
    #: latency digest instead of raw samples.  Changes draw sequences, so
    #: it is opt-in — default profiles stay bit-identical to E29.
    compact_sessions: bool = False

    def window(self) -> float:
        return self.arrival_window if self.arrival_window is not None \
            else self.duration / 2.0

    def in_flash(self, t: float) -> bool:
        """Is workload-relative time ``t`` inside the flash window?"""
        return (self.flash_at is not None
                and self.flash_at <= t < self.flash_at + self.flash_duration)


@dataclass(slots=True)
class PopulationState:
    """Live bookkeeping for one shard's slice of the population.

    Slotted: one instance exists per shard, but sessions touch it on
    every op, and ``__slots__`` keeps the attribute access on the 100k
    hot path dict-free (and documents the full field set).
    """

    profile: PopulationProfile
    t0: float                     # sim time the workload started
    end_at: float
    schedule_len: int
    ops: LatencyRecorder = field(default_factory=LatencyRecorder)
    sessions_spawned: int = 0
    sessions_started: int = 0
    sessions_finished: int = 0
    errors: int = 0
    roams: int = 0


def _mmpp_trajectory(rng, profile: PopulationProfile,
                     window: float) -> List[Tuple[float, float]]:
    """[(start_time, relative_rate), ...] covering [0, window]."""
    segments: List[Tuple[float, float]] = []
    t, high = 0.0, False
    while t < window:
        rate = profile.mmpp_high if high else profile.mmpp_low
        segments.append((t, rate))
        hold = rng.expovariate(
            1.0 / (profile.mmpp_mean_high if high else profile.mmpp_mean_low)
        )
        t += hold
        high = not high
    return segments


def generate_arrivals(rng_registry,
                      profile: PopulationProfile) -> List[Tuple[float, int]]:
    """Draw the arrival schedule ``[(t, uid), ...]`` for a profile.

    Deterministic in ``(seed, profile)``: every draw comes from the
    ``population.arrivals`` stream in a fixed order, so all shards of a
    sharded run compute the identical schedule.  Times are relative to
    the workload start.
    """
    rng = rng_registry.py("population.arrivals")
    window = profile.window()
    if window <= 0 or profile.n_users <= 0:
        return []

    if profile.process == "mmpp":
        segments = _mmpp_trajectory(rng, profile, window)

        def shape(t: float) -> float:
            rate = segments[0][1]
            for start, seg_rate in segments:
                if start > t:
                    break
                rate = seg_rate
            return rate
    elif profile.process == "diurnal":
        period = profile.diurnal_period or window

        def shape(t: float) -> float:
            phase = 2.0 * math.pi * (t / period - 0.25)
            return max(0.0, 1.0 + profile.diurnal_amplitude * math.sin(phase))
    elif profile.process == "poisson":
        def shape(t: float) -> float:
            return 1.0
    else:
        raise ValueError(f"unknown arrival process {profile.process!r}")

    def intensity(t: float) -> float:
        value = shape(t)
        if profile.in_flash(t):
            value *= profile.flash_multiplier
        return value

    # Normalize so the expected arrival count over the window is n_users,
    # then thin against the peak.  The grid is deterministic; flash edges
    # are included so the peak is never underestimated.
    grid = [window * i / 1024.0 for i in range(1025)]
    if profile.flash_at is not None:
        grid.extend([profile.flash_at,
                     min(window, profile.flash_at + profile.flash_duration / 2)])
    values = [intensity(t) for t in grid]
    mean_shape = sum(values) / len(values)
    peak = max(values)
    if mean_shape <= 0 or peak <= 0:
        return []
    lam0 = profile.n_users / (window * mean_shape)
    lam_max = lam0 * peak

    schedule: List[Tuple[float, int]] = []
    t, uid = 0.0, 0
    while uid < profile.n_users:
        t += rng.expovariate(lam_max)
        if t >= window:
            break
        if rng.random() * lam_max <= lam0 * intensity(t):
            schedule.append((t, uid))
            uid += 1
    return schedule


def _home_pattern(n_regions: int) -> List[int]:
    """User -> home-region assignment cycle.

    Region 0 is the machine room: it hosts the central services and half
    the desks of a satellite building, so it gets one slot in the cycle
    where every other region gets two.  (Also what keeps a sharded run
    balanced — the central shard trades user load for service load.)
    """
    if n_regions == 1:
        return [0]
    return [0] + 2 * list(range(1, n_regions))


def home_region(uid: int, n_regions: int) -> int:
    """Deterministic home region for a user id (shard-count invariant)."""
    pattern = _home_pattern(n_regions)
    return pattern[uid % len(pattern)]


def _session(env, state: PopulationState, uid: int, region,
             start_at: float, end_at: float) -> Generator:
    sim = env.sim
    profile = state.profile
    regions = env.campus_regions
    yield sim.timeout(max(0.0, start_at - sim.now))
    if profile.compact_sessions:
        # transient + tiny: nothing is cached registry-side, and the
        # state is one machine word instead of a Mersenne table
        rng = CompactUserRng(env.rng.derive_seed(f"population.user.{uid}"))
    else:
        rng = env.rng.py(f"population.user.{uid}")
    host = env.net.host(region.client_host)
    client = ServiceClient(env.ctx, host, principal=f"pop-{uid}")
    state.sessions_started += 1
    while sim.now < end_at:
        asd = region.asd
        if len(regions) > 1 and rng.random() < profile.roam_fraction:
            target = regions[rng.randrange(len(regions))]
            if target.index != region.index:
                asd = target.asd
                state.roams += 1
        t0 = sim.now
        try:
            yield from client.call_once(asd, ACECmdLine("lookup", cls="HRM"))
            yield from client.call_once(region.aud, ACECmdLine("listUsers"))
        except (CallError, ConnectionClosed, ConnectionRefused):
            state.errors += 1
            yield sim.timeout(0.5)
            continue
        state.ops.record(sim.now - t0)
        think = profile.think_time
        if profile.in_flash(sim.now - state.t0):
            think /= profile.flash_think_divisor
        yield sim.timeout(rng.expovariate(1.0 / think) if think > 0 else 0)
    state.sessions_finished += 1


def start_population(env, shard, *, profile: PopulationProfile) -> int:
    """Spawn this shard's slice of the population; returns sessions spawned.

    Usable directly on a plain environment (``shard=None`` spawns every
    session) or as a :meth:`ShardedSimulator.spawn` function.  Attaches a
    :class:`PopulationState` as ``env.population`` for later collection.
    The caller is responsible for running the simulation past
    ``profile.duration``.
    """
    regions = getattr(env, "campus_regions", None)
    if not regions:
        raise ValueError("environment has no campus_regions "
                         "(build it with repro.env.build_campus)")
    schedule = generate_arrivals(env.rng, profile)
    t0 = env.sim.now
    state = PopulationState(
        profile=profile, t0=t0, end_at=t0 + profile.duration,
        schedule_len=len(schedule),
        ops=(HistogramRecorder() if profile.compact_sessions
             else LatencyRecorder()),
    )
    env.population = state
    owned = []
    for t, uid in schedule:
        region = regions[home_region(uid, len(regions))]
        if shard is not None and not shard.owns(region.client_host):
            continue
        owned.append((t, uid, region))
    state.sessions_spawned = len(owned)
    if profile.lazy_sessions:
        env.sim.process(_session_pump(env, state, owned, t0), name="pop-pump")
    else:
        for t, uid, region in owned:
            env.sim.process(
                _session(env, state, uid, region, t0 + t, state.end_at),
                name=f"pop-{uid}",
            )
    return state.sessions_spawned


def _session_pump(env, state: PopulationState, arrivals, t0: float) -> Generator:
    """Spawn sessions at their arrival times (``lazy_sessions``).

    Pre-creating 100k generators parks 100k frames and heap entries in
    the kernel before the first user even arrives; the pump walks the
    (time-sorted) arrival list and materializes each session only when
    its start time comes due.  Event timing inside a session is
    identical — ``_session`` still anchors on its absolute ``start_at``.
    """
    sim = env.sim
    for t, uid, region in arrivals:
        start_at = t0 + t
        if start_at > sim.now:
            yield sim.timeout(start_at - sim.now)
        sim.process(
            _session(env, state, uid, region, start_at, state.end_at),
            name=f"pop-{uid}",
        )


def collect_population(env, shard=None) -> dict:
    """Gather one shard's population results as a picklable dict.

    Compact profiles carry no raw samples; their latency digest comes
    back under ``latency`` instead (fixed-bucket percentiles).
    """
    state = getattr(env, "population", None)
    if state is None:
        return {"ops": 0, "sessions_spawned": 0, "sessions_started": 0,
                "sessions_finished": 0, "errors": 0, "roams": 0,
                "schedule_len": 0, "samples": []}
    out = {
        "ops": len(state.ops),
        "sessions_spawned": state.sessions_spawned,
        "sessions_started": state.sessions_started,
        "sessions_finished": state.sessions_finished,
        "errors": state.errors,
        "roams": state.roams,
        "schedule_len": state.schedule_len,
        "samples": list(state.ops.samples),
    }
    if isinstance(state.ops, HistogramRecorder):
        out["latency"] = state.ops.snapshot()
    return out
