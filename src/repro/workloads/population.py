"""Population-scale workload generator (E29).

Scales the E18 "hundreds of users" session mix to tens of thousands by
separating *who arrives when* from *what a session does*:

* :func:`generate_arrivals` draws an arrival schedule from a single root
  RNG stream (``population.arrivals``) via thinning against a rate curve
  — homogeneous Poisson, two-state MMPP, or a diurnal sinusoid — with an
  optional flash crowd (the E28 shape: a hard rate multiplier plus
  frantic think times inside the window).
* each arrival becomes a per-user session FSM on its home region's
  client host, looking services up in the regional directory, listing
  users in the regional AUD, and occasionally *roaming* to another
  region (cross-shard traffic in a sharded run).

Sharding contract: the schedule is computed identically in every shard
from the same root stream, and each shard spawns only the sessions whose
home client host it owns.  Every random draw a session makes comes from
its own ``population.user.<uid>`` stream, so draw sequences are
shard-count invariant (regression-tested).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Generator, List, Optional, Tuple

from repro.lang import ACECmdLine
from repro.core.client import CallError, ServiceClient
from repro.metrics import LatencyRecorder
from repro.net import ConnectionClosed, ConnectionRefused


@dataclass(frozen=True)
class PopulationProfile:
    """Everything that defines a population run.  Picklable on purpose."""

    n_users: int
    duration: float
    #: arrival process: "poisson", "mmpp", or "diurnal"
    process: str = "poisson"
    #: arrivals land inside [0, arrival_window); None = duration / 2
    arrival_window: Optional[float] = None
    # -- MMPP (two-state) ------------------------------------------------
    mmpp_low: float = 0.4        # relative rate in the quiet state
    mmpp_high: float = 2.5       # relative rate in the bursty state
    mmpp_mean_low: float = 8.0   # mean seconds spent quiet
    mmpp_mean_high: float = 2.0  # mean seconds spent bursty
    # -- diurnal sinusoid ------------------------------------------------
    diurnal_amplitude: float = 0.8
    diurnal_period: Optional[float] = None  # None = arrival window
    # -- flash crowd (E28 shape) ----------------------------------------
    flash_at: Optional[float] = None
    flash_duration: float = 0.0
    flash_multiplier: float = 7.0
    flash_think_divisor: float = 10.0
    # -- session behaviour ----------------------------------------------
    think_time: float = 1.0
    roam_fraction: float = 0.1

    def window(self) -> float:
        return self.arrival_window if self.arrival_window is not None \
            else self.duration / 2.0

    def in_flash(self, t: float) -> bool:
        """Is workload-relative time ``t`` inside the flash window?"""
        return (self.flash_at is not None
                and self.flash_at <= t < self.flash_at + self.flash_duration)


@dataclass
class PopulationState:
    """Live bookkeeping for one shard's slice of the population."""

    profile: PopulationProfile
    t0: float                     # sim time the workload started
    end_at: float
    schedule_len: int
    ops: LatencyRecorder = field(default_factory=LatencyRecorder)
    sessions_spawned: int = 0
    sessions_started: int = 0
    sessions_finished: int = 0
    errors: int = 0
    roams: int = 0


def _mmpp_trajectory(rng, profile: PopulationProfile,
                     window: float) -> List[Tuple[float, float]]:
    """[(start_time, relative_rate), ...] covering [0, window]."""
    segments: List[Tuple[float, float]] = []
    t, high = 0.0, False
    while t < window:
        rate = profile.mmpp_high if high else profile.mmpp_low
        segments.append((t, rate))
        hold = rng.expovariate(
            1.0 / (profile.mmpp_mean_high if high else profile.mmpp_mean_low)
        )
        t += hold
        high = not high
    return segments


def generate_arrivals(rng_registry,
                      profile: PopulationProfile) -> List[Tuple[float, int]]:
    """Draw the arrival schedule ``[(t, uid), ...]`` for a profile.

    Deterministic in ``(seed, profile)``: every draw comes from the
    ``population.arrivals`` stream in a fixed order, so all shards of a
    sharded run compute the identical schedule.  Times are relative to
    the workload start.
    """
    rng = rng_registry.py("population.arrivals")
    window = profile.window()
    if window <= 0 or profile.n_users <= 0:
        return []

    if profile.process == "mmpp":
        segments = _mmpp_trajectory(rng, profile, window)

        def shape(t: float) -> float:
            rate = segments[0][1]
            for start, seg_rate in segments:
                if start > t:
                    break
                rate = seg_rate
            return rate
    elif profile.process == "diurnal":
        period = profile.diurnal_period or window

        def shape(t: float) -> float:
            phase = 2.0 * math.pi * (t / period - 0.25)
            return max(0.0, 1.0 + profile.diurnal_amplitude * math.sin(phase))
    elif profile.process == "poisson":
        def shape(t: float) -> float:
            return 1.0
    else:
        raise ValueError(f"unknown arrival process {profile.process!r}")

    def intensity(t: float) -> float:
        value = shape(t)
        if profile.in_flash(t):
            value *= profile.flash_multiplier
        return value

    # Normalize so the expected arrival count over the window is n_users,
    # then thin against the peak.  The grid is deterministic; flash edges
    # are included so the peak is never underestimated.
    grid = [window * i / 1024.0 for i in range(1025)]
    if profile.flash_at is not None:
        grid.extend([profile.flash_at,
                     min(window, profile.flash_at + profile.flash_duration / 2)])
    values = [intensity(t) for t in grid]
    mean_shape = sum(values) / len(values)
    peak = max(values)
    if mean_shape <= 0 or peak <= 0:
        return []
    lam0 = profile.n_users / (window * mean_shape)
    lam_max = lam0 * peak

    schedule: List[Tuple[float, int]] = []
    t, uid = 0.0, 0
    while uid < profile.n_users:
        t += rng.expovariate(lam_max)
        if t >= window:
            break
        if rng.random() * lam_max <= lam0 * intensity(t):
            schedule.append((t, uid))
            uid += 1
    return schedule


def _home_pattern(n_regions: int) -> List[int]:
    """User -> home-region assignment cycle.

    Region 0 is the machine room: it hosts the central services and half
    the desks of a satellite building, so it gets one slot in the cycle
    where every other region gets two.  (Also what keeps a sharded run
    balanced — the central shard trades user load for service load.)
    """
    if n_regions == 1:
        return [0]
    return [0] + 2 * list(range(1, n_regions))


def home_region(uid: int, n_regions: int) -> int:
    """Deterministic home region for a user id (shard-count invariant)."""
    pattern = _home_pattern(n_regions)
    return pattern[uid % len(pattern)]


def _session(env, state: PopulationState, uid: int, region,
             start_at: float, end_at: float) -> Generator:
    sim = env.sim
    profile = state.profile
    regions = env.campus_regions
    yield sim.timeout(max(0.0, start_at - sim.now))
    rng = env.rng.py(f"population.user.{uid}")
    host = env.net.host(region.client_host)
    client = ServiceClient(env.ctx, host, principal=f"pop-{uid}")
    state.sessions_started += 1
    while sim.now < end_at:
        asd = region.asd
        if len(regions) > 1 and rng.random() < profile.roam_fraction:
            target = regions[rng.randrange(len(regions))]
            if target.index != region.index:
                asd = target.asd
                state.roams += 1
        t0 = sim.now
        try:
            yield from client.call_once(asd, ACECmdLine("lookup", cls="HRM"))
            yield from client.call_once(region.aud, ACECmdLine("listUsers"))
        except (CallError, ConnectionClosed, ConnectionRefused):
            state.errors += 1
            yield sim.timeout(0.5)
            continue
        state.ops.record(sim.now - t0)
        think = profile.think_time
        if profile.in_flash(sim.now - state.t0):
            think /= profile.flash_think_divisor
        yield sim.timeout(rng.expovariate(1.0 / think) if think > 0 else 0)
    state.sessions_finished += 1


def start_population(env, shard, *, profile: PopulationProfile) -> int:
    """Spawn this shard's slice of the population; returns sessions spawned.

    Usable directly on a plain environment (``shard=None`` spawns every
    session) or as a :meth:`ShardedSimulator.spawn` function.  Attaches a
    :class:`PopulationState` as ``env.population`` for later collection.
    The caller is responsible for running the simulation past
    ``profile.duration``.
    """
    regions = getattr(env, "campus_regions", None)
    if not regions:
        raise ValueError("environment has no campus_regions "
                         "(build it with repro.env.build_campus)")
    schedule = generate_arrivals(env.rng, profile)
    t0 = env.sim.now
    state = PopulationState(
        profile=profile, t0=t0, end_at=t0 + profile.duration,
        schedule_len=len(schedule),
    )
    env.population = state
    for t, uid in schedule:
        region = regions[home_region(uid, len(regions))]
        if shard is not None and not shard.owns(region.client_host):
            continue
        env.sim.process(
            _session(env, state, uid, region, t0 + t, state.end_at),
            name=f"pop-{uid}",
        )
        state.sessions_spawned += 1
    return state.sessions_spawned


def collect_population(env, shard=None) -> dict:
    """Gather one shard's population results as a picklable dict."""
    state = getattr(env, "population", None)
    if state is None:
        return {"ops": 0, "sessions_spawned": 0, "sessions_started": 0,
                "sessions_finished": 0, "errors": 0, "roams": 0,
                "schedule_len": 0, "samples": []}
    return {
        "ops": len(state.ops),
        "sessions_spawned": state.sessions_spawned,
        "sessions_started": state.sessions_started,
        "sessions_finished": state.sessions_finished,
        "errors": state.errors,
        "roams": state.roams,
        "schedule_len": state.schedule_len,
        "samples": list(state.ops.samples),
    }
