"""Workload generators for the benchmark harness."""

from repro.workloads.chaos import CallRecord, ChaosRunResult, run_chaos_workload
from repro.workloads.clients import (
    closed_loop_clients,
    open_loop_arrivals,
    store_workload,
    user_session_workload,
)
from repro.workloads.population import (
    CompactUserRng,
    HistogramRecorder,
    PopulationProfile,
    PopulationState,
    collect_population,
    generate_arrivals,
    start_population,
)

__all__ = [
    "CallRecord",
    "ChaosRunResult",
    "CompactUserRng",
    "HistogramRecorder",
    "PopulationProfile",
    "PopulationState",
    "closed_loop_clients",
    "collect_population",
    "generate_arrivals",
    "open_loop_arrivals",
    "run_chaos_workload",
    "start_population",
    "store_workload",
    "user_session_workload",
]
