"""Workload generators for the benchmark harness."""

from repro.workloads.clients import (
    closed_loop_clients,
    open_loop_arrivals,
    user_session_workload,
)

__all__ = [
    "closed_loop_clients",
    "open_loop_arrivals",
    "user_session_workload",
]
