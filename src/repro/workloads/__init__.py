"""Workload generators for the benchmark harness."""

from repro.workloads.chaos import CallRecord, ChaosRunResult, run_chaos_workload
from repro.workloads.clients import (
    closed_loop_clients,
    open_loop_arrivals,
    store_workload,
    user_session_workload,
)

__all__ = [
    "CallRecord",
    "ChaosRunResult",
    "closed_loop_clients",
    "open_loop_arrivals",
    "run_chaos_workload",
    "store_workload",
    "user_session_workload",
]
