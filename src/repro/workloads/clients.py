"""Synthetic client populations for scale experiments (E18 and friends).

Two standard shapes:

* **closed loop** — N clients, each issuing a request, waiting for the
  reply, thinking, repeating: models interactive users.
* **open loop** — Poisson arrivals at a fixed offered rate regardless of
  completion: models aggregate environment activity and finds saturation.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from repro.lang import ACECmdLine
from repro.core.client import CallError, ServiceClient
from repro.metrics import LatencyRecorder
from repro.net import Address, ConnectionClosed, ConnectionRefused


def closed_loop_clients(
    env,
    *,
    n_clients: int,
    duration: float,
    target: Address,
    make_command: Callable[[int, int], ACECmdLine],
    think_time: float = 0.1,
    client_host_name: Optional[str] = None,
    recorder: Optional[LatencyRecorder] = None,
    trace_name: Optional[str] = None,
) -> LatencyRecorder:
    """Run N think-loop clients against ``target`` for ``duration`` sim-s.

    ``make_command(client_index, iteration)`` builds each request.
    ``trace_name`` (when set) wraps every request in a root trace span named
    ``{trace_name}`` — the knob E22 uses to measure tracing overhead.
    Returns the latency recorder (per-request response times).
    """
    recorder = recorder or LatencyRecorder()
    sim = env.sim
    stop_at = sim.now + duration
    host = env.net.host(client_host_name) if client_host_name else env.net.hosts[
        sorted(env.net.hosts)[0]
    ]
    think_rng = env.rng.py("workload.think")

    def one_client(index: int) -> Generator:
        client = ServiceClient(env.ctx, host, principal=f"load-{index}")
        try:
            conn = yield from client.connect(target)
        except (ConnectionRefused, ConnectionClosed, CallError):
            return
        iteration = 0
        try:
            while sim.now < stop_at:
                command = make_command(index, iteration)
                t0 = sim.now
                root = (
                    client.begin_trace(trace_name, client=index, iteration=iteration)
                    if trace_name
                    else None
                )
                status = "ok"
                try:
                    yield from conn.call(command)
                except CallError:
                    status = "cmdFailed"  # denials still count as served traffic
                finally:
                    client.end_trace(root, status=status)
                recorder.record(sim.now - t0)
                iteration += 1
                yield sim.timeout(think_rng.expovariate(1.0 / think_time) if think_time > 0 else 0)
        except (ConnectionClosed, CallError):
            return
        finally:
            conn.close()

    procs = [sim.process(one_client(i), name=f"load-{i}") for i in range(n_clients)]
    sim.run(until=stop_at + 5.0)
    del procs
    return recorder


def open_loop_arrivals(
    env,
    *,
    rate_per_s: float,
    duration: float,
    target: Address,
    make_command: Callable[[int], ACECmdLine],
    client_host_name: Optional[str] = None,
) -> LatencyRecorder:
    """Poisson arrivals at ``rate_per_s``; each arrival is one connect +
    call + close.  Returns per-request latencies (drops excluded)."""
    recorder = LatencyRecorder()
    sim = env.sim
    stop_at = sim.now + duration
    host = env.net.host(client_host_name) if client_host_name else env.net.hosts[
        sorted(env.net.hosts)[0]
    ]
    arrival_rng = env.rng.py("workload.arrivals")

    def one_shot(index: int) -> Generator:
        client = ServiceClient(env.ctx, host, principal=f"arrival-{index}")
        t0 = sim.now
        try:
            yield from client.call_once(target, make_command(index))
        except (CallError, ConnectionClosed, ConnectionRefused):
            return
        recorder.record(sim.now - t0)

    def generator_proc() -> Generator:
        index = 0
        while sim.now < stop_at:
            yield sim.timeout(arrival_rng.expovariate(rate_per_s))
            sim.process(one_shot(index), name=f"arrival-{index}")
            index += 1

    sim.process(generator_proc(), name="arrival-generator")
    sim.run(until=stop_at + 10.0)
    return recorder


def store_workload(
    env,
    *,
    n_clients: int,
    duration: float,
    n_paths: int = 64,
    write_fraction: float = 0.2,
    think_time: float = 0.01,
    cache_reads: bool = False,
    recorder: Optional[LatencyRecorder] = None,
) -> LatencyRecorder:
    """E25's data-plane mix: N closed-loop clients doing put/get against
    the (possibly sharded) persistent store via :meth:`env.store_client`,
    so every request routes per-key the way real consumers do.

    Returns the latency recorder; ``recorder.count`` is the completed-op
    count for throughput math.  Ops that found every replica down are not
    recorded."""
    from repro.store.client import StoreUnavailable

    recorder = recorder or LatencyRecorder()
    sim = env.sim
    stop_at = sim.now + duration
    host = env.net.hosts[sorted(env.net.hosts)[0]]
    think_rng = env.rng.py("workload.store-think")
    mix_rng = env.rng.py("workload.store-mix")

    def one_client(index: int) -> Generator:
        client = env.store_client(
            host, principal=f"store-load-{index}", cache_reads=cache_reads
        )
        iteration = 0
        while sim.now < stop_at:
            path = f"/bench/c{index}/o{iteration % n_paths}"
            t0 = sim.now
            try:
                if mix_rng.random() < write_fraction:
                    yield from client.put(path, {"v": str(iteration)})
                else:
                    yield from client.get(path)
            except (StoreUnavailable, CallError, ConnectionClosed, ConnectionRefused):
                yield sim.timeout(0.1)
                continue
            recorder.record(sim.now - t0)
            iteration += 1
            yield sim.timeout(
                think_rng.expovariate(1.0 / think_time) if think_time > 0 else 0
            )

    procs = [sim.process(one_client(i), name=f"store-load-{i}") for i in range(n_clients)]
    sim.run(until=stop_at + 5.0)
    del procs
    return recorder


def user_session_workload(
    env,
    *,
    n_users: int,
    duration: float,
    recorder: Optional[LatencyRecorder] = None,
) -> LatencyRecorder:
    """E18's 'hundreds of users' session mix against the central services:
    each user repeatedly looks a service up in the ASD, pings it, and
    checks their own record in the AUD."""
    recorder = recorder or LatencyRecorder()
    sim = env.sim
    stop_at = sim.now + duration
    asd = env.ctx.asd_address
    aud = env.daemons["aud"].address if "aud" in env.daemons else None
    think_rng = env.rng.py("workload.session-think")
    host = env.net.hosts[sorted(env.net.hosts)[0]]

    def one_user(index: int) -> Generator:
        client = ServiceClient(env.ctx, host, principal=f"user-{index}")
        while sim.now < stop_at:
            t0 = sim.now
            try:
                yield from client.call_once(asd, ACECmdLine("lookup", cls="HRM"))
                if aud is not None:
                    yield from client.call_once(aud, ACECmdLine("listUsers"))
            except (CallError, ConnectionClosed, ConnectionRefused):
                yield sim.timeout(0.5)
                continue
            recorder.record(sim.now - t0)
            yield sim.timeout(think_rng.expovariate(1.0))  # ~1 op/s/user

    for i in range(n_users):
        sim.process(one_user(i), name=f"user-{i}")
    sim.run(until=stop_at + 5.0)
    return recorder
