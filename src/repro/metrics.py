"""Measurement helpers shared by benchmarks and experiments."""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


def cores_available() -> int:
    """Cores this process may actually run on.

    Benchmarks report this next to CPU-based speedups so the reader can
    judge how much true parallelism the runner had.  ``os.cpu_count()``
    over-reports on affinity-restricted CI runners (it counts the
    machine, not the cgroup/affinity mask), so prefer the scheduler's
    answer where the platform has one.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class Summary:
    """Standard latency/throughput digest."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    def row(self, scale: float = 1e3, unit: str = "ms") -> str:
        return (
            f"n={self.count:<6d} mean={self.mean * scale:9.3f}{unit} "
            f"p50={self.p50 * scale:9.3f}{unit} p95={self.p95 * scale:9.3f}{unit} "
            f"p99={self.p99 * scale:9.3f}{unit} max={self.maximum * scale:9.3f}{unit}"
        )


def summarize(samples: Iterable[float]) -> Summary:
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return Summary(
        count=int(data.size),
        mean=float(data.mean()),
        p50=float(np.percentile(data, 50)),
        p95=float(np.percentile(data, 95)),
        p99=float(np.percentile(data, 99)),
        minimum=float(data.min()),
        maximum=float(data.max()),
    )


class LatencyRecorder:
    """Collects (start, stop) spans inside a simulation run."""

    def __init__(self) -> None:
        self.samples: List[float] = []

    def record(self, elapsed: float) -> None:
        self.samples.append(float(elapsed))

    def summary(self) -> Summary:
        return summarize(self.samples)

    def __len__(self) -> int:
        return len(self.samples)


@dataclass
class RpcStats:
    """Counters for the resilient RPC layer (deadlines/retries/breakers).

    One instance lives on every :class:`~repro.core.policy.ResilienceRegistry`
    so an experiment can snapshot how much shedding and retrying the client
    layer did during a fault schedule.
    """

    calls: int = 0
    successes: int = 0
    failures: int = 0
    retries: int = 0
    deadline_expired: int = 0
    breaker_rejected: int = 0
    breaker_trips: int = 0
    breaker_resets: int = 0
    lookup_fallbacks: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "calls": self.calls,
            "successes": self.successes,
            "failures": self.failures,
            "retries": self.retries,
            "deadline_expired": self.deadline_expired,
            "breaker_rejected": self.breaker_rejected,
            "breaker_trips": self.breaker_trips,
            "breaker_resets": self.breaker_resets,
            "lookup_fallbacks": self.lookup_fallbacks,
        }


class AvailabilityRecorder:
    """Time-bucketed success/failure counts for availability timelines.

    ``record(t, ok)`` files one completed request into the bucket containing
    ``t``; ``series()`` yields ``(bucket_start, availability, count)`` rows,
    which is what the chaos experiment plots and asserts recovery shape on.
    """

    def __init__(self, bucket: float = 1.0):
        if bucket <= 0:
            raise ValueError(f"bucket must be positive, got {bucket}")
        self.bucket = float(bucket)
        self._ok: Dict[int, int] = {}
        self._total: Dict[int, int] = {}

    def record(self, t: float, ok: bool) -> None:
        idx = int(t // self.bucket)
        self._total[idx] = self._total.get(idx, 0) + 1
        if ok:
            self._ok[idx] = self._ok.get(idx, 0) + 1

    def series(self) -> List[Tuple[float, float, int]]:
        rows = []
        for idx in sorted(self._total):
            total = self._total[idx]
            rows.append((idx * self.bucket, self._ok.get(idx, 0) / total, total))
        return rows

    def availability_between(self, t0: float, t1: float) -> float:
        """Success fraction over [t0, t1); 1.0 when no requests completed."""
        ok = total = 0
        for idx, n in self._total.items():
            start = idx * self.bucket
            if t0 <= start < t1:
                total += n
                ok += self._ok.get(idx, 0)
        return ok / total if total else 1.0

    def delivered_between(self, t0: float, t1: float) -> int:
        """Successful requests completed in [t0, t1)."""
        return sum(
            n for idx, n in self._ok.items() if t0 <= idx * self.bucket < t1
        )


class ResultTable:
    """Plain fixed-width table printer for benchmark harnesses.

    Every experiment prints one of these; EXPERIMENTS.md quotes the rows.
    """

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append([_fmt(v) for v in values])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows)) if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render() + "\n")


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
