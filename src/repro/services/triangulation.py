"""Sound-source triangulation (§1.2's "sound triangulation systems",
§9's "audio triangulation").

Microphone daemons around a room timestamp the arrival of a sound event;
the triangulation daemon collects reports for the same event and solves
the TDOA (time-difference-of-arrival) multilateration problem with
least squares (scipy) against the microphone positions it fetches from
the Room Database — the spatial-awareness machinery of §4.11 doing real
work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

import numpy as np
from scipy.optimize import least_squares

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics
from repro.net import ConnectionClosed, ConnectionRefused
from repro.core.client import CallError
from repro.core.daemon import ACEDaemon, Request, ServiceError

SPEED_OF_SOUND = 343.0  # m/s


def solve_tdoa(mic_positions: np.ndarray, arrival_times: np.ndarray,
               speed: float = SPEED_OF_SOUND) -> Tuple[np.ndarray, float]:
    """Estimate the 2D source position from arrival times at >= 3 mics.

    Solves for (x, y, t0) minimizing ``|source - mic_i| - speed*(t_i - t0)``
    residuals.  Returns (position, rms residual in metres).
    """
    mic_positions = np.asarray(mic_positions, dtype=float)[:, :2]
    arrival_times = np.asarray(arrival_times, dtype=float)
    if len(mic_positions) < 3:
        raise ValueError("need at least 3 microphones for 2D TDOA")

    t_ref = arrival_times.min()

    def residuals(params):
        x, y, t0 = params
        dists = np.hypot(mic_positions[:, 0] - x, mic_positions[:, 1] - y)
        return dists - speed * (arrival_times - t_ref + t0)

    start = np.array([mic_positions[:, 0].mean(), mic_positions[:, 1].mean(),
                      0.001])
    result = least_squares(residuals, start)
    position = result.x[:2]
    rms = float(np.sqrt(np.mean(result.fun ** 2)))
    return position, rms


@dataclass
class _Report:
    mic: str
    position: Tuple[float, float]
    time: float


class SoundTriangulationDaemon(ACEDaemon):
    """Aggregates microphone arrival reports into source positions."""

    service_type = "SoundTriangulation"

    def __init__(self, ctx, name, host, *, window: float = 0.25, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        #: reports for in-flight events, keyed by event id
        self._reports: Dict[str, List[_Report]] = {}
        self.window = window
        #: event id -> (x, y, rms)
        self.located: Dict[str, Tuple[float, float, float]] = {}

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "reportArrival",
            ArgSpec("event", ArgType.STRING),
            ArgSpec("mic", ArgType.STRING),
            ArgSpec("time", ArgType.NUMBER),
            description="a microphone heard event at its local time",
        )
        sem.define("locate", ArgSpec("event", ArgType.STRING))
        sem.define(
            "soundLocated",
            ArgSpec("event", ArgType.STRING),
            ArgSpec("x", ArgType.NUMBER),
            ArgSpec("y", ArgType.NUMBER),
            ArgSpec("rms", ArgType.NUMBER, required=False, default=0.0),
            description="emitted when an event is triangulated (watch me!)",
        )

    def _mic_position(self, mic: str) -> Generator:
        """Where is this microphone?  Ask the Room Database (§4.11)."""
        if self.ctx.roomdb_address is None:
            return None
        client = self._service_client()
        try:
            reply = yield from client.call_once(
                self.ctx.roomdb_address, ACECmdLine("whereIs", service=mic))
        except (CallError, ConnectionClosed, ConnectionRefused):
            return None
        position = reply.get("position")
        if position is None:
            return None
        return (float(position[0]), float(position[1]))

    def cmd_reportArrival(self, request: Request) -> Generator:
        cmd = request.command
        position = yield from self._mic_position(cmd.str("mic"))
        if position is None:
            raise ServiceError(f"microphone {cmd.str('mic')!r} has no known "
                               "position in the Room Database")
        event = cmd.str("event")
        reports = self._reports.setdefault(event, [])
        reports.append(_Report(cmd.str("mic"), position, cmd.float("time")))
        if len(reports) >= 3 and event not in self.located:
            yield from self._try_locate(event)
        return {"event": event, "reports": len(reports)}

    def _try_locate(self, event: str) -> Generator:
        reports = self._reports.get(event, [])
        if len(reports) < 3:
            raise ServiceError(f"event {event!r} has only {len(reports)} reports")
        mics = np.array([r.position for r in reports])
        times = np.array([r.time for r in reports])
        yield from self.host.execute(5.0)  # the least-squares solve
        position, rms = solve_tdoa(mics, times)
        self.located[event] = (float(position[0]), float(position[1]), rms)
        yield from self.self_execute(ACECmdLine(
            "soundLocated", event=event,
            x=round(float(position[0]), 4), y=round(float(position[1]), 4),
            rms=round(rms, 6),
        ))
        return position, rms

    def cmd_locate(self, request: Request) -> Generator:
        event = request.command.str("event")
        if event in self.located:
            x, y, rms = self.located[event]
            return {"event": event, "x": x, "y": y, "rms": rms}
        yield from self._try_locate(event)
        x, y, rms = self.located[event]
        return {"event": event, "x": round(x, 4), "y": round(y, 4),
                "rms": round(rms, 6)}

    def cmd_soundLocated(self, request: Request) -> dict:
        return {"event": request.command.str("event")}


def simulate_sound_event(source_xy: Tuple[float, float],
                         mic_positions: List[Tuple[float, float]],
                         event_time: float = 0.0,
                         jitter_s: float = 0.0,
                         rng: Optional[np.random.Generator] = None) -> List[float]:
    """Arrival times a real sound at ``source_xy`` would produce."""
    times = []
    for mx, my in mic_positions:
        dist = float(np.hypot(mx - source_xy[0], my - source_xy[1]))
        t = event_time + dist / SPEED_OF_SOUND
        if rng is not None and jitter_s > 0:
            t += float(rng.normal(0, jitter_s))
        times.append(t)
    return times
