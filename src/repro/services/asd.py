"""ASD — the ACE Service Directory (§2.4, Fig. 7), now a replica group.

The central listing of active services.  Services ``register`` at startup
(Fig. 9 step 3), ``renewLease`` periodically, ``deregister`` at shutdown;
clients ``lookup`` by name, class path, or room.  Leases purge crashed
services: a registration that stops renewing disappears after
``ctx.lease_duration`` seconds, so "other services don't waste time and
resources attempting to connect to a defunct ACE service".

Because registration is an ordinary ACE command, other daemons can watch
it with ``addNotification cmd=register ...`` and learn about new services
the moment they come up (Fig. 9 step 4) — no ASD-specific mechanism needed.
:class:`DirectoryWatcherDaemon` uses exactly that hook to invalidate the
client-side :class:`~repro.core.lookup_cache.LookupCache`.

Scale-out (§5.3 "robust applications", same pattern as ``repro.store``):

* **Replica group** — 2–3 directories share one logical registry.  Client
  writes hitting a follower are forwarded to the leader (``group[0]``);
  the coordinator stamps each mutation with a ``(seq, site)`` version,
  applies it locally, and pushes it to its peers asynchronously
  (``dirReplicate``).  When the leader is unreachable the follower
  coordinates the write itself — availability beats strict ordering, and
  last-writer-wins on ``(seq, site)`` keeps replicas convergent.
* **Anti-entropy** — replicas periodically exchange ``dirDigest`` listings
  and ``dirFetch`` anything newer, so a crashed-and-restarted replica
  converges without operator help.
* **Chunked replies** — ``lookup``/``listServices`` page large result sets
  in bounded chunks (``next`` carries the continuation offset), replacing
  the E2 jumbo reply.  Replies carry ``ttl`` — the minimum remaining lease
  of the returned records — which clients use as the cache horizon.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics
from repro.lang.wire import escape_field, split_wire
from repro.net import Address, ConnectionClosed, ConnectionRefused
from repro.core.client import CallError, ServiceClient
from repro.core.daemon import ACEDaemon, Request, ServiceError
from repro.core.leases import LeaseTable
from repro.core.lookup_cache import query_key
from repro.core.policy import CallPolicy

# Backwards-compatible aliases: the escaping was born here and later
# promoted to repro.lang.wire so NetLogger and the obs exporter share it.
_escape_field = escape_field
_split_wire = split_wire


@dataclass(frozen=True)
class ServiceRecord:
    """One directory entry."""

    name: str
    host: str
    port: int
    room: str
    cls: str
    #: supervisor reincarnation number (0 = first life).  Registrations
    #: carrying a lower ``inc`` than the live entry are fenced — a stale
    #: incarnation resurfacing after a partition heal cannot clobber its
    #: replacement.
    inc: int = 0

    @property
    def address(self) -> Address:
        return Address(self.host, self.port)

    def to_wire(self) -> str:
        parts = [self.name, self.host, self.port, self.room, self.cls]
        if self.inc:
            # First-life records keep the legacy 5-field form so the wire
            # stays byte-identical when the recovery plane is off.
            parts.append(self.inc)
        return "|".join(_escape_field(str(part)) for part in parts)

    @classmethod
    def from_wire(cls, text: str) -> "ServiceRecord":
        fields = _split_wire(text)
        if len(fields) == 5:
            name, host, port, room, klass = fields
            return cls(name, host, int(port), room, klass)
        name, host, port, room, klass, inc = fields
        return cls(name, host, int(port), room, klass, int(inc))

    def matches_class(self, cls_query: str) -> bool:
        """True when ``cls_query`` is a segment (or suffix path) of this
        record's class path, so ``PTZCamera`` matches ``.../PTZCamera/VCC3``."""
        segments = self.cls.split("/")
        query = cls_query.split("/")
        for start in range(len(segments) - len(query) + 1):
            if segments[start : start + len(query)] == query:
                return True
        return False


@dataclass
class DirEntry:
    """One replicated directory mutation: a record (or its tombstone) plus
    the lease horizon and a last-writer-wins ``(seq, site)`` version."""

    record: ServiceRecord
    expires_at: float
    seq: int
    site: str
    deleted: bool = False
    renewals: int = field(default=0, compare=False)

    @property
    def version(self) -> Tuple[int, str]:
        return (self.seq, self.site)

    def to_wire(self) -> str:
        return "|".join(
            _escape_field(part)
            for part in (
                self.record.to_wire(),
                repr(self.expires_at),
                str(self.seq),
                self.site,
                "1" if self.deleted else "0",
                str(self.renewals),
            )
        )

    @classmethod
    def from_wire(cls, text: str) -> "DirEntry":
        record, expires, seq, site, deleted, renewals = _split_wire(text)
        return cls(
            record=ServiceRecord.from_wire(record),
            expires_at=float(expires),
            seq=int(seq),
            site=site,
            deleted=deleted == "1",
            renewals=int(renewals),
        )


class ServiceDirectoryDaemon(ACEDaemon):
    """One replica of the directory group (a 'robust application', §5.3)."""

    service_type = "ServiceDirectory"

    #: bounded reply size: at most this many records per lookup/listServices
    #: reply (and per dirFetch batch) — the E2 jumbo-reply fix.
    LOOKUP_CHUNK = 32

    def __init__(self, ctx, name, host, *, group: Optional[List[Address]] = None,
                 sync_interval: float = 5.0, **kwargs):
        kwargs.setdefault("authorize_commands", False)  # bootstrap service
        kwargs.setdefault("register_with_asd", False)   # it IS the ASD
        super().__init__(ctx, name, host, **kwargs)
        self.records: Dict[str, ServiceRecord] = {}
        self.leases = LeaseTable(ctx.lease_duration, on_expire=self._lease_expired)
        #: every group member's address, leader first; empty = standalone
        self.group: List[Address] = list(group or [])
        self.sync_interval = sync_interval
        self._entries: Dict[str, DirEntry] = {}
        self._names: List[str] = []   # sorted index maintained on mutation
        self._seq = 0
        #: forward cooldown: until this time, writes bypass the leader
        self._leader_down_until = 0.0
        self.replications_sent = 0
        self.replications_applied = 0
        self.syncs_completed = 0
        self.forwarded_writes = 0
        self.coordinated_writes = 0
        self.fenced_registers = 0
        metrics = ctx.obs.metrics
        self._m_repl_sent = metrics.counter(f"asd.{name}.replications_sent")
        self._m_repl_applied = metrics.counter(f"asd.{name}.replications_applied")
        self._m_repl_failed = metrics.counter(f"asd.{name}.replications_failed")
        self._m_syncs = metrics.counter(f"asd.{name}.syncs")
        self._m_forwarded = metrics.counter(f"asd.{name}.writes_forwarded")
        self._m_fenced = metrics.counter(f"asd.{name}.registers_fenced")

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "register",
            ArgSpec("name", ArgType.STRING),
            ArgSpec("host", ArgType.STRING),
            ArgSpec("port", ArgType.INTEGER),
            ArgSpec("room", ArgType.STRING, required=False, default="unassigned"),
            ArgSpec("cls", ArgType.STRING, required=False, default="ACEService"),
            ArgSpec("inc", ArgType.INTEGER, required=False, default=0),
            ArgSpec("fwd", ArgType.INTEGER, required=False, default=0),
            description="enter the directory and receive a lease",
        )
        sem.define(
            "deregister",
            ArgSpec("name", ArgType.STRING),
            ArgSpec("fwd", ArgType.INTEGER, required=False, default=0),
        )
        sem.define(
            "renewLease",
            ArgSpec("name", ArgType.STRING, required=False),
            ArgSpec("names", ArgType.VECTOR, required=False),
            ArgSpec("fwd", ArgType.INTEGER, required=False, default=0),
            description="renew one lease, or a whole host's in one command",
        )
        sem.define(
            "lookup",
            ArgSpec("name", ArgType.STRING, required=False),
            ArgSpec("cls", ArgType.STRING, required=False),
            ArgSpec("room", ArgType.STRING, required=False),
            ArgSpec("offset", ArgType.INTEGER, required=False, default=0),
            description="find services by name, class path segment, and/or room",
        )
        sem.define("listServices", ArgSpec("offset", ArgType.INTEGER, required=False, default=0))
        sem.define(
            "dirReplicate",
            ArgSpec("entries", ArgType.VECTOR),
            description="peer-to-peer versioned mutation propagation",
        )
        sem.define("dirDigest", description="name|version listing for anti-entropy")
        sem.define("dirFetch", ArgSpec("names", ArgType.VECTOR))
        sem.define("dirStats")

    def set_group(self, group: List[Address]) -> None:
        """Install the replica group (every member, leader first)."""
        self.group = list(group)

    @property
    def peers(self) -> List[Address]:
        return [a for a in self.group if a != self.address]

    @property
    def is_leader(self) -> bool:
        return not self.group or self.group[0] == self.address

    def on_started(self) -> None:
        self._spawn(self._sweep_loop(), "lease-sweep")
        if self.peers:
            self._spawn(self._anti_entropy_loop(), "anti-entropy")

    # ------------------------------------------------------------------
    # Registry state (sorted index + lease bookkeeping)
    # ------------------------------------------------------------------
    def _lease_expired(self, name: str) -> None:
        # Expiry is deterministic across replicas: ``expires_at`` is part
        # of the replicated entry, so every replica purges on its own sweep
        # without any cross-replica message.
        if self.records.pop(name, None) is not None:
            self._index_remove(name)
        self._entries.pop(name, None)
        self.ctx.trace.emit(self.ctx.sim.now, self.name, "lease-expired", service=name)

    def _index_add(self, name: str) -> None:
        pos = bisect.bisect_left(self._names, name)
        if pos == len(self._names) or self._names[pos] != name:
            self._names.insert(pos, name)

    def _index_remove(self, name: str) -> None:
        pos = bisect.bisect_left(self._names, name)
        if pos < len(self._names) and self._names[pos] == name:
            del self._names[pos]

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _sweep_loop(self) -> Generator:
        """Purge lapsed leases even when no queries arrive."""
        interval = max(self.ctx.lease_duration * 0.25, 0.05)
        while self.running:
            yield self.ctx.sim.timeout(interval)
            now = self.ctx.sim.now
            self.leases.expire(now)
            self._prune_tombstones(now)

    def _prune_tombstones(self, now: float) -> None:
        horizon = 3 * self.ctx.lease_duration
        stale = [
            name
            for name, entry in self._entries.items()
            if entry.deleted and now - entry.expires_at > horizon
        ]
        for name in stale:
            del self._entries[name]

    def _fresh_names(self) -> List[str]:
        """The sorted live-service index, after a lazy lease sweep.  No
        per-query re-sort: ``_names`` is maintained on every mutation."""
        self.leases.expire(self.ctx.sim.now)
        return self._names

    def _fresh_records(self) -> List[ServiceRecord]:
        return [self.records[name] for name in self._fresh_names()]

    # ------------------------------------------------------------------
    # Mutations (coordinator side)
    # ------------------------------------------------------------------
    def _apply_entry(self, entry: DirEntry) -> bool:
        """LWW-apply a (possibly remote) entry; True when it won."""
        name = entry.record.name
        existing = self._entries.get(name)
        if existing is not None and existing.version >= entry.version:
            return False
        self._seq = max(self._seq, entry.seq)
        self._entries[name] = entry
        if entry.deleted or not entry.expires_at > self.ctx.sim.now:
            if self.records.pop(name, None) is not None:
                self._index_remove(name)
            self.leases.release(name)
        else:
            if name not in self.records:
                self._index_add(name)
            self.records[name] = entry.record
            self.leases.grant_until(name, entry.expires_at, renewals=entry.renewals)
        return True

    def _forward_to_leader(self, command: ACECmdLine) -> Generator:
        """Send a client write to the leader; None when it is unreachable
        (the caller then coordinates locally — availability first).

        A failed forward starts a cooldown during which further writes
        bypass the leader without probing it: every probe of a dead leader
        costs the full connect timeout, and a follower that stalls on one
        looks dead to *its* clients (their attempt timers keep running
        while we wait)."""
        from repro.lang.command import RESERVED_ARGS

        now = self.ctx.sim.now
        if now < self._leader_down_until:
            return None
        leader = self.group[0]
        forward = command.without_args(*RESERVED_ARGS).with_args(fwd=1)
        client = self._service_client()
        try:
            reply = yield from client.call_resilient(
                leader, forward, policy=FORWARD_POLICY, check=False, attach=False
            )
            self.forwarded_writes += 1
            self._m_forwarded.inc()
            self._leader_down_until = 0.0
            return reply
        except (CallError, ConnectionClosed, ConnectionRefused):
            self._leader_down_until = self.ctx.sim.now + max(self.sync_interval, 1.0)
            self.ctx.trace.emit(
                self.ctx.sim.now, self.name, "leader-bypass", cmd=command.name
            )
            return None

    def _replicate_entries(self, entries: List[DirEntry]) -> None:
        """Asynchronously push mutations to every peer (best effort; the
        anti-entropy loop repairs whatever a crashed peer misses)."""
        if not entries or not self.peers:
            return
        wires = tuple(e.to_wire() for e in entries)
        for peer in self.peers:
            self._spawn(self._push_to_peer(peer, wires), "replicate")

    def _push_to_peer(self, peer: Address, wires: tuple) -> Generator:
        client = self._service_client()
        try:
            yield from client.call_once(
                peer, ACECmdLine("dirReplicate", entries=wires), attach=False
            )
            self.replications_sent += 1
            self._m_repl_sent.inc()
        except (CallError, ConnectionClosed, ConnectionRefused):
            self._m_repl_failed.inc()

    # ------------------------------------------------------------------
    # Anti-entropy (restart convergence)
    # ------------------------------------------------------------------
    def _anti_entropy_loop(self) -> Generator:
        from repro.net.host import HostDownError

        index = 0
        while self.running:
            yield self.ctx.sim.timeout(self.sync_interval)
            peers = self.peers
            if not peers or not self.running:
                continue
            peer = peers[index % len(peers)]
            index += 1
            try:
                yield from self._sync_with(peer)
                self.syncs_completed += 1
                self._m_syncs.inc()
            except HostDownError:
                return  # our own host died; the daemon is gone
            except (CallError, ConnectionClosed, ConnectionRefused):
                continue

    def _sync_with(self, peer: Address) -> Generator:
        """Pull anything the peer has that is newer than our copy."""
        client = self._service_client()
        conn = yield from client.connect(peer, attach=False)
        try:
            digest_reply = yield from conn.call(ACECmdLine("dirDigest"))
            listing = digest_reply.get("entries", ())
            wanted: List[str] = []
            for line in listing if isinstance(listing, tuple) else ():
                name, seq, site = _split_wire(line)
                ours = self._entries.get(name)
                if ours is None or ours.version < (int(seq), site):
                    wanted.append(name)
            for start in range(0, len(wanted), self.LOOKUP_CHUNK):
                batch = tuple(wanted[start : start + self.LOOKUP_CHUNK])
                reply = yield from conn.call(ACECmdLine("dirFetch", names=batch))
                wires = reply.get("entries", ())
                for wire in wires if isinstance(wires, tuple) else ():
                    if self._apply_entry(DirEntry.from_wire(wire)):
                        self.replications_applied += 1
                        self._m_repl_applied.inc()
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Handlers: writes
    # ------------------------------------------------------------------
    def cmd_register(self, request: Request) -> Generator:
        cmd = request.command
        record = ServiceRecord(
            name=cmd.str("name"),
            host=cmd.str("host"),
            port=cmd.int("port"),
            room=cmd.str("room"),
            cls=cmd.str("cls"),
            inc=cmd.int("inc", 0),
        )
        if not cmd.int("fwd", 0) and not self.is_leader:
            reply = yield from self._forward_to_leader(cmd)
            if reply is not None:
                return reply
        # Incarnation fence: a stale pre-crash incarnation resurfacing
        # after a partition heal must not clobber its live replacement.
        existing = self._entries.get(record.name)
        if (
            existing is not None
            and not existing.deleted
            and existing.record.inc > record.inc
        ):
            self.fenced_registers += 1
            self._m_fenced.inc()
            self.ctx.trace.emit(
                self.ctx.sim.now, self.name, "register-fenced",
                service=record.name, inc=record.inc, live=existing.record.inc,
            )
            raise ServiceError(
                f"stale incarnation {record.inc} for {record.name!r}: "
                f"incarnation {existing.record.inc} is live"
            )
        self.coordinated_writes += 1
        lease = self.leases.grant(record.name, self.ctx.sim.now)
        entry = DirEntry(
            record=record, expires_at=lease.expires_at,
            seq=self._next_seq(), site=self.name,
        )
        self._entries[record.name] = entry
        if record.name not in self.records:
            self._index_add(record.name)
        self.records[record.name] = record
        self._replicate_entries([entry])
        self.ctx.trace.emit(
            self.ctx.sim.now, self.name, "service-registered",
            service=record.name, cls=record.cls,
        )
        return {"lease": float(lease.duration)}

    def cmd_deregister(self, request: Request) -> Generator:
        cmd = request.command
        name = cmd.str("name")
        if not cmd.int("fwd", 0) and not self.is_leader:
            reply = yield from self._forward_to_leader(cmd)
            if reply is not None:
                return reply
        self.coordinated_writes += 1
        existed = self.leases.release(name)
        previous = self._entries.get(name)
        record = self.records.pop(name, None)
        if record is not None:
            self._index_remove(name)
        elif previous is not None:
            record = previous.record
        if record is not None:
            tombstone = DirEntry(
                record=record, expires_at=self.ctx.sim.now,
                seq=self._next_seq(), site=self.name, deleted=True,
            )
            self._entries[name] = tombstone
            self._replicate_entries([tombstone])
        if existed:
            self.ctx.trace.emit(self.ctx.sim.now, self.name, "service-deregistered", service=name)
        return {"removed": 1 if existed else 0}

    def cmd_renewLease(self, request: Request) -> Generator:
        cmd = request.command
        single = cmd.get("name")
        batch = cmd.get("names")
        if single is None and batch is None:
            raise ServiceError("renewLease needs name= or names=(...)")
        if not cmd.int("fwd", 0) and not self.is_leader:
            reply = yield from self._forward_to_leader(cmd)
            if reply is not None:
                return reply
        self.coordinated_writes += 1
        now = self.ctx.sim.now
        self.leases.expire(now)
        targets = list(batch) if batch is not None else [single]
        renewed: List[str] = []
        missing: List[str] = []
        changed: List[DirEntry] = []
        last_lease = None
        for name in targets:
            lease = self.leases.renew(name, now)
            entry = self._entries.get(name)
            if lease is None or entry is None or entry.deleted:
                missing.append(name)
                continue
            entry.expires_at = lease.expires_at
            entry.renewals = lease.renewals
            entry.seq = self._next_seq()
            entry.site = self.name
            renewed.append(name)
            changed.append(entry)
            last_lease = lease
        self._replicate_entries(changed)
        if single is not None and batch is None:
            if last_lease is None:
                raise ServiceError(f"no active lease for {single!r}; re-register")
            return {"lease": float(last_lease.duration), "renewals": last_lease.renewals}
        result: dict = {"count": len(renewed)}
        if renewed:
            result["renewed"] = tuple(renewed)
            result["lease"] = float(self.leases.duration)
        if missing:
            result["missing"] = tuple(missing)
        return result

    # ------------------------------------------------------------------
    # Handlers: queries (paged)
    # ------------------------------------------------------------------
    def _paged_reply(self, matches: List[ServiceRecord], offset: int) -> dict:
        """Bound every reply to ``LOOKUP_CHUNK`` records; ``next`` carries
        the continuation offset and ``ttl`` the chunk's cache horizon."""
        total = len(matches)
        offset = max(offset, 0)
        chunk = matches[offset : offset + self.LOOKUP_CHUNK]
        result: dict = {"count": total}
        if chunk:
            now = self.ctx.sim.now
            result["services"] = tuple(r.to_wire() for r in chunk)
            horizons = [
                self._entries[r.name].expires_at
                for r in chunk
                if r.name in self._entries
            ]
            if horizons:
                result["ttl"] = float(max(min(horizons) - now, 0.0))
        if offset + self.LOOKUP_CHUNK < total:
            result["next"] = offset + self.LOOKUP_CHUNK
        return result

    def cmd_lookup(self, request: Request) -> dict:
        cmd = request.command
        name = cmd.get("name")
        cls_query = cmd.get("cls")
        room = cmd.get("room")
        names = self._fresh_names()
        if name is not None:
            # Point query: O(1) on the primary key, no scan at all.
            record = self.records.get(name)
            candidates = [record] if record is not None else []
        else:
            candidates = [self.records[n] for n in names]
        matches = [
            r
            for r in candidates
            if (name is None or r.name == name)
            and (cls_query is None or r.matches_class(cls_query))
            and (room is None or r.room == room)
        ]
        return self._paged_reply(matches, cmd.int("offset", 0))

    def cmd_listServices(self, request: Request) -> dict:
        return self._paged_reply(self._fresh_records(), request.command.int("offset", 0))

    # ------------------------------------------------------------------
    # Handlers: replication protocol
    # ------------------------------------------------------------------
    def cmd_dirReplicate(self, request: Request) -> dict:
        wires = request.command.vector("entries")
        applied = 0
        for wire in wires:
            try:
                entry = DirEntry.from_wire(wire)
            except (ValueError, IndexError):
                continue
            if self._apply_entry(entry):
                applied += 1
                self.replications_applied += 1
                self._m_repl_applied.inc()
        return {"applied": applied}

    def cmd_dirDigest(self, request: Request) -> dict:
        now = self.ctx.sim.now
        self.leases.expire(now)
        self._prune_tombstones(now)
        listing = tuple(
            "|".join(
                (_escape_field(name), str(entry.seq), _escape_field(entry.site))
            )
            for name, entry in sorted(self._entries.items())
        )
        result: dict = {"count": len(listing)}
        if listing:
            result["entries"] = listing
        return result

    def cmd_dirFetch(self, request: Request) -> dict:
        names = request.command.vector("names")
        found = tuple(
            self._entries[name].to_wire()
            for name in names[: self.LOOKUP_CHUNK]
            if name in self._entries
        )
        result: dict = {"count": len(found)}
        if found:
            result["entries"] = found
        return result

    def cmd_dirStats(self, request: Request) -> dict:
        return {
            "services": len(self.records),
            "entries": len(self._entries),
            "leader": 1 if self.is_leader else 0,
            "forwarded": self.forwarded_writes,
            "coordinated": self.coordinated_writes,
            "replications_sent": self.replications_sent,
            "replications_applied": self.replications_applied,
            "syncs": self.syncs_completed,
        }


class DirectoryWatcherDaemon(ACEDaemon):
    """Subscribes ``addNotification cmd=register/deregister`` on every
    directory replica and turns the callbacks into targeted
    :class:`~repro.core.lookup_cache.LookupCache` invalidations — the
    push half of the client cache's coherence story (the pull half is the
    lease-TTL expiry)."""

    service_type = "DirectoryWatcher"

    def __init__(self, ctx, name, host, **kwargs):
        kwargs.setdefault("authorize_commands", False)
        kwargs.setdefault("register_with_asd", False)
        super().__init__(ctx, name, host, **kwargs)
        self.invalidations = 0
        self.subscribed = 0

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "dirChanged",
            ArgSpec("source", ArgType.STRING),
            ArgSpec("trigger", ArgType.WORD),
            ArgSpec("principal", ArgType.STRING),
            ArgSpec("args", ArgType.STRING, required=False, default=""),
            description="directory mutation callback (Fig. 8 step 3)",
        )

    def on_started(self) -> None:
        self.ctx.lookup_cache.enabled = True
        self._spawn(self._subscribe(), "subscribe")

    def _subscribe(self) -> Generator:
        client = self._service_client()
        for address in self.ctx.directory_addresses():
            for watched in ("register", "deregister"):
                command = ACECmdLine(
                    "addNotification",
                    cmd=watched,
                    listener=self.name,
                    host=self.host.name,
                    port=self.port,
                    callback="dirChanged",
                )
                try:
                    yield from client.call_once(address, command)
                    self.subscribed += 1
                except (CallError, ConnectionClosed, ConnectionRefused):
                    self.ctx.trace.emit(
                        self.ctx.sim.now, self.name, "watch-failed", asd=str(address)
                    )

    def cmd_dirChanged(self, request: Request) -> dict:
        cmd = request.command
        trigger = cmd.str("trigger")
        payload = cmd.str("args", "")
        cache = self.ctx.lookup_cache
        purged = 0
        try:
            from repro.lang import parse_command

            original = parse_command(payload)
        except Exception:
            original = None
        if original is None or "name" not in original:
            purged = cache.invalidate_all()
        elif trigger == "register":
            record = ServiceRecord(
                name=original.str("name"),
                host=original.str("host", ""),
                port=original.int("port", 0),
                room=original.str("room", "unassigned"),
                cls=original.str("cls", "ACEService"),
            )
            purged = cache.invalidate_record(record)
        else:
            purged = cache.invalidate_service(original.str("name"))
        self.invalidations += purged
        return {"purged": purged}


#: Lookups are latency-sensitive but easy to retry: short attempts, tight
#: deadline, and the shared per-address breaker sheds load from a dead ASD.
LOOKUP_POLICY = CallPolicy(
    deadline=3.0,
    attempt_timeout=1.0,
    max_attempts=3,
    backoff_base=0.05,
    backoff_max=0.5,
)

#: Per-replica shape when failing over across the directory group: one
#: quick attempt per replica — the next replica *is* the retry.
LOOKUP_FAILOVER_POLICY = CallPolicy(
    deadline=2.0,
    attempt_timeout=1.0,
    max_attempts=1,
    backoff_base=0.05,
    backoff_max=0.2,
)

#: Follower → leader write forwarding: a single bounded attempt; on
#: failure the follower coordinates the write itself.  The budget must
#: stay well under the *client's* per-replica attempt timeout (1.0s in
#: the failover policies): a follower stalling on a dead leader would
#: otherwise time the client out and open its breaker on the one healthy
#: replica.  (A SYN to a crashed host burns the whole connect timeout in
#: this network model, so "try the leader" is never cheap when it's dead —
#: see also the forward cooldown in ``_forward_to_leader``.)
FORWARD_POLICY = CallPolicy(
    deadline=0.4,
    attempt_timeout=0.4,
    max_attempts=1,
    backoff_base=0.05,
    backoff_max=0.2,
    breaker_threshold=0,
)


def _directory_targets(client: ServiceClient, asd_address: Optional[Address]) -> List[Address]:
    """The replica addresses a lookup should try: the context's group when
    the explicit address belongs to it (or none was given), else just the
    explicitly named directory (tests point clients at bespoke ASDs)."""
    group = client.ctx.directory_addresses()
    if asd_address is None:
        return group
    if any(a == asd_address for a in group):
        return group
    return [asd_address]


def asd_lookup(
    client: ServiceClient,
    asd_address: Optional[Address] = None,
    *,
    name: Optional[str] = None,
    cls: Optional[str] = None,
    room: Optional[str] = None,
    policy: Optional[CallPolicy] = None,
    use_cache: bool = True,
) -> Generator:
    """Convenience: query the directory, return :class:`ServiceRecord`\\ s.

    This is the Fig. 7 client flow — with three scale-out layers on top:

    1. the shared :class:`~repro.core.lookup_cache.LookupCache` answers
       steady-state queries without touching the wire (TTL = the minimum
       remaining lease the directory reported, so the cache can never be
       staler than the lease mechanism already tolerates);
    2. wire queries fail over across every directory replica, so lookups
       survive 1–2 replica crashes;
    3. chunked replies are paged transparently (``next``/``offset``).

    When every replica is unreachable and ``use_cache`` is set, the last
    known-good result for the same query is returned instead of raising —
    stale addresses beat no addresses, and a dead endpoint in the cached
    list is caught by the caller's own connect failure.
    """
    args = {}
    if name is not None:
        args["name"] = name
    if cls is not None:
        args["cls"] = cls
    if room is not None:
        args["room"] = room
    ctx = client.ctx
    registry = ctx.resilience
    key = query_key(name, cls, room)
    # The TTL cache is only coherent with its invalidation watcher running
    # (``LookupCache.enabled``); the last-known-good fallback below needs
    # no coherence — it only answers when every replica is unreachable.
    ttl_cache = use_cache and ctx.lookup_cache.enabled
    if ttl_cache:
        cached = ctx.lookup_cache.get(key, ctx.sim.now)
        if cached is not None:
            return list(cached)
    targets = _directory_targets(client, asd_address)
    if not targets:
        raise CallError("no directory address configured")
    per_replica = policy or (
        LOOKUP_FAILOVER_POLICY if len(targets) > 1 else LOOKUP_POLICY
    )
    records: List[ServiceRecord] = []
    ttl: Optional[float] = None
    offset = 0
    try:
        while True:
            page_args = dict(args)
            if offset:
                page_args["offset"] = offset
            reply = yield from client.call_failover(
                targets, ACECmdLine("lookup", page_args), policy=per_replica
            )
            wires = reply.get("services", ())
            records.extend(
                ServiceRecord.from_wire(w)
                for w in (wires if isinstance(wires, tuple) else ())
            )
            page_ttl = reply.get("ttl")
            if isinstance(page_ttl, (int, float)):
                ttl = page_ttl if ttl is None else min(ttl, page_ttl)
            nxt = reply.get("next")
            if not isinstance(nxt, int) or nxt <= offset:
                break
            offset = nxt
    except (CallError, ConnectionClosed, ConnectionRefused):
        cached = registry.recall_lookup(key) if use_cache else None
        if cached is None:
            raise
        registry.stats.lookup_fallbacks += 1
        ctx.trace.emit(
            ctx.sim.now, client.principal, "lookup-fallback",
            asd=str(targets[0]), records=len(cached),
        )
        return list(cached)
    if offset:
        # Pages may have come from different replicas after a failover;
        # keep the first copy of any record seen twice.
        seen: set = set()
        records = [r for r in records if not (r.name in seen or seen.add(r.name))]
    if use_cache and records:
        registry.remember_lookup(key, records)
        if ttl_cache and ttl is not None:
            ctx.lookup_cache.put(key, records, ctx.sim.now, ttl)
    elif ttl_cache and not records:
        # Cache the *absence* too (only effective when ``negative_ttl`` is
        # configured): during a daemon's recovery window every client would
        # otherwise re-ask each replica on every retry.  The watcher's
        # register push purges this entry as soon as the name reappears.
        ctx.lookup_cache.put(key, (), ctx.sim.now, 0.0)
    return records


def asd_lookup_one(client, asd_address=None, **query) -> Generator:
    """Like :func:`asd_lookup` but returns exactly one record or raises."""
    records = yield from asd_lookup(client, asd_address, **query)
    if not records:
        raise CallError(f"no service matching {query!r}")
    return records[0]
