"""ASD — the ACE Service Directory (§2.4, Fig. 7).

The central listing of active services.  Services ``register`` at startup
(Fig. 9 step 3), ``renewLease`` periodically, ``deregister`` at shutdown;
clients ``lookup`` by name, class path, or room.  Leases purge crashed
services: a registration that stops renewing disappears after
``ctx.lease_duration`` seconds, so "other services don't waste time and
resources attempting to connect to a defunct ACE service".

Because registration is an ordinary ACE command, other daemons can watch
it with ``addNotification cmd=register ...`` and learn about new services
the moment they come up (Fig. 9 step 4) — no ASD-specific mechanism needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics
from repro.lang.wire import escape_field, split_wire
from repro.net import Address, ConnectionClosed, ConnectionRefused
from repro.core.client import CallError, ServiceClient
from repro.core.daemon import ACEDaemon, Request, ServiceError
from repro.core.leases import LeaseTable
from repro.core.policy import CallPolicy

# Backwards-compatible aliases: the escaping was born here and later
# promoted to repro.lang.wire so NetLogger and the obs exporter share it.
_escape_field = escape_field
_split_wire = split_wire


@dataclass(frozen=True)
class ServiceRecord:
    """One directory entry."""

    name: str
    host: str
    port: int
    room: str
    cls: str

    @property
    def address(self) -> Address:
        return Address(self.host, self.port)

    def to_wire(self) -> str:
        return "|".join(
            _escape_field(str(part))
            for part in (self.name, self.host, self.port, self.room, self.cls)
        )

    @classmethod
    def from_wire(cls, text: str) -> "ServiceRecord":
        name, host, port, room, klass = _split_wire(text)
        return cls(name, host, int(port), room, klass)

    def matches_class(self, cls_query: str) -> bool:
        """True when ``cls_query`` is a segment (or suffix path) of this
        record's class path, so ``PTZCamera`` matches ``.../PTZCamera/VCC3``."""
        segments = self.cls.split("/")
        query = cls_query.split("/")
        for start in range(len(segments) - len(query) + 1):
            if segments[start : start + len(query)] == query:
                return True
        return False


class ServiceDirectoryDaemon(ACEDaemon):
    """The directory itself (a 'robust application' per §5.3)."""

    service_type = "ServiceDirectory"

    def __init__(self, ctx, name, host, **kwargs):
        kwargs.setdefault("authorize_commands", False)  # bootstrap service
        kwargs.setdefault("register_with_asd", False)   # it IS the ASD
        super().__init__(ctx, name, host, **kwargs)
        self.records: Dict[str, ServiceRecord] = {}
        self.leases = LeaseTable(ctx.lease_duration, on_expire=self._lease_expired)

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "register",
            ArgSpec("name", ArgType.STRING),
            ArgSpec("host", ArgType.STRING),
            ArgSpec("port", ArgType.INTEGER),
            ArgSpec("room", ArgType.STRING, required=False, default="unassigned"),
            ArgSpec("cls", ArgType.STRING, required=False, default="ACEService"),
            description="enter the directory and receive a lease",
        )
        sem.define("deregister", ArgSpec("name", ArgType.STRING))
        sem.define("renewLease", ArgSpec("name", ArgType.STRING))
        sem.define(
            "lookup",
            ArgSpec("name", ArgType.STRING, required=False),
            ArgSpec("cls", ArgType.STRING, required=False),
            ArgSpec("room", ArgType.STRING, required=False),
            description="find services by name, class path segment, and/or room",
        )
        sem.define("listServices")

    def on_started(self) -> None:
        self._spawn(self._sweep_loop(), "lease-sweep")

    # ------------------------------------------------------------------
    def _lease_expired(self, name: str) -> None:
        self.records.pop(name, None)
        self.ctx.trace.emit(self.ctx.sim.now, self.name, "lease-expired", service=name)

    def _sweep_loop(self) -> Generator:
        """Purge lapsed leases even when no queries arrive."""
        interval = max(self.ctx.lease_duration * 0.25, 0.05)
        while self.running:
            yield self.ctx.sim.timeout(interval)
            self.leases.expire(self.ctx.sim.now)

    def _fresh_records(self) -> List[ServiceRecord]:
        self.leases.expire(self.ctx.sim.now)
        return [self.records[name] for name in sorted(self.records)]

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def cmd_register(self, request: Request) -> dict:
        cmd = request.command
        record = ServiceRecord(
            name=cmd.str("name"),
            host=cmd.str("host"),
            port=cmd.int("port"),
            room=cmd.str("room"),
            cls=cmd.str("cls"),
        )
        self.records[record.name] = record
        lease = self.leases.grant(record.name, self.ctx.sim.now)
        self.ctx.trace.emit(
            self.ctx.sim.now, self.name, "service-registered",
            service=record.name, cls=record.cls,
        )
        return {"lease": float(lease.duration)}

    def cmd_deregister(self, request: Request) -> dict:
        name = request.command.str("name")
        existed = self.leases.release(name)
        self.records.pop(name, None)
        if existed:
            self.ctx.trace.emit(self.ctx.sim.now, self.name, "service-deregistered", service=name)
        return {"removed": 1 if existed else 0}

    def cmd_renewLease(self, request: Request) -> dict:
        name = request.command.str("name")
        self.leases.expire(self.ctx.sim.now)
        lease = self.leases.renew(name, self.ctx.sim.now)
        if lease is None:
            raise ServiceError(f"no active lease for {name!r}; re-register")
        return {"lease": float(lease.duration), "renewals": lease.renewals}

    def cmd_lookup(self, request: Request) -> dict:
        cmd = request.command
        name = cmd.get("name")
        cls_query = cmd.get("cls")
        room = cmd.get("room")
        matches = [
            r
            for r in self._fresh_records()
            if (name is None or r.name == name)
            and (cls_query is None or r.matches_class(cls_query))
            and (room is None or r.room == room)
        ]
        result: dict = {"count": len(matches)}
        if matches:
            result["services"] = tuple(r.to_wire() for r in matches)
        return result

    def cmd_listServices(self, request: Request) -> dict:
        records = self._fresh_records()
        result: dict = {"count": len(records)}
        if records:
            result["services"] = tuple(r.to_wire() for r in records)
        return result


#: Lookups are latency-sensitive but easy to retry: short attempts, tight
#: deadline, and the shared per-address breaker sheds load from a dead ASD.
LOOKUP_POLICY = CallPolicy(
    deadline=3.0,
    attempt_timeout=1.0,
    max_attempts=3,
    backoff_base=0.05,
    backoff_max=0.5,
)


def asd_lookup(
    client: ServiceClient,
    asd_address: Address,
    *,
    name: Optional[str] = None,
    cls: Optional[str] = None,
    room: Optional[str] = None,
    policy: Optional[CallPolicy] = None,
    use_cache: bool = True,
) -> Generator:
    """Convenience: query the ASD, return a list of :class:`ServiceRecord`.

    This is the Fig. 7 client flow: ask the well-known ASD socket, get back
    machine:port addresses, connect directly.

    Calls ride the resilient RPC policy (deadline, retries, breaker).  When
    the ASD is unreachable and ``use_cache`` is set, the last non-empty
    result for the same query is returned instead of raising — stale
    addresses beat no addresses, and a dead endpoint in the cached list is
    caught by the caller's own connect failure.
    """
    args = {}
    if name is not None:
        args["name"] = name
    if cls is not None:
        args["cls"] = cls
    if room is not None:
        args["room"] = room
    registry = client.ctx.resilience
    key = (str(asd_address), name or "", cls or "", room or "")
    try:
        reply = yield from client.call_resilient(
            asd_address, ACECmdLine("lookup", args), policy=policy or LOOKUP_POLICY
        )
    except (CallError, ConnectionClosed, ConnectionRefused):
        cached = registry.recall_lookup(key) if use_cache else None
        if cached is None:
            raise
        registry.stats.lookup_fallbacks += 1
        client.ctx.trace.emit(
            client.ctx.sim.now, client.principal, "lookup-fallback",
            asd=str(asd_address), records=len(cached),
        )
        return list(cached)
    wires = reply.get("services", ())
    records = [
        ServiceRecord.from_wire(w) for w in (wires if isinstance(wires, tuple) else ())
    ]
    if use_cache and records:
        registry.remember_lookup(key, records)
    return records


def asd_lookup_one(client, asd_address, **query) -> Generator:
    """Like :func:`asd_lookup` but returns exactly one record or raises."""
    records = yield from asd_lookup(client, asd_address, **query)
    if not records:
        raise CallError(f"no service matching {query!r}")
    return records[0]
