"""Authorization Database service (§4.10, Fig. 10).

Stores KeyNote credential assertions per principal.  Services consult it
(step 2 of Fig. 10) before executing commands; the returned credentials are
"passed onto KeyNote, which is used to determine if a proper assertion or
chain of assertions are present".

Credentials are multi-line texts, but ACE strings cannot carry newlines, so
they cross the wire with ``\\n`` escapes (:func:`encode_credential` /
:func:`decode_credential`).
"""

from __future__ import annotations

from typing import Dict, List

from repro.lang import ArgSpec, ArgType, CommandSemantics
from repro.security.keynote import Assertion, KeyNoteError, parse_assertion
from repro.core.daemon import Request, ServiceError
from repro.services.base import DatabaseDaemon


def encode_credential(text: str) -> str:
    """Credential text → single-line wire form."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def decode_credential(text: str) -> str:
    """Wire form → credential text."""
    out: List[str] = []
    i = 0
    while i < len(text):
        if text[i] == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            out.append("\n" if nxt == "n" else nxt)
            i += 2
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


class AuthorizationDatabaseDaemon(DatabaseDaemon):
    """Stores per-principal KeyNote credentials (Fig. 10 step 2–4)."""

    service_type = "AuthorizationDatabase"

    def __init__(self, ctx, name, host, **kwargs):
        # Never authorize against itself: Fig. 10's lookup would recurse.
        kwargs["authorize_commands"] = False
        super().__init__(ctx, name, host, **kwargs)
        self._credentials: Dict[str, List[str]] = {}

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "storeCredential",
            ArgSpec("principal", ArgType.STRING),
            ArgSpec("credential", ArgType.STRING),
            description="store an encoded KeyNote assertion for a principal",
        )
        sem.define("getCredentials", ArgSpec("principal", ArgType.STRING))
        sem.define("revokeCredentials", ArgSpec("principal", ArgType.STRING))
        sem.define("listPrincipals")

    # -- plain-Python API used by the environment builder -------------------
    def install(self, principal: str, assertion: Assertion) -> None:
        """Directly install a credential (administrative path)."""
        self._credentials.setdefault(principal, []).append(assertion.to_text())

    def credentials_for(self, principal: str) -> List[Assertion]:
        return [parse_assertion(t) for t in self._credentials.get(principal, [])]

    # -- handlers ---------------------------------------------------------
    def cmd_storeCredential(self, request: Request) -> dict:
        cmd = request.command
        text = decode_credential(cmd.str("credential"))
        try:
            parse_assertion(text)  # reject garbage at the door
        except KeyNoteError as exc:
            raise ServiceError(f"malformed credential: {exc}")
        self._credentials.setdefault(cmd.str("principal"), []).append(text)
        return {"stored": 1}

    def cmd_getCredentials(self, request: Request) -> dict:
        principal = request.command.str("principal")
        texts = self._credentials.get(principal, [])
        result: dict = {"count": len(texts)}
        if texts:
            result["credentials"] = tuple(encode_credential(t) for t in texts)
        return result

    def cmd_revokeCredentials(self, request: Request) -> dict:
        removed = len(self._credentials.pop(request.command.str("principal"), []))
        return {"revoked": removed}

    def cmd_listPrincipals(self, request: Request) -> dict:
        result: dict = {"count": len(self._credentials)}
        if self._credentials:
            result["principals"] = tuple(sorted(self._credentials))
        return result
