"""WSS — Workspace Server (§4.5, §5.4).

Creates, names, tracks, and destroys user workspaces.  A workspace is one
VNC server session (§5.4): creating a workspace asks the SAL to launch a
``vncserver`` application "somewhere" (Scenario 1's SAL→SRM→HAL chain);
opening one launches a ``vncviewer`` on the user's current access point.
Passwords are generated and held by the WSS and written straight into the
VNC server ("the VNC password files were directly accessed and modified by
the WSS"), so identification via FIU/iButton is all a user ever does.

When the environment has a persistent store (``ctx.store_addresses``),
workspace records are checkpointed under ``/wss/workspaces/...`` and
restored at startup, so a restarted WSS still knows every live session
(§5.2's restart-application recipe applied to a core service).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics
from repro.lang.wire import join_wire, split_wire
from repro.net import Address, ConnectionClosed, ConnectionRefused
from repro.core.client import CallError
from repro.core.daemon import ACEDaemon, Request, ServiceError
from repro.services.asd import asd_lookup
from repro.services.base import Checkpointable


def vnc_service_name(session: str) -> str:
    """Deterministic ACE service name of the VNC server hosting a session."""
    return f"vnc.{session}"


@dataclass
class WorkspaceRecord:
    user: str
    name: str            # e.g. "john-default"
    session: str         # VNC session id (same as name)
    password: str
    server_service: str  # ACE service name of the VNC server daemon
    server_host: str = ""
    server_port: int = 0
    viewers: int = 0

    @property
    def server_address(self) -> Address:
        return Address(self.server_host, self.server_port)


class WorkspaceServerDaemon(Checkpointable, ACEDaemon):
    """Creates, names, tracks, opens, and destroys workspaces (§4.5)."""

    service_type = "WorkspaceServer"

    def __init__(self, ctx, name, host, *, admin_secret: str = "wss-secret",
                 persist: bool = True, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.admin_secret = admin_secret
        #: (user, workspace-name) -> record
        self.workspaces: Dict[Tuple[str, str], WorkspaceRecord] = {}
        self._pw_rng = ctx.rng.py(f"wss.{name}.passwords")
        #: checkpoint records in the persistent store (when one exists)
        self.persist = persist
        self.restored = 0
        self._store = None
        self._m_persisted = ctx.obs.metrics.counter(f"wss.{name}.persisted")
        self._m_restored = ctx.obs.metrics.counter(f"wss.{name}.restored")

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "createWorkspace",
            ArgSpec("user", ArgType.STRING),
            ArgSpec("name", ArgType.STRING, required=False),
            description="launch a VNC server session for the user (§7.1)",
        )
        sem.define(
            "ensureDefaultWorkspace",
            ArgSpec("user", ArgType.STRING),
            description="create the default workspace iff the user has none",
        )
        sem.define("listWorkspaces", ArgSpec("user", ArgType.STRING))
        sem.define(
            "openWorkspace",
            ArgSpec("user", ArgType.STRING),
            ArgSpec("display", ArgType.STRING),
            ArgSpec("name", ArgType.STRING, required=False),
            description="bring the workspace up on an access point (§7.3)",
        )
        sem.define(
            "destroyWorkspace",
            ArgSpec("user", ArgType.STRING),
            ArgSpec("name", ArgType.STRING),
        )

    # ------------------------------------------------------------------
    # Store-backed checkpointing (best effort; memory is the primary copy)
    # ------------------------------------------------------------------
    def on_started(self) -> None:
        if self._store_client() is not None:
            self._spawn(self._restore_workspaces(), "restore")

    def _store_client(self):
        if not self.persist or not self.ctx.store_addresses:
            return None
        if self._store is None:
            from repro.store.client import StoreClient

            # cache_reads: the WSS re-reads its own checkpoints (restore,
            # repeated lookups) far more often than anyone else writes them.
            self._store = StoreClient(
                self.ctx, self.host, list(self.ctx.store_addresses),
                principal=f"wss.{self.name}", cache_reads=True,
            )
        return self._store

    @staticmethod
    def _ws_path(user: str, name: str) -> str:
        return f"/wss/workspaces/{user}/{name}"

    def _persist_record(self, record: WorkspaceRecord) -> Generator:
        store = self._store_client()
        if store is None:
            return
        from repro.store.client import StoreUnavailable

        try:
            yield from store.put(self._ws_path(record.user, record.name), {
                "user": record.user, "name": record.name,
                "session": record.session, "password": record.password,
                "service": record.server_service, "host": record.server_host,
                "port": str(record.server_port),
            })
            self._m_persisted.inc()
        except (StoreUnavailable, CallError, ConnectionClosed, ConnectionRefused):
            pass

    def _unpersist_record(self, user: str, name: str) -> Generator:
        store = self._store_client()
        if store is None:
            return
        from repro.store.client import StoreUnavailable

        try:
            yield from store.delete(self._ws_path(user, name))
        except (StoreUnavailable, CallError, ConnectionClosed, ConnectionRefused):
            pass

    def _restore_workspaces(self) -> Generator:
        store = self._store_client()
        from repro.store.client import StoreUnavailable

        try:
            paths = yield from store.list("/wss/workspaces")
            for path in paths:
                attrs = yield from store.get(path)
                if not attrs:
                    continue
                key = (attrs.get("user", ""), attrs.get("name", ""))
                if not key[0] or not key[1] or key in self.workspaces:
                    continue
                self.workspaces[key] = WorkspaceRecord(
                    user=key[0], name=key[1],
                    session=attrs.get("session", key[1]),
                    password=attrs.get("password", ""),
                    server_service=attrs.get("service", ""),
                    server_host=attrs.get("host", ""),
                    server_port=int(attrs.get("port", "0") or 0),
                )
                self.restored += 1
                self._m_restored.inc()
            if self.restored:
                self.ctx.trace.emit(
                    self.ctx.sim.now, self.name, "workspaces-restored",
                    count=self.restored,
                )
        except (StoreUnavailable, CallError, ConnectionClosed, ConnectionRefused):
            pass

    def _respawn_kwargs(self) -> dict:
        return {"admin_secret": self.admin_secret, "persist": self.persist}

    # ------------------------------------------------------------------
    # Recovery-plane checkpointing (supervisor-driven, whole-state)
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> Tuple[str, ...]:
        return tuple(
            join_wire((
                r.user, r.name, r.session, r.password, r.server_service,
                r.server_host, r.server_port, r.viewers,
            ))
            for _, r in sorted(self.workspaces.items())
        )

    def restore_state(self, lines: Tuple[str, ...]) -> None:
        self.workspaces.clear()
        for line in lines:
            fields = split_wire(line)
            if len(fields) != 8:
                continue
            user, name, session, password, service, host, port, viewers = fields
            self.workspaces[(user, name)] = WorkspaceRecord(
                user=user, name=name, session=session, password=password,
                server_service=service, server_host=host,
                server_port=int(port), viewers=int(viewers),
            )

    # ------------------------------------------------------------------
    def _user_workspaces(self, user: str) -> List[WorkspaceRecord]:
        return [rec for (u, _), rec in sorted(self.workspaces.items()) if u == user]

    def _gen_password(self) -> str:
        return "pw%012x" % self._pw_rng.getrandbits(48)

    def _find_service(self, cls: Optional[str] = None, name: Optional[str] = None,
                      host: Optional[str] = None) -> Generator:
        client = self._service_client()
        records = yield from asd_lookup(client, self.ctx.asd_address, cls=cls, name=name)
        if host is not None:
            records = [r for r in records if r.host == host]
        return records

    def _create_workspace(self, user: str, ws_name: str) -> Generator:
        key = (user, ws_name)
        if key in self.workspaces:
            raise ServiceError(f"workspace {ws_name!r} already exists for {user!r}")
        password = self._gen_password()
        session = ws_name
        service_name = vnc_service_name(session)
        # Scenario 1: ask the SAL to start a VNC server session "somewhere".
        sals = yield from self._find_service(cls="SAL")
        if not sals:
            raise ServiceError("no SAL available to launch the VNC server")
        client = self._service_client()
        args = (
            f"session={session} owner={user} password={password} "
            f"secret={self.admin_secret}"
        )
        reply = yield from client.call_once(
            sals[0].address, ACECmdLine("launchApp", app="vncserver", args=args)
        )
        server_host = reply.str("host")
        # The daemon registers with the ASD under a deterministic name;
        # poll briefly until registration lands.
        record = WorkspaceRecord(
            user=user, name=ws_name, session=session, password=password,
            server_service=service_name, server_host=server_host,
        )
        for _ in range(20):
            found = yield from self._find_service(name=service_name)
            if found:
                record.server_host = found[0].host
                record.server_port = found[0].port
                break
            yield self.ctx.sim.timeout(0.1)
        else:
            raise ServiceError(f"VNC server {service_name!r} never registered")
        self.workspaces[key] = record
        yield from self._persist_record(record)
        self.ctx.trace.emit(
            self.ctx.sim.now, self.name, "workspace-created",
            user=user, workspace=ws_name, host=record.server_host,
        )
        return record

    # -- handlers -------------------------------------------------------------
    def cmd_createWorkspace(self, request: Request) -> Generator:
        cmd = request.command
        user = cmd.str("user")
        ws_name = cmd.get("name") or f"{user}-default"
        record = yield from self._create_workspace(user, ws_name)
        return {
            "user": user, "workspace": record.name,
            "host": record.server_host, "port": record.server_port,
        }

    def cmd_ensureDefaultWorkspace(self, request: Request) -> Generator:
        user = request.command.str("user")
        existing = self._user_workspaces(user)
        if existing:
            first = existing[0]
            return {"user": user, "workspace": first.name, "created": 0,
                    "host": first.server_host, "port": first.server_port}
        record = yield from self._create_workspace(user, f"{user}-default")
        return {"user": user, "workspace": record.name, "created": 1,
                "host": record.server_host, "port": record.server_port}

    def cmd_listWorkspaces(self, request: Request) -> dict:
        user = request.command.str("user")
        records = self._user_workspaces(user)
        result: dict = {"user": user, "count": len(records)}
        if records:
            result["workspaces"] = tuple(r.name for r in records)
        return result

    def cmd_openWorkspace(self, request: Request) -> Generator:
        """Scenario 3: launch a viewer at the user's access point."""
        cmd = request.command
        user = cmd.str("user")
        display = cmd.str("display")
        records = self._user_workspaces(user)
        if not records:
            raise ServiceError(f"user {user!r} has no workspaces")
        ws_name = cmd.get("name")
        if ws_name is None:
            record = records[0]
        else:
            matching = [r for r in records if r.name == ws_name]
            if not matching:
                raise ServiceError(f"user {user!r} has no workspace {ws_name!r}")
            record = matching[0]
        hals = yield from self._find_service(cls="HAL", host=display)
        if not hals:
            raise ServiceError(f"no HAL on display host {display!r}")
        client = self._service_client()
        args = (
            f"server={record.server_host}:{record.server_port} "
            f"session={record.session} password={record.password}"
        )
        reply = yield from client.call_once(
            hals[0].address, ACECmdLine("launch", app="vncviewer", args=args)
        )
        record.viewers += 1
        self.ctx.trace.emit(
            self.ctx.sim.now, self.name, "workspace-opened",
            user=user, workspace=record.name, display=display,
        )
        return {"user": user, "workspace": record.name,
                "viewer_pid": reply.int("pid"), "display": display}

    def cmd_destroyWorkspace(self, request: Request) -> Generator:
        cmd = request.command
        key = (cmd.str("user"), cmd.str("name"))
        record = self.workspaces.pop(key, None)
        if record is None:
            raise ServiceError(f"no workspace {key[1]!r} for user {key[0]!r}")
        yield from self._unpersist_record(key[0], key[1])
        client = self._service_client()
        try:
            yield from client.call_once(
                record.server_address,
                ACECmdLine("destroySession", session=record.session,
                           admin=self.admin_secret),
            )
        except (CallError, ConnectionClosed, ConnectionRefused):
            pass  # server already gone; the record removal is what matters
        return {"removed": 1}
