"""Occupancy-driven lighting (§9: "automatic … lighting control systems").

Two pieces:

* :class:`LightDaemon` — a trivial dimmable light device.
* :class:`LightingControllerDaemon` — the automation: it watches every
  identification device (same notification plumbing as the ID Monitor),
  turns the lights of a room on when someone identifies there, and runs a
  sweep that turns lights off in rooms whose last sighting is older than
  the idle timeout.  Occupancy state is the same information the tracker
  keeps; here it drives actuators.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics, parse_command
from repro.net import Address, ConnectionClosed, ConnectionRefused
from repro.core.client import CallError
from repro.core.daemon import ACEDaemon, Request, ServiceError
from repro.services.asd import asd_lookup
from repro.services.devices import DeviceDaemon
from repro.services.idmon import ID_DEVICE_CLASSES


class LightDaemon(DeviceDaemon):
    """A dimmable room light."""

    service_type = "Light"

    def __init__(self, ctx, name, host, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.level = 0  # 0..100

    def build_semantics(self, sem: CommandSemantics) -> None:
        super().build_semantics(sem)
        sem.define("setLevel", ArgSpec("level", ArgType.INTEGER))

    def cmd_setLevel(self, request: Request) -> dict:
        level = request.command.int("level")
        if not 0 <= level <= 100:
            raise ServiceError("level must be 0..100")
        self.level = level
        self.powered = level > 0
        return {"level": level}

    def device_state(self) -> dict:
        state = super().device_state()
        state["level"] = self.level
        return state


class LightingControllerDaemon(ACEDaemon):
    """Lights follow people."""

    service_type = "LightingController"

    def __init__(self, ctx, name, host, *, idle_timeout: float = 300.0,
                 on_level: int = 80, sweep_interval: float = 30.0, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.idle_timeout = idle_timeout
        self.on_level = on_level
        self.sweep_interval = sweep_interval
        #: room -> time of last identification there
        self.last_activity: Dict[str, float] = {}
        self._subscribed: set = set()

    def build_semantics(self, sem: CommandSemantics) -> None:
        notify_args = (
            ArgSpec("source", ArgType.STRING, required=False),
            ArgSpec("trigger", ArgType.STRING, required=False),
            ArgSpec("principal", ArgType.STRING, required=False),
            ArgSpec("args", ArgType.STRING, required=False),
        )
        sem.define("onIdentified", *notify_args)
        sem.define("onServiceRegistered", *notify_args)
        sem.define("getRoomState", ArgSpec("room", ArgType.STRING))

    def on_started(self) -> None:
        self._spawn(self._watch_asd(), "watch-asd")
        self._spawn(self._subscribe_all(), "subscribe")
        self._spawn(self._sweep(), "idle-sweep")

    # -- subscription plumbing ----------------------------------------------
    def _watch_asd(self) -> Generator:
        if self.ctx.asd_address is None:
            return
        client = self._service_client()
        try:
            yield from client.call_once(
                self.ctx.asd_address,
                ACECmdLine("addNotification", cmd="register", listener=self.name,
                           host=self.host.name, port=self.port,
                           callback="onServiceRegistered"))
        except (CallError, ConnectionClosed, ConnectionRefused):
            pass

    def _subscribe_all(self) -> Generator:
        client = self._service_client()
        for cls in ID_DEVICE_CLASSES:
            try:
                devices = yield from asd_lookup(client, self.ctx.asd_address, cls=cls)
            except (CallError, ConnectionClosed, ConnectionRefused):
                continue
            for device in devices:
                yield from self._subscribe(device.name, device.address)

    def _subscribe(self, name: str, address: Address) -> Generator:
        if name in self._subscribed:
            return
        client = self._service_client()
        try:
            yield from client.call_once(
                address,
                ACECmdLine("addNotification", cmd="identified", listener=self.name,
                           host=self.host.name, port=self.port,
                           callback="onIdentified"))
            self._subscribed.add(name)
        except (CallError, ConnectionClosed, ConnectionRefused):
            pass

    def cmd_onServiceRegistered(self, request: Request) -> Generator:
        text = request.command.get("args")
        if not text:
            return {}
        try:
            event = parse_command(text)
        except Exception:
            return {}
        if not any(c in event.str("cls", "").split("/") for c in ID_DEVICE_CLASSES):
            return {}
        yield from self._subscribe(event.str("name"),
                                   Address(event.str("host"), event.int("port")))
        return {}

    # -- the automation -------------------------------------------------------
    def _room_lights(self, room: str) -> Generator:
        client = self._service_client()
        try:
            lights = yield from asd_lookup(client, self.ctx.asd_address,
                                           cls="Light", room=room)
        except (CallError, ConnectionClosed, ConnectionRefused):
            return []
        return lights

    def _set_room_level(self, room: str, level: int) -> Generator:
        lights = yield from self._room_lights(room)
        client = self._service_client()
        changed = 0
        for light in lights:
            try:
                yield from client.call_once(
                    light.address, ACECmdLine("setLevel", level=level))
                changed += 1
            except (CallError, ConnectionClosed, ConnectionRefused):
                continue
        if changed:
            self.ctx.trace.emit(self.ctx.sim.now, self.name, "lights-set",
                                room=room, level=level, lights=changed)
        return changed

    def cmd_onIdentified(self, request: Request) -> Generator:
        text = request.command.get("args")
        if not text:
            return {}
        try:
            event = parse_command(text)
        except Exception:
            return {}
        room = event.str("location")
        self.last_activity[room] = self.ctx.sim.now
        yield from self._set_room_level(room, self.on_level)
        return {"room": room}

    def _sweep(self) -> Generator:
        while self.running:
            yield self.ctx.sim.timeout(self.sweep_interval)
            now = self.ctx.sim.now
            for room, last in list(self.last_activity.items()):
                if now - last >= self.idle_timeout:
                    yield from self._set_room_level(room, 0)
                    del self.last_activity[room]

    def cmd_getRoomState(self, request: Request) -> dict:
        room = request.command.str("room")
        last = self.last_activity.get(room)
        return {
            "room": room,
            "occupied": 1 if last is not None else 0,
            "idle_s": round(self.ctx.sim.now - last, 3) if last is not None else -1.0,
        }
