"""Personnel tracker — a *non-human ACE user* (§1.1).

The paper's taxonomy: "Non-human users are high-level applications that
utilize ACE services on their own to provide automation within an ACE.
Examples of this would be video monitoring systems, personnel tracking
systems".  This daemon is that example: it subscribes to every
identification device's ``identified`` notifications (like the ID
Monitor), but instead of opening workspaces it accumulates movement
histories and answers location/occupancy queries — the substrate for the
§9 wishlist items (personnel tracking, adaptive camera systems).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Tuple

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics, parse_command
from repro.net import Address, ConnectionClosed, ConnectionRefused
from repro.core.client import CallError
from repro.core.daemon import ACEDaemon, Request, ServiceError
from repro.services.asd import asd_lookup
from repro.services.idmon import ID_DEVICE_CLASSES


@dataclass
class Sighting:
    time: float
    location: str
    device: str


class PersonnelTrackerDaemon(ACEDaemon):
    """Movement histories and occupancy from identification events."""

    service_type = "PersonnelTracker"

    def __init__(self, ctx, name, host, *, history_limit: int = 1000, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.history_limit = history_limit
        self.histories: Dict[str, List[Sighting]] = {}
        self._subscribed: set = set()

    def build_semantics(self, sem: CommandSemantics) -> None:
        notify_args = (
            ArgSpec("source", ArgType.STRING, required=False),
            ArgSpec("trigger", ArgType.STRING, required=False),
            ArgSpec("principal", ArgType.STRING, required=False),
            ArgSpec("args", ArgType.STRING, required=False),
        )
        sem.define("onIdentified", *notify_args)
        sem.define("onServiceRegistered", *notify_args)
        sem.define("whereIsUser", ArgSpec("username", ArgType.STRING))
        sem.define(
            "trackHistory",
            ArgSpec("username", ArgType.STRING),
            ArgSpec("limit", ArgType.INTEGER, required=False, default=10),
        )
        sem.define("roomOccupancy", ArgSpec("room", ArgType.STRING))

    def on_started(self) -> None:
        self._spawn(self._watch_registrations(), "watch-asd")
        self._spawn(self._initial_subscribe(), "subscribe")

    # -- subscription plumbing (same pattern as the ID Monitor) -----------
    def _watch_registrations(self) -> Generator:
        if self.ctx.asd_address is None:
            return
        client = self._service_client()
        try:
            yield from client.call_once(
                self.ctx.asd_address,
                ACECmdLine("addNotification", cmd="register", listener=self.name,
                           host=self.host.name, port=self.port,
                           callback="onServiceRegistered"),
            )
        except (CallError, ConnectionClosed, ConnectionRefused):
            pass

    def _initial_subscribe(self) -> Generator:
        client = self._service_client()
        for cls in ID_DEVICE_CLASSES:
            try:
                devices = yield from asd_lookup(client, self.ctx.asd_address, cls=cls)
            except (CallError, ConnectionClosed, ConnectionRefused):
                continue
            for device in devices:
                yield from self._subscribe_device(device.name, device.address)

    def _subscribe_device(self, name: str, address: Address) -> Generator:
        if name in self._subscribed:
            return
        client = self._service_client()
        try:
            yield from client.call_once(
                address,
                ACECmdLine("addNotification", cmd="identified", listener=self.name,
                           host=self.host.name, port=self.port,
                           callback="onIdentified"),
            )
            self._subscribed.add(name)
        except (CallError, ConnectionClosed, ConnectionRefused):
            pass

    def cmd_onServiceRegistered(self, request: Request) -> Generator:
        text = request.command.get("args")
        if not text:
            return {}
        try:
            event = parse_command(text)
        except Exception:
            return {}
        if not any(c in event.str("cls", "").split("/") for c in ID_DEVICE_CLASSES):
            return {}
        yield from self._subscribe_device(
            event.str("name"), Address(event.str("host"), event.int("port"))
        )
        return {}

    # -- tracking ----------------------------------------------------------
    def cmd_onIdentified(self, request: Request) -> dict:
        text = request.command.get("args")
        if not text:
            return {}
        try:
            event = parse_command(text)
        except Exception:
            return {}
        username = event.str("username")
        sighting = Sighting(
            time=self.ctx.sim.now,
            location=event.str("location"),
            device=str(request.command.get("source", "?")),
        )
        history = self.histories.setdefault(username, [])
        history.append(sighting)
        if len(history) > self.history_limit:
            del history[: self.history_limit // 10]
        return {"username": username}

    def cmd_whereIsUser(self, request: Request) -> dict:
        username = request.command.str("username")
        history = self.histories.get(username)
        if not history:
            raise ServiceError(f"never seen user {username!r}")
        last = history[-1]
        return {"username": username, "location": last.location,
                "seen_at": round(last.time, 6), "device": last.device}

    def cmd_trackHistory(self, request: Request) -> dict:
        cmd = request.command
        history = self.histories.get(cmd.str("username"), [])
        limit = cmd.int("limit", 10)
        tail = history[-limit:] if limit > 0 else []
        result: dict = {"count": len(history)}
        if tail:
            result["sightings"] = tuple(
                f"{s.time:.3f}|{s.location}|{s.device}" for s in tail
            )
        return result

    def cmd_roomOccupancy(self, request: Request) -> dict:
        """Who was last seen in this room (and hasn't been seen elsewhere)."""
        room = request.command.str("room")
        present = sorted(
            user for user, history in self.histories.items()
            if history and history[-1].location == room
        )
        result: dict = {"room": room, "count": len(present)}
        if present:
            result["users"] = tuple(present)
        return result
