"""Streaming substrate: media chunks, the stream-daemon base, and the
Distribution (§4.13) and Converter (§4.12) services.

Media flows over the daemons' UDP data channels (§2.1.1): a source pushes
:class:`MediaChunk` datagrams at a sink daemon's port; stream daemons
process each chunk in ``on_datagram`` and forward the result to their
registered sinks.  Pipelines like Fig. 13 (capture → converter → storage)
and Fig. 15 (the audio conference) are built by chaining ``addSink``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.lang import ArgSpec, ArgType, CommandSemantics
from repro.net import Address
from repro.core.daemon import ACEDaemon, Request, ServiceError


@dataclass
class MediaChunk:
    """One unit of streamed media."""

    kind: str          # "audio" | "video"
    fmt: str           # "f32" | "pcm16" | "raw8" | "z" (zlib-compressed)
    seq: int
    timestamp: float
    data: bytes        # encoded payload
    meta: Dict[str, Any] = field(default_factory=dict)

    def wire_size(self) -> int:
        return len(self.data) + 40

    # -- audio codec helpers ------------------------------------------------
    @classmethod
    def from_audio(cls, samples: np.ndarray, seq: int, timestamp: float,
                   fmt: str = "f32") -> "MediaChunk":
        samples = np.asarray(samples, dtype=np.float32)
        if fmt == "f32":
            data = samples.tobytes()
        elif fmt == "pcm16":
            data = (np.clip(samples, -1.0, 1.0) * 32767.0).astype("<i2").tobytes()
        else:
            raise ServiceError(f"unknown audio format {fmt!r}")
        return cls("audio", fmt, seq, timestamp, data)

    def audio(self) -> np.ndarray:
        if self.kind != "audio":
            raise ServiceError(f"not an audio chunk: {self.kind}")
        if self.fmt == "f32":
            return np.frombuffer(self.data, dtype=np.float32).copy()
        if self.fmt == "pcm16":
            return np.frombuffer(self.data, dtype="<i2").astype(np.float32) / 32767.0
        raise ServiceError(f"cannot decode audio format {self.fmt!r}")

    # -- video codec helpers --------------------------------------------------
    @classmethod
    def from_frame(cls, frame: np.ndarray, seq: int, timestamp: float) -> "MediaChunk":
        frame = np.asarray(frame, dtype=np.uint8)
        return cls("video", "raw8", seq, timestamp, frame.tobytes(),
                   meta={"shape": frame.shape})

    def frame(self) -> np.ndarray:
        if self.kind != "video":
            raise ServiceError(f"not a video chunk: {self.kind}")
        if self.fmt == "raw8":
            return np.frombuffer(self.data, dtype=np.uint8).reshape(self.meta["shape"])
        if self.fmt == "z":
            raw = zlib.decompress(self.data)
            return np.frombuffer(raw, dtype=np.uint8).reshape(self.meta["shape"])
        raise ServiceError(f"cannot decode video format {self.fmt!r}")


class StreamDaemon(ACEDaemon):
    """Base for anything that consumes/produces media streams."""

    service_type = "Stream"

    def __init__(self, ctx, name, host, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.sinks: List[Address] = []
        self.chunks_in = 0
        self.chunks_out = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "addSink",
            ArgSpec("host", ArgType.STRING),
            ArgSpec("port", ArgType.INTEGER),
            description="forward processed chunks to this UDP endpoint",
        )
        sem.define(
            "removeSink",
            ArgSpec("host", ArgType.STRING),
            ArgSpec("port", ArgType.INTEGER),
        )
        sem.define("getStreamStats")

    # -- sink plumbing ---------------------------------------------------------
    def cmd_addSink(self, request: Request) -> dict:
        sink = Address(request.command.str("host"), request.command.int("port"))
        if sink not in self.sinks:
            self.sinks.append(sink)
        return {"sinks": len(self.sinks)}

    def cmd_removeSink(self, request: Request) -> dict:
        sink = Address(request.command.str("host"), request.command.int("port"))
        removed = sink in self.sinks
        if removed:
            self.sinks.remove(sink)
        return {"removed": 1 if removed else 0}

    def cmd_getStreamStats(self, request: Request) -> dict:
        return {
            "chunks_in": self.chunks_in,
            "chunks_out": self.chunks_out,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "sinks": len(self.sinks),
        }

    def emit(self, chunk: MediaChunk) -> Generator:
        """Send a chunk to every sink."""
        for sink in list(self.sinks):
            self.chunks_out += 1
            self.bytes_out += chunk.wire_size()
            yield from self._datagram.send(sink, chunk)

    # -- inbound --------------------------------------------------------------
    def on_datagram(self, source: Address, payload: Any):
        if not isinstance(payload, MediaChunk):
            return None
        self.chunks_in += 1
        self.bytes_in += payload.wire_size()
        return self.on_chunk(source, payload)

    def on_chunk(self, source: Address, chunk: MediaChunk):
        """Override: process one chunk (method or generator).  Default:
        pass-through (which is exactly the Distribution service)."""
        return self.emit(chunk)


class DistributionDaemon(StreamDaemon):
    """§4.13: forward one input stream to N subscribed services (Fig. 14)."""

    service_type = "Distribution"


class ConverterDaemon(StreamDaemon):
    """§4.12: convert stream data between formats (Fig. 13).

    Supported conversions:

    * audio ``f32 → pcm16`` and back (bandwidth halving, real quantization);
    * video ``raw8 → z`` (zlib; a stand-in for the paper's MPEG step with a
      genuine, content-dependent compression ratio) and back.
    """

    service_type = "Converter"

    CONVERSIONS = ("f32:pcm16", "pcm16:f32", "raw8:z", "z:raw8")

    def __init__(self, ctx, name, host, *, conversion: str = "raw8:z", **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.set_conversion(conversion)

    def set_conversion(self, conversion: str) -> None:
        if conversion not in self.CONVERSIONS:
            raise ServiceError(
                f"unknown conversion {conversion!r}; supported: {self.CONVERSIONS}"
            )
        self.conversion = conversion
        self.from_fmt, self.to_fmt = conversion.split(":")

    def build_semantics(self, sem: CommandSemantics) -> None:
        super().build_semantics(sem)
        sem.define("setConversion", ArgSpec("conversion", ArgType.STRING))

    def cmd_setConversion(self, request: Request) -> dict:
        self.set_conversion(request.command.str("conversion"))
        return {"conversion": self.conversion}

    def convert(self, chunk: MediaChunk) -> MediaChunk:
        if chunk.fmt != self.from_fmt:
            raise ServiceError(
                f"converter {self.conversion} got {chunk.fmt!r} chunk"
            )
        if self.conversion == "f32:pcm16":
            return MediaChunk.from_audio(chunk.audio(), chunk.seq, chunk.timestamp, "pcm16")
        if self.conversion == "pcm16:f32":
            return MediaChunk.from_audio(chunk.audio(), chunk.seq, chunk.timestamp, "f32")
        if self.conversion == "raw8:z":
            return MediaChunk("video", "z", chunk.seq, chunk.timestamp,
                              zlib.compress(chunk.data, level=6), dict(chunk.meta))
        if self.conversion == "z:raw8":
            return MediaChunk("video", "raw8", chunk.seq, chunk.timestamp,
                              zlib.decompress(chunk.data), dict(chunk.meta))
        raise ServiceError(f"unhandled conversion {self.conversion}")

    def on_chunk(self, source: Address, chunk: MediaChunk) -> Generator:
        converted = self.convert(chunk)
        # Conversion costs CPU proportional to the payload.
        yield from self.host.execute(0.01 * len(chunk.data) / 1024.0 + 0.5)
        yield from self.emit(converted)


class StreamSink:
    """A plain UDP endpoint that collects chunks (test/measurement probe)."""

    def __init__(self, ctx, host, port: Optional[int] = None):
        self.ctx = ctx
        self.sock = ctx.net.bind_datagram(host, port)
        self.chunks: List[MediaChunk] = []
        self.bytes_received = 0

    @property
    def address(self) -> Address:
        return self.sock.address

    def drain(self) -> int:
        """Pull everything pending; returns how many chunks arrived."""
        count = 0
        while True:
            found, item = self.sock.try_recv()
            if not found:
                return count
            _source, chunk = item
            if isinstance(chunk, MediaChunk):
                self.chunks.append(chunk)
                self.bytes_received += chunk.wire_size()
                count += 1

    def audio_signal(self) -> np.ndarray:
        """Concatenate all received audio chunks in seq order."""
        ordered = sorted((c for c in self.chunks if c.kind == "audio"), key=lambda c: c.seq)
        if not ordered:
            return np.zeros(0, dtype=np.float32)
        return np.concatenate([c.audio() for c in ordered])
