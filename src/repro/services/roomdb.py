"""Room Database service (§4.11).

Keeps the spatial model of the ACE: buildings, rooms, room dimensions, and
which services sit where (with 3D positions, so a PTZ camera can "establish
a 3D coordinate system for referencing the room space").  Daemons register
their location here as step 2 of the startup sequence (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.lang import ArgSpec, ArgType, CommandSemantics
from repro.lang.wire import join_wire, split_wire
from repro.core.daemon import Request, ServiceError
from repro.services.base import Checkpointable, DatabaseDaemon


@dataclass
class RoomInfo:
    """One room: geometry plus resident services."""

    name: str
    building: str = ""
    #: width, depth, height in metres (0,0,0 = unknown)
    dims: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    #: service name -> (host, port, x, y, z)
    services: Dict[str, Tuple[str, int, float, float, float]] = field(default_factory=dict)


class RoomDatabaseDaemon(Checkpointable, DatabaseDaemon):
    """The spatial model of the ACE (§4.11)."""

    service_type = "RoomDatabase"

    def __init__(self, ctx, name, host, **kwargs):
        kwargs.setdefault("authorize_commands", False)  # bootstrap service
        super().__init__(ctx, name, host, **kwargs)
        self.rooms: Dict[str, RoomInfo] = {}

    # ------------------------------------------------------------------
    # Recovery-plane checkpointing: one ``room`` line per room (geometry)
    # followed by one ``svc`` line per placed service.
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> Tuple[str, ...]:
        lines = []
        for name in sorted(self.rooms):
            room = self.rooms[name]
            w, d, h = room.dims
            lines.append(join_wire(("room", name, room.building, w, d, h)))
        for name in sorted(self.rooms):
            room = self.rooms[name]
            for svc in sorted(room.services):
                host, port, x, y, z = room.services[svc]
                lines.append(join_wire(("svc", name, svc, host, port, x, y, z)))
        return tuple(lines)

    def restore_state(self, lines: Tuple[str, ...]) -> None:
        self.rooms.clear()
        for line in lines:
            fields = split_wire(line)
            if fields[0] == "room" and len(fields) == 6:
                _, name, building, w, d, h = fields
                self.rooms[name] = RoomInfo(
                    name, building=building,
                    dims=(float(w), float(d), float(h)),
                )
            elif fields[0] == "svc" and len(fields) == 8:
                _, name, svc, host, port, x, y, z = fields
                room = self.rooms.setdefault(name, RoomInfo(name))
                room.services[svc] = (
                    host, int(port), float(x), float(y), float(z),
                )

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "registerRoom",
            ArgSpec("room", ArgType.STRING),
            ArgSpec("building", ArgType.STRING, required=False, default=""),
            ArgSpec("dims", ArgType.VECTOR, required=False),
            description="declare a room and its physical dimensions",
        )
        sem.define(
            "registerService",
            ArgSpec("service", ArgType.STRING),
            ArgSpec("room", ArgType.STRING),
            ArgSpec("host", ArgType.STRING),
            ArgSpec("port", ArgType.INTEGER),
            ArgSpec("position", ArgType.VECTOR, required=False),
            description="place a service in a room (Fig. 9 step 2)",
        )
        sem.define("removeService", ArgSpec("service", ArgType.STRING))
        sem.define("lookupRoom", ArgSpec("room", ArgType.STRING))
        sem.define("whereIs", ArgSpec("service", ArgType.STRING))
        sem.define("listRooms")
        sem.define("roomDims", ArgSpec("room", ArgType.STRING))

    # ------------------------------------------------------------------
    def _room(self, name: str, create: bool = False) -> RoomInfo:
        if name not in self.rooms:
            if not create:
                raise ServiceError(f"unknown room {name!r}")
            self.rooms[name] = RoomInfo(name)
        return self.rooms[name]

    def cmd_registerRoom(self, request: Request) -> dict:
        cmd = request.command
        room = self._room(cmd.str("room"), create=True)
        room.building = cmd.str("building", room.building or "")
        dims = cmd.get("dims")
        if dims is not None:
            if len(dims) != 3:
                raise ServiceError("dims must be a 3-vector {w,d,h}")
            room.dims = tuple(float(v) for v in dims)
        return {"room": room.name}

    def cmd_registerService(self, request: Request) -> dict:
        cmd = request.command
        room = self._room(cmd.str("room"), create=True)
        position = cmd.get("position", (0.0, 0.0, 0.0))
        if len(position) != 3:
            raise ServiceError("position must be a 3-vector {x,y,z}")
        # A service lives in exactly one room; relocate if re-registered.
        self._drop_service(cmd.str("service"))
        room.services[cmd.str("service")] = (
            cmd.str("host"),
            cmd.int("port"),
            float(position[0]),
            float(position[1]),
            float(position[2]),
        )
        return {"room": room.name}

    def _drop_service(self, service: str) -> bool:
        for room in self.rooms.values():
            if service in room.services:
                del room.services[service]
                return True
        return False

    def cmd_removeService(self, request: Request) -> dict:
        removed = self._drop_service(request.command.str("service"))
        return {"removed": 1 if removed else 0}

    def cmd_lookupRoom(self, request: Request) -> dict:
        room = self._room(request.command.str("room"))
        result: dict = {"room": room.name, "count": len(room.services)}
        if room.services:
            result["services"] = tuple(
                f"{name}|{host}|{port}|{x}|{y}|{z}"
                for name, (host, port, x, y, z) in sorted(room.services.items())
            )
        return result

    def cmd_whereIs(self, request: Request) -> dict:
        service = request.command.str("service")
        for room in self.rooms.values():
            if service in room.services:
                host, port, x, y, z = room.services[service]
                return {"room": room.name, "host": host, "port": port, "position": (x, y, z)}
        raise ServiceError(f"service {service!r} not placed in any room")

    def cmd_listRooms(self, request: Request) -> dict:
        result: dict = {"count": len(self.rooms)}
        if self.rooms:
            result["rooms"] = tuple(sorted(self.rooms))
        return result

    def cmd_roomDims(self, request: Request) -> dict:
        room = self._room(request.command.str("room"))
        return {"dims": room.dims, "building": room.building or "unknown"}
