"""SRM — System Resource Monitor (§4.2, Fig. 11).

Aggregates every HRM in the environment (discovered through the ASD by
class ``HRM``) into a system-wide view, and answers placement questions:
``selectHost`` returns the machine "most suitable (has the most free
resources)" for running an application — the policy the SAL consults in
Scenario 1.

Scoring: lower is better; ``run_queue`` dominates (a queued CPU means work
waits), then utilization, then *negative* speed so faster idle machines win
ties.  ``selectHost`` takes optional minimum memory/disk requirements.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics
from repro.core.client import CallError
from repro.core.daemon import ACEDaemon, Request, ServiceError
from repro.net import ConnectionClosed, ConnectionRefused
from repro.services.asd import asd_lookup


class SystemResourceMonitorDaemon(ACEDaemon):
    """System-wide resource view + host selection (§4.2, Fig. 11)."""

    service_type = "SRM"

    def __init__(self, ctx, name, host, *, poll_interval: float = 5.0, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.poll_interval = poll_interval
        #: host name -> latest HRM report
        self.reports: Dict[str, dict] = {}
        self._report_times: Dict[str, float] = {}

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define("getSystemResources", description="all known host reports")
        sem.define(
            "selectHost",
            ArgSpec("min_mem_mb", ArgType.NUMBER, required=False, default=0.0),
            ArgSpec("min_disk_mb", ArgType.NUMBER, required=False, default=0.0),
            ArgSpec("exclude", ArgType.STRING, required=False, default=""),
            description="pick the least-loaded suitable host (Fig. 11)",
        )
        sem.define("refresh", description="poll all HRMs now")

    def on_started(self) -> None:
        self._spawn(self._poll_loop(), "poller")

    # ------------------------------------------------------------------
    def _poll_loop(self) -> Generator:
        while self.running:
            try:
                yield from self._poll_once()
            except Exception:
                pass
            yield self.ctx.sim.timeout(self.poll_interval)

    def _poll_once(self) -> Generator:
        """"Regular communications ... with all the HRMs" (§7.1)."""
        client = self._service_client()
        if self.ctx.asd_address is None:
            return
        try:
            hrms = yield from asd_lookup(client, self.ctx.asd_address, cls="HRM")
        except (CallError, ConnectionClosed, ConnectionRefused):
            return
        for record in hrms:
            try:
                reply = yield from client.call_once(
                    record.address, ACECmdLine("getResources")
                )
            except (CallError, ConnectionClosed, ConnectionRefused):
                self.reports.pop(record.host, None)
                continue
            self.reports[reply.str("host")] = {
                "bogomips": reply.float("bogomips"),
                "cores": reply.int("cores"),
                "cpu_load": reply.float("cpu_load"),
                "run_queue": reply.int("run_queue"),
                "mem_free_mb": reply.float("mem_free_mb"),
                "disk_free_mb": reply.float("disk_free_mb"),
            }
            self._report_times[reply.str("host")] = self.ctx.sim.now

    @staticmethod
    def score(report: dict) -> float:
        """Lower = more suitable."""
        return (
            report["run_queue"] * 10.0
            + report["cpu_load"]
            - report["bogomips"] / 1e6
        )

    def choose(
        self,
        min_mem_mb: float = 0.0,
        min_disk_mb: float = 0.0,
        exclude: Optional[List[str]] = None,
    ) -> Optional[str]:
        exclude = set(exclude or ())
        candidates = [
            (self.score(rep), host)
            for host, rep in sorted(self.reports.items())
            if host not in exclude
            and rep["mem_free_mb"] >= min_mem_mb
            and rep["disk_free_mb"] >= min_disk_mb
        ]
        if not candidates:
            return None
        return min(candidates)[1]

    # ------------------------------------------------------------------
    def cmd_refresh(self, request: Request):
        yield from self._poll_once()
        return {"hosts": len(self.reports)}

    def cmd_getSystemResources(self, request: Request) -> dict:
        result: dict = {"count": len(self.reports)}
        if self.reports:
            result["hosts"] = tuple(
                f"{host}|{rep['bogomips']}|{rep['cpu_load']}|{rep['run_queue']}"
                f"|{rep['mem_free_mb']}|{rep['disk_free_mb']}"
                for host, rep in sorted(self.reports.items())
            )
        return result

    def cmd_selectHost(self, request: Request) -> dict:
        cmd = request.command
        exclude = [h for h in cmd.str("exclude", "").split(",") if h]
        choice = self.choose(
            cmd.float("min_mem_mb", 0.0), cmd.float("min_disk_mb", 0.0), exclude
        )
        if choice is None:
            raise ServiceError("no suitable host available")
        return {"host": choice, "score": float(self.score(self.reports[choice]))}
