"""Shared intermediate daemon classes of the Fig. 6 hierarchy."""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from repro.core.daemon import ACEDaemon


class DatabaseDaemon(ACEDaemon):
    """Base of the Database subtree (AUD, RoomDB, AuthDB)."""

    service_type = "Database"


class Checkpointable:
    """Mixin: a daemon whose state can be snapshotted and restored.

    The recovery plane (``repro.recovery``) periodically asks every watched
    Checkpointable daemon for a **checkpoint** — an ordered tuple of opaque
    wire lines from :meth:`checkpoint_state`, plus the daemon's idempotency
    dedup cache and incarnation number — and keeps it on the host's
    supervisor (and, durably, in the persistent store under
    ``/recovery/checkpoints/<name>``).  After a crash the supervisor
    restores the checkpoint into the reincarnation *before* starting it, so
    the daemon never serves from a blank slate.

    Subclasses implement exactly two hooks:

    * :meth:`checkpoint_state` — state → tuple of strings (any wire
      encoding the subclass likes; :func:`repro.lang.wire.join_wire` is the
      house idiom);
    * :meth:`restore_state` — the inverse.

    Setting ``checkpoint_eager = True`` turns on the exactly-once
    durability barrier: a fresh checkpoint is persisted *before* the reply
    of every stamped (idempotent) command is released, so a crash between
    execution and reply can never lose the dedup record that makes the
    client's retry a replay instead of a re-execution.
    """

    #: persist a checkpoint before releasing each stamped command's reply
    checkpoint_eager = False
    #: write checkpoints to the persistent store as well as the supervisor
    #: (the store daemon itself opts out — its checkpoint *contains* the
    #: namespace, so storing it back would compound on every round)
    checkpoint_to_store = True

    # -- subclass hooks -------------------------------------------------
    def checkpoint_state(self) -> Tuple[str, ...]:
        """Serialize service state as an ordered tuple of opaque lines."""
        raise NotImplementedError

    def restore_state(self, lines: Tuple[str, ...]) -> None:
        """Rebuild service state from :meth:`checkpoint_state` output."""
        raise NotImplementedError

    # -- composition (payloads are flat word-key dicts, store-safe) -----
    def compose_checkpoint(self) -> Dict[str, str]:
        """Full checkpoint payload: state + dedup cache + incarnation.

        Keys are store-attribute-safe words (``s<i>`` state lines,
        ``d<i>`` dedup lines, ``inc``); values are opaque wire lines."""
        payload: Dict[str, str] = {"inc": str(self.incarnation)}
        for i, line in enumerate(self.checkpoint_state()):
            payload[f"s{i}"] = line
        for i, line in enumerate(self.export_dedup()):
            payload[f"d{i}"] = line
        return payload

    def restore_checkpoint(self, payload: Dict[str, str]) -> int:
        """Apply a :meth:`compose_checkpoint` payload; returns the number
        of state lines restored."""
        state = _indexed_lines(payload, "s")
        dedup = _indexed_lines(payload, "d")
        if dedup:
            self.import_dedup(dedup)
        self.restore_state(tuple(state))
        return len(state)

    # -- the exactly-once durability barrier ----------------------------
    def _commit_barrier(self, request, reply) -> Optional[Generator]:
        if not self.checkpoint_eager:
            return None
        return self._checkpoint_now()

    def _checkpoint_now(self) -> Generator:
        supervisor = self.ctx.supervisors.get(self.host.name)
        if supervisor is None:
            return
        payload = self.compose_checkpoint()
        supervisor.store_checkpoint(self.name, payload)
        if self.checkpoint_to_store:
            yield from supervisor.persist_checkpoint(self.name, payload)


def _indexed_lines(payload: Dict[str, str], prefix: str) -> list:
    """The ``<prefix><i>`` values of ``payload`` in index order."""
    indexed = []
    for key, value in payload.items():
        if key.startswith(prefix) and key[len(prefix):].isdigit():
            indexed.append((int(key[len(prefix):]), value))
    return [value for _, value in sorted(indexed)]
