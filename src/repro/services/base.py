"""Shared intermediate daemon classes of the Fig. 6 hierarchy."""

from repro.core.daemon import ACEDaemon


class DatabaseDaemon(ACEDaemon):
    """Base of the Database subtree (AUD, RoomDB, AuthDB)."""

    service_type = "Database"
