"""Device-control daemons (the Device subtree of Fig. 6).

``DeviceDaemon`` is the common base; below it sit the PTZ cameras (with
the Canon VCC3/VCC4 model variants the figure names) and the projector
(Epson 7350).  Device daemons are spatially aware: they learn their room's
dimensions from the Room Database so ``setPosition`` can validate 3D
coordinates ("it needs to know where it is located ... so that it may
establish a 3D coordinate system", §4.11).
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics
from repro.core.client import CallError
from repro.core.daemon import ACEDaemon, Request, ServiceError
from repro.net import ConnectionClosed, ConnectionRefused


class DeviceDaemon(ACEDaemon):
    """A daemon fronting one physical device."""

    service_type = "Device"

    def __init__(self, ctx, name, host, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.powered = False
        self.room_dims: Optional[Tuple[float, float, float]] = None

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define("power", ArgSpec("state", ArgType.WORD), description="on|off")
        sem.define("getState")

    def fetch_room_dims(self) -> Generator:
        """Ask the RoomDB for our room's geometry (spatial awareness)."""
        if self.ctx.roomdb_address is None or not self.room:
            return
        client = self._service_client()
        try:
            reply = yield from client.call_once(
                self.ctx.roomdb_address, ACECmdLine("roomDims", room=self.room)
            )
        except (CallError, ConnectionClosed, ConnectionRefused):
            return
        dims = reply.get("dims")
        if dims and any(float(v) > 0 for v in dims):
            self.room_dims = tuple(float(v) for v in dims)

    def on_started(self) -> None:
        self._spawn(self.fetch_room_dims(), "room-dims")

    def cmd_power(self, request: Request) -> dict:
        state = request.command.str("state")
        if state not in ("on", "off"):
            raise ServiceError("state must be on or off")
        self.powered = state == "on"
        return {"state": state}

    def _require_power(self) -> None:
        if not self.powered:
            raise ServiceError(f"device {self.name!r} is powered off")

    def device_state(self) -> dict:
        return {"powered": 1 if self.powered else 0}

    def cmd_getState(self, request: Request) -> dict:
        return self.device_state()


class PTZCameraDaemon(DeviceDaemon):
    """Pan-tilt-zoom camera (the GUI of Fig. 2 drives these)."""

    service_type = "PTZCamera"

    #: (pan°, tilt°, zoom-factor) envelope; model variants override
    PAN_RANGE = (-90.0, 90.0)
    TILT_RANGE = (-30.0, 30.0)
    ZOOM_RANGE = (1.0, 10.0)
    #: seconds per degree of movement (slew rate)
    SLEW_S_PER_DEG = 0.01

    def __init__(self, ctx, name, host, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.pan = 0.0
        self.tilt = 0.0
        self.zoom = 1.0
        self.target: Optional[Tuple[float, float, float]] = None
        self.resolution = (320, 240)
        self.frame_rate = 15.0

    def build_semantics(self, sem: CommandSemantics) -> None:
        super().build_semantics(sem)
        sem.define(
            "setPosition",
            ArgSpec("x", ArgType.NUMBER),
            ArgSpec("y", ArgType.NUMBER),
            ArgSpec("z", ArgType.NUMBER, required=False, default=1.5),
            description="aim at a 3D point in the room (metres)",
        )
        sem.define(
            "setPanTilt",
            ArgSpec("pan", ArgType.NUMBER),
            ArgSpec("tilt", ArgType.NUMBER),
        )
        sem.define("setZoom", ArgSpec("factor", ArgType.NUMBER))
        sem.define(
            "setCapture",
            ArgSpec("width", ArgType.INTEGER),
            ArgSpec("height", ArgType.INTEGER),
            ArgSpec("fps", ArgType.NUMBER),
        )

    def _clamp(self, value: float, lo_hi: Tuple[float, float], what: str) -> float:
        lo, hi = lo_hi
        if not lo <= value <= hi:
            raise ServiceError(f"{what} {value} outside [{lo}, {hi}]")
        return float(value)

    def _slew(self, d_pan: float, d_tilt: float) -> Generator:
        """Physical movement takes real time proportional to the angle."""
        degrees = abs(d_pan) + abs(d_tilt)
        if degrees > 0:
            yield self.ctx.sim.timeout(degrees * self.SLEW_S_PER_DEG)

    def cmd_setPanTilt(self, request: Request) -> Generator:
        self._require_power()
        cmd = request.command
        pan = self._clamp(cmd.float("pan"), self.PAN_RANGE, "pan")
        tilt = self._clamp(cmd.float("tilt"), self.TILT_RANGE, "tilt")
        yield from self._slew(pan - self.pan, tilt - self.tilt)
        self.pan, self.tilt = pan, tilt
        return {"pan": self.pan, "tilt": self.tilt}

    def cmd_setPosition(self, request: Request) -> Generator:
        """Aim at room coordinates: validated against RoomDB dimensions,
        converted to pan/tilt assuming the camera sits at the room origin."""
        import math

        self._require_power()
        cmd = request.command
        x, y, z = cmd.float("x"), cmd.float("y"), cmd.float("z", 1.5)
        if self.room_dims is not None:
            w, d, h = self.room_dims
            if not (0 <= x <= w and 0 <= y <= d and 0 <= z <= h):
                raise ServiceError(f"target ({x},{y},{z}) outside room {self.room_dims}")
        pan = math.degrees(math.atan2(y, x if x != 0 else 1e-9))
        tilt = math.degrees(math.atan2(z - 1.5, max(math.hypot(x, y), 1e-9)))
        pan = max(self.PAN_RANGE[0], min(self.PAN_RANGE[1], pan))
        tilt = max(self.TILT_RANGE[0], min(self.TILT_RANGE[1], tilt))
        yield from self._slew(pan - self.pan, tilt - self.tilt)
        self.pan, self.tilt = pan, tilt
        self.target = (x, y, z)
        return {"pan": round(self.pan, 3), "tilt": round(self.tilt, 3)}

    def cmd_setZoom(self, request: Request) -> dict:
        self._require_power()
        self.zoom = self._clamp(request.command.float("factor"), self.ZOOM_RANGE, "zoom")
        return {"zoom": self.zoom}

    def cmd_setCapture(self, request: Request) -> dict:
        self._require_power()
        cmd = request.command
        self.resolution = (cmd.int("width"), cmd.int("height"))
        self.frame_rate = cmd.float("fps")
        return {"width": self.resolution[0], "height": self.resolution[1],
                "fps": self.frame_rate}

    def device_state(self) -> dict:
        state = super().device_state()
        state.update(
            pan=round(self.pan, 3), tilt=round(self.tilt, 3), zoom=self.zoom,
            width=self.resolution[0], height=self.resolution[1], fps=self.frame_rate,
        )
        return state


class VCC3CameraDaemon(PTZCameraDaemon):
    """Canon VCC3: narrower envelope, slower slew."""

    service_type = "VCC3"
    PAN_RANGE = (-90.0, 90.0)
    TILT_RANGE = (-25.0, 30.0)
    ZOOM_RANGE = (1.0, 10.0)
    SLEW_S_PER_DEG = 0.014


class VCC4CameraDaemon(PTZCameraDaemon):
    """Canon VCC4: wider pan, 16x zoom, faster slew."""

    service_type = "VCC4"
    PAN_RANGE = (-100.0, 100.0)
    TILT_RANGE = (-30.0, 90.0)
    ZOOM_RANGE = (1.0, 16.0)
    SLEW_S_PER_DEG = 0.011


class ProjectorDaemon(DeviceDaemon):
    """Projector base class."""

    service_type = "Projector"
    INPUTS = ("vga", "video", "workspace")

    def __init__(self, ctx, name, host, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.input_source = "vga"
        self.pip_source = ""  # picture-in-picture (Scenario 5)
        self.brightness = 70

    def build_semantics(self, sem: CommandSemantics) -> None:
        super().build_semantics(sem)
        sem.define("setInput", ArgSpec("source", ArgType.STRING))
        sem.define("setPictureInPicture", ArgSpec("source", ArgType.STRING))
        sem.define("setBrightness", ArgSpec("level", ArgType.INTEGER))

    def cmd_setInput(self, request: Request) -> dict:
        self._require_power()
        source = request.command.str("source")
        if source not in self.INPUTS and not source.startswith("stream:"):
            raise ServiceError(f"unknown input {source!r}")
        self.input_source = source
        return {"source": source}

    def cmd_setPictureInPicture(self, request: Request) -> dict:
        self._require_power()
        self.pip_source = request.command.str("source")
        return {"source": self.pip_source}

    def cmd_setBrightness(self, request: Request) -> dict:
        self._require_power()
        level = request.command.int("level")
        if not 0 <= level <= 100:
            raise ServiceError("brightness must be 0..100")
        self.brightness = level
        return {"level": level}

    def device_state(self) -> dict:
        state = super().device_state()
        state.update(source=self.input_source, brightness=self.brightness)
        if self.pip_source:
            state["pip"] = self.pip_source
        return state


class Epson7350ProjectorDaemon(ProjectorDaemon):
    """The Epson PowerLite 7350 of Fig. 6."""

    service_type = "Epson7350"
    INPUTS = ("vga", "video", "workspace", "svideo")
