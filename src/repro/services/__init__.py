"""Basic ACE services (Chapter 4 of the paper) and extensions, one module
per service.

====================  =======================================
Module                Paper section
====================  =======================================
``asd``               §2.4  Service Directory (discovery + leases)
``roomdb``            §4.11 Room Database
``netlogger``         §4.14 Network Logger
``authdb``            §4.10 Authorization Database
``aud``               §4.7  ACE User Database
``hrm``               §4.1  Host Resource Monitor
``srm``               §4.2  System Resource Monitor
``hal``               §4.3  Host Application Launcher
``sal``               §4.4  System Application Launcher
``wss``               §4.5  Workspace Server
``idmon``             §4.6  ID Monitor
``fiu``               §4.8  Fingerprint Identification Unit
``ibutton``           §4.9  iButton Reader
``streams``           §4.12 Converter / §4.13 Distribution substrate
``devices``           Fig. 6 PTZ cameras (VCC3/VCC4), projector (Epson 7350)
``audio``             §4.15 audio pipeline services
``dsp``               numpy kernels behind the audio services
``adaptive``          §2.5 worked example: camera-to-the-door
``tracker``           §1.1 non-human user: personnel tracking
``printer``           §9 task automation: nearest-printer printing
``pathplanner``       §8.1/§9 Ninja-style Automatic Path Creation
``gesture``           §9 gesture recognition
``triangulation``     §1.2/§9 sound triangulation
``lighting``          §9 lighting automation
====================  =======================================
"""

from repro.services.adaptive import AdaptiveCameraDaemon
from repro.services.asd import (
    DirectoryWatcherDaemon,
    ServiceDirectoryDaemon,
    ServiceRecord,
    asd_lookup,
    asd_lookup_one,
)
from repro.services.aud import UserDatabaseDaemon, UserRecord
from repro.services.base import DatabaseDaemon
from repro.services.audio import (
    AudioCaptureDaemon,
    AudioMixerDaemon,
    AudioPlayDaemon,
    AudioRecorderDaemon,
    EchoCancellationDaemon,
    SpeechToCommandDaemon,
    TextToSpeechDaemon,
)
from repro.services.authdb import (
    AuthorizationDatabaseDaemon,
    decode_credential,
    encode_credential,
)
from repro.services.devices import (
    DeviceDaemon,
    Epson7350ProjectorDaemon,
    PTZCameraDaemon,
    ProjectorDaemon,
    VCC3CameraDaemon,
    VCC4CameraDaemon,
)
from repro.services.fiu import FingerprintUnitDaemon
from repro.services.gesture import GestureRecognitionDaemon
from repro.services.hal import HostApplicationLauncherDaemon
from repro.services.hrm import HostResourceMonitorDaemon
from repro.services.ibutton import IButtonReaderDaemon
from repro.services.idmon import IDMonitorDaemon
from repro.services.lighting import LightDaemon, LightingControllerDaemon
from repro.services.netlogger import LogEntry, NetworkLoggerDaemon
from repro.services.pathplanner import PathPlannerDaemon
from repro.services.printer import PrinterDaemon, TaskAutomationDaemon
from repro.services.roomdb import RoomDatabaseDaemon
from repro.services.sal import SystemApplicationLauncherDaemon
from repro.services.srm import SystemResourceMonitorDaemon
from repro.services.streams import (
    ConverterDaemon,
    DistributionDaemon,
    MediaChunk,
    StreamDaemon,
    StreamSink,
)
from repro.services.tracker import PersonnelTrackerDaemon
from repro.services.triangulation import SoundTriangulationDaemon
from repro.services.wss import WorkspaceServerDaemon

__all__ = [
    "AdaptiveCameraDaemon",
    "AudioCaptureDaemon",
    "AudioMixerDaemon",
    "AudioPlayDaemon",
    "AudioRecorderDaemon",
    "AuthorizationDatabaseDaemon",
    "ConverterDaemon",
    "DatabaseDaemon",
    "DeviceDaemon",
    "DistributionDaemon",
    "EchoCancellationDaemon",
    "Epson7350ProjectorDaemon",
    "FingerprintUnitDaemon",
    "GestureRecognitionDaemon",
    "HostApplicationLauncherDaemon",
    "HostResourceMonitorDaemon",
    "IButtonReaderDaemon",
    "IDMonitorDaemon",
    "LightDaemon",
    "LightingControllerDaemon",
    "LogEntry",
    "MediaChunk",
    "NetworkLoggerDaemon",
    "PTZCameraDaemon",
    "PathPlannerDaemon",
    "PersonnelTrackerDaemon",
    "PrinterDaemon",
    "ProjectorDaemon",
    "RoomDatabaseDaemon",
    "DirectoryWatcherDaemon",
    "ServiceDirectoryDaemon",
    "ServiceRecord",
    "SoundTriangulationDaemon",
    "SpeechToCommandDaemon",
    "StreamDaemon",
    "StreamSink",
    "SystemApplicationLauncherDaemon",
    "SystemResourceMonitorDaemon",
    "TaskAutomationDaemon",
    "TextToSpeechDaemon",
    "UserDatabaseDaemon",
    "UserRecord",
    "VCC3CameraDaemon",
    "VCC4CameraDaemon",
    "WorkspaceServerDaemon",
    "asd_lookup",
    "asd_lookup_one",
    "decode_credential",
    "encode_credential",
]
