"""Printer daemon + task automation (Chapter 9 future work).

The paper names '"print this out to the nearest printer"' as the canonical
task-automation example.  :class:`PrinterDaemon` is a spooling device
daemon; :class:`TaskAutomationDaemon` resolves "nearest": it asks the AUD
where the user last identified, finds printers through the ASD, prefers
one in the user's room (falling back to any), and forwards the job.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, List, Optional

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics
from repro.net import ConnectionClosed, ConnectionRefused
from repro.core.client import CallError
from repro.core.daemon import Request, ServiceError
from repro.core.daemon import ACEDaemon
from repro.services.asd import asd_lookup
from repro.services.devices import DeviceDaemon


class PrinterDaemon(DeviceDaemon):
    """A print spooler fronting one printer."""

    service_type = "Printer"

    #: seconds per page (a 2000-era laser printer, ~12 ppm)
    SECONDS_PER_PAGE = 5.0

    def __init__(self, ctx, name, host, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.powered = True
        self.queue: deque = deque()
        self.printed: List[str] = []
        self._spooler_running = False

    def build_semantics(self, sem: CommandSemantics) -> None:
        super().build_semantics(sem)
        sem.define(
            "printDocument",
            ArgSpec("doc", ArgType.STRING),
            ArgSpec("pages", ArgType.INTEGER, required=False, default=1),
            ArgSpec("user", ArgType.STRING, required=False, default="unknown"),
        )
        sem.define("getQueue")

    def cmd_printDocument(self, request: Request) -> dict:
        cmd = request.command
        pages = cmd.int("pages", 1)
        if pages < 1:
            raise ServiceError("pages must be >= 1")
        job = (cmd.str("doc"), pages, cmd.str("user", "unknown"))
        self.queue.append(job)
        if not self._spooler_running:
            self._spooler_running = True
            self._spawn(self._spool(), "spooler")
        return {"queued": len(self.queue), "doc": job[0]}

    def _spool(self) -> Generator:
        while self.running and self.queue:
            doc, pages, user = self.queue.popleft()
            yield self.ctx.sim.timeout(pages * self.SECONDS_PER_PAGE)
            self.printed.append(doc)
            self.ctx.trace.emit(self.ctx.sim.now, self.name, "printed",
                                doc=doc, pages=pages, user=user)
        self._spooler_running = False

    def cmd_getQueue(self, request: Request) -> dict:
        return {"queued": len(self.queue), "printed": len(self.printed)}


class TaskAutomationDaemon(ACEDaemon):
    """Turns user-level intents into service command chains (§9)."""

    service_type = "TaskAutomation"

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "printNearest",
            ArgSpec("user", ArgType.STRING),
            ArgSpec("doc", ArgType.STRING),
            ArgSpec("pages", ArgType.INTEGER, required=False, default=1),
            description='"print this out to the nearest printer"',
        )

    def _user_location(self, username: str) -> Generator:
        client = self._service_client()
        try:
            auds = yield from asd_lookup(client, self.ctx.asd_address, name="aud")
            if not auds:
                return None
            reply = yield from client.call_once(
                auds[0].address, ACECmdLine("getUser", username=username)
            )
        except (CallError, ConnectionClosed, ConnectionRefused):
            return None
        location = reply.str("location", "unknown")
        return None if location == "unknown" else location

    def _pick_printer(self, room: Optional[str]) -> Generator:
        client = self._service_client()
        printers = yield from asd_lookup(client, self.ctx.asd_address, cls="Printer")
        if not printers:
            raise ServiceError("no printers registered in this ACE")
        if room is not None:
            local = [p for p in printers if p.room == room]
            if local:
                return local[0], "same-room"
        return printers[0], "fallback"

    def cmd_printNearest(self, request: Request) -> Generator:
        cmd = request.command
        username = cmd.str("user")
        room = yield from self._user_location(username)
        printer, why = yield from self._pick_printer(room)
        client = self._service_client()
        try:
            reply = yield from client.call_once(
                printer.address,
                ACECmdLine("printDocument", doc=cmd.str("doc"),
                           pages=cmd.int("pages", 1), user=username),
            )
        except (CallError, ConnectionClosed, ConnectionRefused) as exc:
            raise ServiceError(f"printer {printer.name!r} unreachable: {exc}")
        self.ctx.trace.emit(
            self.ctx.sim.now, self.name, "task-automated",
            task="printNearest", printer=printer.name, reason=why,
            user_room=room or "unknown",
        )
        return {"printer": printer.name, "room": printer.room,
                "selection": why, "queued": reply.int("queued")}
