"""HAL — Host Application Launcher (§4.3).

One per host.  Launches registered applications locally "utilizing the
host's local resources", tracks them by pid, kills them, and reports
status.  Application *types* come from the :class:`~repro.apps.runner.
AppRegistry` the environment builder installs (VNC servers, spinners, ...).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.lang import ArgSpec, ArgType, CommandSemantics
from repro.apps.runner import Application, AppRegistry, AppState
from repro.core.daemon import ACEDaemon, Request, ServiceError


class HostApplicationLauncherDaemon(ACEDaemon):
    """Launches applications on its own host (§4.3)."""

    service_type = "HAL"

    def __init__(self, ctx, name, host, *, registry: Optional[AppRegistry] = None, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.registry = registry if registry is not None else AppRegistry()
        self.apps: Dict[int, Application] = {}

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "launch",
            ArgSpec("app", ArgType.STRING),
            ArgSpec("args", ArgType.STRING, required=False, default=""),
            description="launch an application on this host",
        )
        sem.define("kill", ArgSpec("pid", ArgType.INTEGER))
        sem.define("isRunning", ArgSpec("pid", ArgType.INTEGER))
        sem.define("listRunning")
        sem.define("listApps", description="launchable application types")
        sem.define(
            "appExited",
            ArgSpec("pid", ArgType.INTEGER),
            ArgSpec("app", ArgType.STRING),
            ArgSpec("state", ArgType.STRING),
            ArgSpec("reason", ArgType.STRING, required=False, default=""),
            description="self-emitted when a launched app exits (watch me!)",
        )

    # -- in-process API (used by tests/benchmarks that bypass the wire) -----
    def launch(self, app_name: str, args: str = "") -> Application:
        if app_name not in self.registry:
            raise ServiceError(f"unknown application {app_name!r}")
        app = self.registry.create(app_name, self.ctx, self.host, args)
        app.on_exit(self._on_app_exit)
        app.start()
        self.apps[app.pid] = app
        self.ctx.trace.emit(
            self.ctx.sim.now, self.name, "app-launched",
            app=app_name, pid=app.pid, host=self.host.name,
        )
        return app

    def _on_app_exit(self, app: Application) -> None:
        """Emit ``appExited`` through our own dispatch so watcher services
        registered via addNotification hear about it (§5.2)."""
        if not self.running or not self.host.up:
            return
        from repro.lang import ACECmdLine

        command = ACECmdLine(
            "appExited",
            pid=app.pid,
            app=app.name,
            state=app.state.value,
            reason=app.exit_reason or "",
        )
        self._spawn(self.self_execute(command), "app-exit-event")

    # -- handlers ----------------------------------------------------------
    def cmd_launch(self, request: Request) -> dict:
        cmd = request.command
        app = self.launch(cmd.str("app"), cmd.str("args", ""))
        return {"pid": app.pid, "host": self.host.name, "app": app.name}

    def cmd_kill(self, request: Request) -> dict:
        pid = request.command.int("pid")
        app = self.apps.get(pid)
        if app is None:
            raise ServiceError(f"no such pid {pid}")
        app.stop()
        return {"pid": pid}

    def cmd_isRunning(self, request: Request) -> dict:
        pid = request.command.int("pid")
        app = self.apps.get(pid)
        return {"pid": pid, "running": 1 if (app is not None and app.running) else 0}

    def cmd_listRunning(self, request: Request) -> dict:
        running = [a for a in self.apps.values() if a.state is AppState.RUNNING]
        result: dict = {"count": len(running)}
        if running:
            result["apps"] = tuple(f"{a.pid}|{a.name}" for a in sorted(running, key=lambda a: a.pid))
        return result

    def cmd_appExited(self, request: Request) -> dict:
        # Executing this successfully is what fans out the notifications.
        return {"pid": request.command.int("pid")}

    def cmd_listApps(self, request: Request) -> dict:
        known = self.registry.known()
        return {"count": len(known), "apps": tuple(known)}
