"""Audio services (§4.15, Fig. 15).

The eight building blocks of the paper's high-level audio example, as
stream daemons over the UDP data channel:

=====================  =====================================================
Daemon                 Function (paper wording)
=====================  =====================================================
AudioCaptureDaemon     "captures an audio signal from a microphone and
                       digitizes it so that it may be streamed"
AudioPlayDaemon        "plays an input audio signal on an output device"
AudioMixerDaemon       "combines multiple audio signals into one"
EchoCancellationDaemon "removes redundant audio signals (with an arbitrary
                       amount of delay)" — NLMS adaptive filter
AudioRecorderDaemon    "records on hard media a given input audio stream"
TextToSpeechDaemon     "converts text messages into an audible voice signal"
SpeechToCommandDaemon  "analyses an input audio signal for specific voice
                       commands and converts them ... to a well-known ACE
                       service command"
DistributionDaemon     (in :mod:`repro.services.streams`)
=====================  =====================================================
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics, parse_command
from repro.net import Address, ConnectionClosed, ConnectionRefused
from repro.core.client import CallError
from repro.core.daemon import Request, ServiceError
from repro.services import dsp
from repro.services.streams import MediaChunk, StreamDaemon

CHUNK_PERIOD = dsp.CHUNK_SAMPLES / dsp.SAMPLE_RATE  # 20 ms


class AudioCaptureDaemon(StreamDaemon):
    """A microphone: streams queued signals (or silence) in real time."""

    service_type = "AudioCapture"

    def __init__(self, ctx, name, host, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.capturing = False
        self.seq = 0
        self._pending: deque = deque()  # queued numpy signals
        self._rng = ctx.rng.np(f"audio.{name}")

    def build_semantics(self, sem: CommandSemantics) -> None:
        super().build_semantics(sem)
        sem.define("startCapture")
        sem.define("stopCapture")
        sem.define(
            "speakWord",
            ArgSpec("word", ArgType.WORD),
            description="someone utters a command word at this microphone",
        )
        sem.define(
            "speakNoise",
            ArgSpec("duration", ArgType.NUMBER),
            description="someone talks (speech-like signal) for duration s",
        )

    # -- signal injection (the simulated acoustic world) --------------------
    def queue_signal(self, signal: np.ndarray) -> None:
        """What sound reaches this microphone next."""
        for block in dsp.chunk_signal(signal):
            self._pending.append(block)

    def cmd_startCapture(self, request: Request) -> dict:
        if not self.capturing:
            self.capturing = True
            self._spawn(self._capture_loop(), "capture")
        return {"capturing": 1}

    def cmd_stopCapture(self, request: Request) -> dict:
        self.capturing = False
        return {"capturing": 0}

    def cmd_speakWord(self, request: Request) -> dict:
        word = request.command.str("word")
        self.queue_signal(dsp.synth_word(word))
        return {"word": word, "queued_chunks": len(self._pending)}

    def cmd_speakNoise(self, request: Request) -> dict:
        duration = request.command.float("duration")
        n = int(duration * dsp.SAMPLE_RATE)
        self.queue_signal(dsp.speech_like(n, self._rng))
        return {"queued_chunks": len(self._pending)}

    def _capture_loop(self) -> Generator:
        silence = np.zeros(dsp.CHUNK_SAMPLES, dtype=np.float32)
        while self.running and self.capturing:
            block = self._pending.popleft() if self._pending else silence
            chunk = MediaChunk.from_audio(block, self.seq, self.ctx.sim.now)
            self.seq += 1
            yield from self.emit(chunk)
            yield self.ctx.sim.timeout(CHUNK_PERIOD)


class AudioPlayDaemon(StreamDaemon):
    """A loudspeaker: terminal sink that 'plays' whatever arrives."""

    service_type = "AudioPlay"

    def __init__(self, ctx, name, host, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self._played: List[Tuple[int, np.ndarray]] = []

    def build_semantics(self, sem: CommandSemantics) -> None:
        super().build_semantics(sem)
        sem.define("getPlayStats")

    def on_chunk(self, source: Address, chunk: MediaChunk):
        self._played.append((chunk.seq, chunk.audio()))
        return None

    def signal(self) -> np.ndarray:
        if not self._played:
            return np.zeros(0, dtype=np.float32)
        return np.concatenate([a for _, a in sorted(self._played, key=lambda p: p[0])])

    def cmd_getPlayStats(self, request: Request) -> dict:
        signal = self.signal()
        return {
            "chunks": len(self._played),
            "seconds": round(len(signal) / dsp.SAMPLE_RATE, 4),
            "rms": float(round(np.sqrt(np.mean(signal**2)) if len(signal) else 0.0, 6)),
        }


class AudioMixerDaemon(StreamDaemon):
    """Combines multiple input streams into one (sum, clipped)."""

    service_type = "AudioMixer"

    def __init__(self, ctx, name, host, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self._latest: Dict[Address, Dict[int, np.ndarray]] = {}
        self._clock_source: Optional[Address] = None
        self.out_seq = 0

    def on_chunk(self, source: Address, chunk: MediaChunk) -> Generator:
        per_source = self._latest.setdefault(source, {})
        per_source[chunk.seq] = chunk.audio()
        if len(per_source) > 8:  # bound memory: keep the freshest chunks
            for old in sorted(per_source)[:-8]:
                del per_source[old]
        if self._clock_source is None:
            self._clock_source = source
        if source != self._clock_source:
            return  # only the clock source triggers output
        mixed = np.zeros(dsp.CHUNK_SAMPLES, dtype=np.float64)
        for addr, chunks in self._latest.items():
            if chunk.seq in chunks:
                mixed[: len(chunks[chunk.seq])] += chunks[chunk.seq]
            elif chunks:
                latest = chunks[max(chunks)]
                mixed[: len(latest)] += latest
        mixed = np.clip(mixed, -1.0, 1.0).astype(np.float32)
        out = MediaChunk.from_audio(mixed, self.out_seq, self.ctx.sim.now)
        self.out_seq += 1
        yield from self.emit(out)


class EchoCancellationDaemon(StreamDaemon):
    """NLMS echo canceller: mic input minus the estimated echo of the
    reference (far-end) signal."""

    service_type = "EchoCancel"

    def __init__(self, ctx, name, host, *, taps: int = 64, mu: float = 0.5, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.filter = dsp.NLMSFilter(taps=taps, mu=mu)
        self.reference_addr: Optional[Address] = None
        self.microphone_addr: Optional[Address] = None
        self._ref_chunks: Dict[int, np.ndarray] = {}
        self._mic_chunks: Dict[int, np.ndarray] = {}
        self.mic_energy = 0.0
        self.out_energy = 0.0

    def build_semantics(self, sem: CommandSemantics) -> None:
        super().build_semantics(sem)
        sem.define("setReference", ArgSpec("host", ArgType.STRING), ArgSpec("port", ArgType.INTEGER))
        sem.define("setMicrophone", ArgSpec("host", ArgType.STRING), ArgSpec("port", ArgType.INTEGER))
        sem.define("getCancelStats")

    def cmd_setReference(self, request: Request) -> dict:
        self.reference_addr = Address(request.command.str("host"), request.command.int("port"))
        return {}

    def cmd_setMicrophone(self, request: Request) -> dict:
        self.microphone_addr = Address(request.command.str("host"), request.command.int("port"))
        return {}

    def cmd_getCancelStats(self, request: Request) -> dict:
        suppression_db = 0.0
        if self.out_energy > 0 and self.mic_energy > 0:
            suppression_db = 10.0 * float(np.log10(self.mic_energy / self.out_energy))
        return {
            "mic_energy": round(self.mic_energy, 6),
            "out_energy": round(self.out_energy, 6),
            "suppression_db": round(suppression_db, 3),
        }

    def on_chunk(self, source: Address, chunk: MediaChunk) -> Generator:
        samples = chunk.audio()
        if source == self.reference_addr:
            self._ref_chunks[chunk.seq] = samples
        elif source == self.microphone_addr:
            self._mic_chunks[chunk.seq] = samples
        else:
            return
        # Process every seq for which both sides have arrived.
        ready = sorted(set(self._ref_chunks) & set(self._mic_chunks))
        for seq in ready:
            ref = self._ref_chunks.pop(seq)
            mic = self._mic_chunks.pop(seq)
            n = min(len(ref), len(mic))
            out = self.filter.process(ref[:n], mic[:n])
            self.mic_energy += float(np.sum(mic[:n].astype(np.float64) ** 2))
            self.out_energy += float(np.sum(out.astype(np.float64) ** 2))
            yield from self.host.execute(0.5)  # per-block filter work
            yield from self.emit(MediaChunk.from_audio(out, seq, self.ctx.sim.now))
        # Bound the reorder buffers.
        for buf in (self._ref_chunks, self._mic_chunks):
            while len(buf) > 64:
                del buf[min(buf)]


class AudioRecorderDaemon(StreamDaemon):
    """Records the incoming stream 'on hard media'."""

    service_type = "AudioRecorder"

    def __init__(self, ctx, name, host, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self._chunks: List[MediaChunk] = []

    def build_semantics(self, sem: CommandSemantics) -> None:
        super().build_semantics(sem)
        sem.define("getRecording")
        sem.define("eraseRecording")

    def on_chunk(self, source: Address, chunk: MediaChunk):
        self._chunks.append(chunk)
        return None

    def recording(self) -> np.ndarray:
        ordered = sorted(self._chunks, key=lambda c: c.seq)
        if not ordered:
            return np.zeros(0, dtype=np.float32)
        return np.concatenate([c.audio() for c in ordered])

    def cmd_getRecording(self, request: Request) -> dict:
        signal = self.recording()
        return {"chunks": len(self._chunks),
                "seconds": round(len(signal) / dsp.SAMPLE_RATE, 4)}

    def cmd_eraseRecording(self, request: Request) -> dict:
        erased = len(self._chunks)
        self._chunks.clear()
        return {"erased": erased}


class TextToSpeechDaemon(StreamDaemon):
    """Converts text into the audible tone-signature 'voice'."""

    service_type = "TextToSpeech"

    def __init__(self, ctx, name, host, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.seq = 0

    def build_semantics(self, sem: CommandSemantics) -> None:
        super().build_semantics(sem)
        sem.define("say", ArgSpec("text", ArgType.STRING))

    def cmd_say(self, request: Request) -> dict:
        text = request.command.str("text")
        words = [w for w in text.split() if w]
        signal_parts = [dsp.synth_word(w) for w in words]
        # Inter-word pause long enough to flush a detector analysis window.
        gap = np.zeros(int(0.3 * dsp.SAMPLE_RATE), dtype=np.float32)
        full = np.concatenate([p for w in signal_parts for p in (w, gap)]) if words else gap
        self._spawn(self._stream_out(full), "tts-stream")
        return {"words": len(words),
                "seconds": round(len(full) / dsp.SAMPLE_RATE, 4)}

    def _stream_out(self, signal: np.ndarray) -> Generator:
        for block in dsp.chunk_signal(signal):
            chunk = MediaChunk.from_audio(block, self.seq, self.ctx.sim.now)
            self.seq += 1
            yield from self.emit(chunk)
            yield self.ctx.sim.timeout(CHUNK_PERIOD)


class SpeechToCommandDaemon(StreamDaemon):
    """Listens for command words and fires mapped ACE commands."""

    service_type = "SpeechToCommand"

    #: analysis window (seconds) and re-trigger holdoff
    WINDOW_S = 0.25
    HOLDOFF_S = 0.6

    def __init__(self, ctx, name, host, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        #: word -> (target address, command string)
        self.mappings: Dict[str, Tuple[Address, str]] = {}
        self._window: deque = deque(maxlen=int(self.WINDOW_S / CHUNK_PERIOD))
        self._last_trigger: Dict[str, float] = {}
        self.recognized: List[Tuple[float, str]] = []

    def build_semantics(self, sem: CommandSemantics) -> None:
        super().build_semantics(sem)
        sem.define(
            "mapCommand",
            ArgSpec("word", ArgType.WORD),
            ArgSpec("host", ArgType.STRING),
            ArgSpec("port", ArgType.INTEGER),
            ArgSpec("command", ArgType.STRING),
            description="voice word → ACE command on a target service",
        )
        sem.define(
            "commandRecognized",
            ArgSpec("word", ArgType.WORD),
            description="emitted whenever a voice command is heard",
        )

    def cmd_mapCommand(self, request: Request) -> dict:
        cmd = request.command
        try:
            parse_command(cmd.str("command"))  # validate at registration
        except Exception as exc:
            raise ServiceError(f"unparseable mapped command: {exc}")
        self.mappings[cmd.str("word")] = (
            Address(cmd.str("host"), cmd.int("port")),
            cmd.str("command"),
        )
        return {"words": len(self.mappings)}

    def cmd_commandRecognized(self, request: Request) -> dict:
        return {"word": request.command.str("word")}

    def on_chunk(self, source: Address, chunk: MediaChunk) -> Generator:
        self._window.append(chunk.audio())
        if len(self._window) < self._window.maxlen:
            return
        signal = np.concatenate(list(self._window))
        word = dsp.detect_word(signal, list(self.mappings))
        if word is None:
            return
        now = self.ctx.sim.now
        if now - self._last_trigger.get(word, -1e9) < self.HOLDOFF_S:
            return
        self._last_trigger[word] = now
        self._window.clear()  # consume the detected utterance
        self.recognized.append((now, word))
        yield from self.host.execute(2.0)  # recognition work
        yield from self.self_execute(ACECmdLine("commandRecognized", word=word))
        target, command_text = self.mappings[word]
        client = self._service_client()
        try:
            yield from client.call_once(target, parse_command(command_text))
        except (CallError, ConnectionClosed, ConnectionRefused):
            self.ctx.trace.emit(self.ctx.sim.now, self.name, "voice-command-failed",
                                word=word)
