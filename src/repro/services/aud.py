"""AUD — ACE User Database (§4.7, Fig. 12).

The interface every service uses to store and look up ACE users: account
name, full name, hashed password, identification data (iButton serial,
fingerprint template), public key, and current location (updated by the
ID Monitor as users identify themselves around the environment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.lang import ArgSpec, ArgType, CommandSemantics
from repro.security.crypto import sha256_hex
from repro.core.daemon import Request, ServiceError
from repro.services.base import DatabaseDaemon


@dataclass
class UserRecord:
    username: str
    fullname: str = ""
    password_hash: str = ""
    ibutton_serial: str = ""
    fingerprint_template: Tuple[float, ...] = ()
    public_key: int = 0
    location: str = ""  # room or host of last identification
    extra: Dict[str, str] = field(default_factory=dict)


class UserDatabaseDaemon(DatabaseDaemon):
    """The user-records interface of Fig. 12."""

    service_type = "UserDatabase"

    def __init__(self, ctx, name, host, **kwargs):
        kwargs.setdefault("authorize_commands", False)  # identity bootstrap
        super().__init__(ctx, name, host, **kwargs)
        self.users: Dict[str, UserRecord] = {}

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "addUser",
            ArgSpec("username", ArgType.STRING),
            ArgSpec("fullname", ArgType.STRING, required=False, default=""),
            ArgSpec("password", ArgType.STRING, required=False, default=""),
            ArgSpec("ibutton", ArgType.STRING, required=False, default=""),
            ArgSpec("fingerprint", ArgType.VECTOR, required=False),
            description="register a new ACE user (Scenario 1)",
        )
        sem.define("getUser", ArgSpec("username", ArgType.STRING))
        sem.define("removeUser", ArgSpec("username", ArgType.STRING))
        sem.define("listUsers")
        sem.define(
            "setLocation",
            ArgSpec("username", ArgType.STRING),
            ArgSpec("location", ArgType.STRING),
            description="track where the user last identified (Scenario 2)",
        )
        sem.define("findByIButton", ArgSpec("serial", ArgType.STRING))
        sem.define("listFingerprints", description="templates for the FIU to load")
        sem.define(
            "checkPassword",
            ArgSpec("username", ArgType.STRING),
            ArgSpec("password", ArgType.STRING),
        )

    # -- helpers -------------------------------------------------------------
    def _user(self, username: str) -> UserRecord:
        user = self.users.get(username)
        if user is None:
            raise ServiceError(f"unknown user {username!r}")
        return user

    @staticmethod
    def hash_password(password: str) -> str:
        return sha256_hex("aud-salt:", password)

    # -- handlers --------------------------------------------------------------
    def cmd_addUser(self, request: Request) -> dict:
        cmd = request.command
        username = cmd.str("username")
        is_new = username not in self.users
        fingerprint = cmd.get("fingerprint", ())
        record = UserRecord(
            username=username,
            fullname=cmd.str("fullname", ""),
            password_hash=self.hash_password(cmd.str("password", "")),
            ibutton_serial=cmd.str("ibutton", ""),
            fingerprint_template=tuple(float(v) for v in fingerprint),
        )
        self.users[username] = record
        self.ctx.trace.emit(self.ctx.sim.now, self.name, "user-added", user=username)
        return {"username": username, "new": 1 if is_new else 0}

    def cmd_getUser(self, request: Request) -> dict:
        user = self._user(request.command.str("username"))
        result = {
            "username": user.username,
            "fullname": user.fullname or "unknown",
            "location": user.location or "unknown",
            "has_ibutton": 1 if user.ibutton_serial else 0,
            "has_fingerprint": 1 if user.fingerprint_template else 0,
        }
        return result

    def cmd_removeUser(self, request: Request) -> dict:
        removed = self.users.pop(request.command.str("username"), None)
        return {"removed": 1 if removed else 0}

    def cmd_listUsers(self, request: Request) -> dict:
        result: dict = {"count": len(self.users)}
        if self.users:
            result["users"] = tuple(sorted(self.users))
        return result

    def cmd_setLocation(self, request: Request) -> dict:
        cmd = request.command
        user = self._user(cmd.str("username"))
        user.location = cmd.str("location")
        return {"username": user.username, "location": user.location}

    def cmd_findByIButton(self, request: Request) -> dict:
        serial = request.command.str("serial")
        for user in self.users.values():
            if user.ibutton_serial and user.ibutton_serial == serial:
                return {"username": user.username}
        raise ServiceError(f"no user with iButton serial {serial!r}")

    def cmd_listFingerprints(self, request: Request) -> dict:
        enrolled = [
            (name, rec.fingerprint_template)
            for name, rec in sorted(self.users.items())
            if rec.fingerprint_template
        ]
        result: dict = {"count": len(enrolled)}
        if enrolled:
            result["users"] = tuple(name for name, _ in enrolled)
            result["templates"] = tuple(tpl for _, tpl in enrolled)
        return result

    def cmd_checkPassword(self, request: Request) -> dict:
        cmd = request.command
        user = self._user(cmd.str("username"))
        ok = user.password_hash == self.hash_password(cmd.str("password"))
        return {"username": user.username, "valid": 1 if ok else 0}
