"""Adaptive camera (§2.5's worked example + §9 "adaptive camera systems").

The paper's notification walk-through: "whenever a new person identifies
him/herself at the door, … the camera point[s] towards the door in order
to visualize the new user walking into the room."  This daemon is that
example verbatim: a PTZ camera that subscribes to the identification
devices in its room and slews to the door on a positive identification.
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics, parse_command
from repro.net import ConnectionClosed, ConnectionRefused
from repro.core.client import CallError
from repro.core.daemon import Request
from repro.services.asd import asd_lookup
from repro.services.devices import VCC4CameraDaemon
from repro.services.idmon import ID_DEVICE_CLASSES


class AdaptiveCameraDaemon(VCC4CameraDaemon):
    """A VCC4 that watches the room's ID devices and greets arrivals."""

    service_type = "AdaptiveCamera"

    def __init__(self, ctx, name, host, *,
                 door_position: Tuple[float, float, float] = (0.5, 0.5, 1.6),
                 **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.door_position = door_position
        self.greeted: list = []
        self._subscribed: set = set()

    def build_semantics(self, sem: CommandSemantics) -> None:
        super().build_semantics(sem)
        sem.define(
            "onUserIdentified",
            ArgSpec("source", ArgType.STRING, required=False),
            ArgSpec("trigger", ArgType.STRING, required=False),
            ArgSpec("principal", ArgType.STRING, required=False),
            ArgSpec("args", ArgType.STRING, required=False),
            description="someone identified at the door: look at them (§2.5)",
        )
        sem.define(
            "setDoorPosition",
            ArgSpec("x", ArgType.NUMBER),
            ArgSpec("y", ArgType.NUMBER),
            ArgSpec("z", ArgType.NUMBER, required=False, default=1.6),
        )

    def on_started(self) -> None:
        super().on_started()
        self._spawn(self._subscribe_room_devices(), "subscribe")

    def _subscribe_room_devices(self) -> Generator:
        """Find the ID devices in *our* room and watch their 'identified'."""
        if self.ctx.asd_address is None or not self.room:
            return
        client = self._service_client()
        for cls in ID_DEVICE_CLASSES:
            try:
                devices = yield from asd_lookup(client, self.ctx.asd_address,
                                                cls=cls, room=self.room)
            except (CallError, ConnectionClosed, ConnectionRefused):
                continue
            for device in devices:
                if device.name in self._subscribed:
                    continue
                try:
                    yield from client.call_once(
                        device.address,
                        ACECmdLine("addNotification", cmd="identified",
                                   listener=self.name, host=self.host.name,
                                   port=self.port, callback="onUserIdentified"),
                    )
                    self._subscribed.add(device.name)
                except (CallError, ConnectionClosed, ConnectionRefused):
                    continue

    def cmd_setDoorPosition(self, request: Request) -> dict:
        cmd = request.command
        self.door_position = (cmd.float("x"), cmd.float("y"), cmd.float("z", 1.6))
        return {"x": self.door_position[0], "y": self.door_position[1],
                "z": self.door_position[2]}

    def cmd_onUserIdentified(self, request: Request) -> Generator:
        text = request.command.get("args")
        username: Optional[str] = None
        if text:
            try:
                username = parse_command(text).str("username")
            except Exception:
                username = None
        if not self.powered:
            # The paper's camera is assumed on; a powered-off adaptive
            # camera wakes itself to do its job.
            self.powered = True
        aim = self.semantics.validate(ACECmdLine(
            "setPosition", x=self.door_position[0], y=self.door_position[1],
            z=self.door_position[2],
        ))
        yield from self.cmd_setPosition(
            Request(command=aim, principal=self.name, received_at=self.ctx.sim.now)
        )
        self.greeted.append((self.ctx.sim.now, username or "unknown"))
        self.ctx.trace.emit(self.ctx.sim.now, self.name, "camera-greets",
                            user=username or "unknown")
        return {"user": username or "unknown"}
