"""Signal-processing kernels for the audio services (§4.15).

Pure numpy, unit-testable in isolation:

* tone/speech-like synthesis (the simulated microphones and TTS);
* the NLMS adaptive filter used by echo cancellation;
* Goertzel tone detection and the DTMF-style word signatures shared by
  text-to-speech and speech-to-command.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

SAMPLE_RATE = 8000
CHUNK_SAMPLES = 160  # 20 ms


# ---------------------------------------------------------------------------
# Synthesis
# ---------------------------------------------------------------------------

def tone(freq: float, n_samples: int, sample_rate: int = SAMPLE_RATE,
         amplitude: float = 0.5, phase: float = 0.0) -> np.ndarray:
    t = np.arange(n_samples, dtype=np.float64) / sample_rate
    return (amplitude * np.sin(2 * np.pi * freq * t + phase)).astype(np.float32)


def speech_like(n_samples: int, rng: np.random.Generator,
                sample_rate: int = SAMPLE_RATE) -> np.ndarray:
    """Rough speech surrogate: a few drifting formant tones with a slow
    amplitude envelope plus a little noise."""
    t = np.arange(n_samples, dtype=np.float64) / sample_rate
    signal = np.zeros(n_samples)
    for base in (220.0, 610.0, 1190.0):
        freq = base * (1.0 + 0.05 * np.sin(2 * np.pi * 0.7 * t + rng.uniform(0, 6.28)))
        signal += (1.0 / base ** 0.5) * np.sin(2 * np.pi * freq * t)
    envelope = 0.5 * (1.0 + np.sin(2 * np.pi * 2.1 * t + rng.uniform(0, 6.28)))
    signal = signal * envelope / np.max(np.abs(signal))
    signal += 0.01 * rng.standard_normal(n_samples)
    return (0.5 * signal).astype(np.float32)


# ---------------------------------------------------------------------------
# Echo path + NLMS cancellation
# ---------------------------------------------------------------------------

def synth_echo_path(rng: np.random.Generator, taps: int = 48,
                    delay: int = 8, decay: float = 0.6) -> np.ndarray:
    """A plausible room impulse response: delayed, decaying, sparse."""
    h = np.zeros(taps)
    h[delay] = 0.7
    for k in range(delay + 1, taps):
        h[k] = 0.7 * (decay ** (k - delay)) * rng.uniform(-0.4, 0.4)
    return h


def apply_echo(far: np.ndarray, path: np.ndarray) -> np.ndarray:
    """What the microphone hears of the loudspeaker signal."""
    return np.convolve(far, path)[: len(far)].astype(np.float32)


class NLMSFilter:
    """Normalized least-mean-squares adaptive echo canceller.

    Streaming interface: feed aligned (reference, microphone) blocks;
    returns the echo-cancelled block.  Converges to the unknown echo path
    while the far-end signal is active.
    """

    def __init__(self, taps: int = 64, mu: float = 0.5, eps: float = 1e-6):
        if not 0 < mu <= 2.0:
            raise ValueError(f"step size mu={mu} outside (0, 2]")
        self.taps = taps
        self.mu = mu
        self.eps = eps
        self.weights = np.zeros(taps, dtype=np.float64)
        self._history = np.zeros(taps, dtype=np.float64)

    def process(self, reference: np.ndarray, microphone: np.ndarray) -> np.ndarray:
        reference = np.asarray(reference, dtype=np.float64)
        microphone = np.asarray(microphone, dtype=np.float64)
        if reference.shape != microphone.shape:
            raise ValueError("reference and microphone blocks must align")
        out = np.empty_like(microphone)
        hist = self._history
        w = self.weights
        for i in range(len(reference)):
            hist[1:] = hist[:-1]
            hist[0] = reference[i]
            estimate = float(w @ hist)
            error = microphone[i] - estimate
            norm = float(hist @ hist) + self.eps
            w += (self.mu * error / norm) * hist
            out[i] = error
        self._history = hist
        self.weights = w
        return out.astype(np.float32)


def erle_db(echo: np.ndarray, residual: np.ndarray, eps: float = 1e-12) -> float:
    """Echo return loss enhancement: how much echo energy was removed."""
    num = float(np.sum(np.asarray(echo, dtype=np.float64) ** 2)) + eps
    den = float(np.sum(np.asarray(residual, dtype=np.float64) ** 2)) + eps
    return 10.0 * np.log10(num / den)


# ---------------------------------------------------------------------------
# Tone detection / word signatures (DTMF-style voice commands)
# ---------------------------------------------------------------------------

LOW_FREQS = (697.0, 770.0, 852.0, 941.0, 1040.0, 1150.0, 1270.0, 1400.0)
HIGH_FREQS = (1633.0, 1750.0, 1880.0, 2020.0, 2170.0, 2330.0, 2500.0, 2680.0)


def word_signature(word: str) -> Tuple[float, float]:
    """Deterministic (low, high) tone pair encoding a command word — the
    shared 'vocabulary' of TTS and speech-to-command."""
    digest = hashlib.sha256(word.encode()).digest()
    return LOW_FREQS[digest[0] % len(LOW_FREQS)], HIGH_FREQS[digest[1] % len(HIGH_FREQS)]


def synth_word(word: str, duration_s: float = 0.3,
               sample_rate: int = SAMPLE_RATE) -> np.ndarray:
    """The audible form of a command word: its two signature tones."""
    n = int(duration_s * sample_rate)
    f_low, f_high = word_signature(word)
    signal = tone(f_low, n, sample_rate, 0.35) + tone(f_high, n, sample_rate, 0.35)
    # Soft attack/release so chunk boundaries don't click.
    ramp = min(80, n // 4)
    window = np.ones(n)
    window[:ramp] = np.linspace(0, 1, ramp)
    window[-ramp:] = np.linspace(1, 0, ramp)
    return (signal * window).astype(np.float32)


def goertzel_power(signal: np.ndarray, freq: float,
                   sample_rate: int = SAMPLE_RATE) -> float:
    """Power of one frequency bin (classic Goertzel recurrence)."""
    signal = np.asarray(signal, dtype=np.float64)
    n = len(signal)
    if n == 0:
        return 0.0
    k = round(freq * n / sample_rate)
    omega = 2.0 * np.pi * k / n
    coeff = 2.0 * np.cos(omega)
    s_prev = s_prev2 = 0.0
    for x in signal:
        s = x + coeff * s_prev - s_prev2
        s_prev2, s_prev = s_prev, s
    power = s_prev2 ** 2 + s_prev ** 2 - coeff * s_prev * s_prev2
    return float(power) / n


def detect_word(signal: np.ndarray, vocabulary: Sequence[str],
                sample_rate: int = SAMPLE_RATE,
                threshold: float = 4.0) -> Optional[str]:
    """Which vocabulary word (if any) the signal carries.

    Decision rule: score every word by its signature pair's combined
    power; accept the best word only if both of its tones stand
    ``threshold``× above the *noise floor*, estimated as the mean power of
    all other bank frequencies (so detection works for any vocabulary
    size, including a single word).
    """
    if len(signal) == 0 or not vocabulary:
        return None
    bank = sorted(set(LOW_FREQS) | set(HIGH_FREQS))
    powers: Dict[float, float] = {f: goertzel_power(signal, f, sample_rate) for f in bank}
    best_word, best_score = None, 0.0
    for word in vocabulary:
        f_low, f_high = word_signature(word)
        score = powers[f_low] + powers[f_high]
        if score > best_score:
            best_word, best_score = word, score
    if best_word is None:
        return None
    f_low, f_high = word_signature(best_word)
    others = [p for f, p in powers.items() if f not in (f_low, f_high)]
    floor = float(np.mean(others)) + 1e-12
    if min(powers[f_low], powers[f_high]) < threshold * floor:
        return None
    return best_word


def chunk_signal(signal: np.ndarray, chunk: int = CHUNK_SAMPLES) -> List[np.ndarray]:
    """Split a signal into transport-sized chunks (zero-padding the tail)."""
    signal = np.asarray(signal, dtype=np.float32)
    chunks = []
    for start in range(0, len(signal), chunk):
        block = signal[start : start + chunk]
        if len(block) < chunk:
            block = np.pad(block, (0, chunk - len(block)))
        chunks.append(block)
    return chunks
