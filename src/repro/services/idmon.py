"""ID Monitor service (§4.6).

Receives identification notifications from every identification device
(FIU, iButton readers), updates the user's location in the AUD, and brings
workspaces up at the access point (Scenarios 2–3).  Failed identifications
are reported to the Network Logger (the paper's FBI joke lives here as a
trace event).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics, parse_command
from repro.core.client import CallError
from repro.core.daemon import ACEDaemon, Request
from repro.net import Address, ConnectionClosed, ConnectionRefused
from repro.services.asd import asd_lookup

#: identification-capable device classes the monitor subscribes to
ID_DEVICE_CLASSES = ("FIU", "IButtonReader")


class IDMonitorDaemon(ACEDaemon):
    """Routes identification events to AUD updates and workspaces (§4.6)."""

    service_type = "IDMonitor"

    def __init__(self, ctx, name, host, *, auto_open_workspace: bool = True,
                 rescan_interval: float = 10.0, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.auto_open_workspace = auto_open_workspace
        self.rescan_interval = rescan_interval
        self._subscribed: set = set()
        #: username -> most recent identification location
        self.last_seen: Dict[str, str] = {}
        self.identifications = 0
        self.failures = 0

    def build_semantics(self, sem: CommandSemantics) -> None:
        notify_args = (
            ArgSpec("source", ArgType.STRING, required=False),
            ArgSpec("trigger", ArgType.STRING, required=False),
            ArgSpec("principal", ArgType.STRING, required=False),
            ArgSpec("args", ArgType.STRING, required=False),
        )
        sem.define("onIdentified", *notify_args)
        sem.define("onIdentifyFailed", *notify_args)
        sem.define(
            "onServiceRegistered",
            ArgSpec("source", ArgType.STRING, required=False),
            ArgSpec("trigger", ArgType.STRING, required=False),
            ArgSpec("principal", ArgType.STRING, required=False),
            ArgSpec("args", ArgType.STRING, required=False),
            description="ASD registration events (Fig. 9 step 4)",
        )
        sem.define("getLastSeen", ArgSpec("username", ArgType.STRING))
        sem.define(
            "selectorShown",
            ArgSpec("username", ArgType.STRING),
            ArgSpec("workspaces", ArgType.VECTOR),
            description="a workspace selector popped up (Scenario 4)",
        )

    def on_started(self) -> None:
        self._spawn(self._watch_registrations(), "watch-asd")
        self._spawn(self._subscribe_loop(), "subscribe")

    def _watch_registrations(self) -> Generator:
        """Hear about new identification devices the moment they register
        with the ASD (Fig. 9 step 4), instead of waiting for a rescan."""
        if self.ctx.asd_address is None:
            return
        client = self._service_client()
        try:
            yield from client.call_once(
                self.ctx.asd_address,
                ACECmdLine(
                    "addNotification", cmd="register", listener=self.name,
                    host=self.host.name, port=self.port, callback="onServiceRegistered",
                ),
            )
        except (CallError, ConnectionClosed, ConnectionRefused):
            pass  # the periodic rescan still covers us

    def cmd_onServiceRegistered(self, request: Request) -> Generator:
        event = self._parse_event(request)
        if event is None:
            return {}
        cls_path = event.str("cls", "")
        if not any(cls in cls_path.split("/") for cls in ID_DEVICE_CLASSES):
            return {}
        device_name = event.str("name")
        device_addr = Address(event.str("host"), event.int("port"))
        client = self._service_client()
        for watched, callback in (("identified", "onIdentified"),
                                  ("identifyFailed", "onIdentifyFailed")):
            key = (device_name, watched)
            if key in self._subscribed:
                continue
            try:
                yield from client.call_once(
                    device_addr,
                    ACECmdLine(
                        "addNotification", cmd=watched, listener=self.name,
                        host=self.host.name, port=self.port, callback=callback,
                    ),
                )
                self._subscribed.add(key)
            except (CallError, ConnectionClosed, ConnectionRefused):
                continue
        return {}

    # ------------------------------------------------------------------
    def _subscribe_loop(self) -> Generator:
        """Find identification devices via the ASD and register for their
        ``identified``/``identifyFailed`` notifications; rescan so devices
        added later are picked up too."""
        while self.running:
            try:
                yield from self._subscribe_once()
            except Exception:
                pass
            yield self.ctx.sim.timeout(self.rescan_interval)

    def _subscribe_once(self) -> Generator:
        if self.ctx.asd_address is None:
            return
        client = self._service_client()
        for cls in ID_DEVICE_CLASSES:
            try:
                devices = yield from asd_lookup(client, self.ctx.asd_address, cls=cls)
            except (CallError, ConnectionClosed, ConnectionRefused):
                continue
            for device in devices:
                for watched, callback in (("identified", "onIdentified"),
                                          ("identifyFailed", "onIdentifyFailed")):
                    key = (device.name, watched)
                    if key in self._subscribed:
                        continue
                    try:
                        yield from client.call_once(
                            device.address,
                            ACECmdLine(
                                "addNotification", cmd=watched, listener=self.name,
                                host=self.host.name, port=self.port, callback=callback,
                            ),
                        )
                        self._subscribed.add(key)
                    except (CallError, ConnectionClosed, ConnectionRefused):
                        continue

    # ------------------------------------------------------------------
    def _parse_event(self, request: Request) -> Optional[ACECmdLine]:
        text = request.command.get("args")
        if not text:
            return None
        try:
            return parse_command(text)
        except Exception:
            return None

    def cmd_onIdentified(self, request: Request) -> Generator:
        event = self._parse_event(request)
        if event is None:
            return {}
        username = event.str("username")
        location = event.str("location")
        self.identifications += 1
        self.last_seen[username] = location
        self.ctx.trace.emit(
            self.ctx.sim.now, self.name, "user-identified",
            user=username, location=location, device=request.command.get("source", "?"),
        )
        client = self._service_client()
        # Scenario 2: update the user's current location in the AUD.
        try:
            auds = yield from asd_lookup(client, self.ctx.asd_address, name="aud")
            if auds:
                yield from client.call_once(
                    auds[0].address,
                    ACECmdLine("setLocation", username=username, location=location),
                )
        except (CallError, ConnectionClosed, ConnectionRefused):
            pass
        # Scenario 3/4: bring up the workspace, or a selector for several.
        if self.auto_open_workspace:
            yield from self._open_workspace(username, request)
        return {"username": username}

    def _open_workspace(self, username: str, request: Request) -> Generator:
        client = self._service_client()
        try:
            wsses = yield from asd_lookup(client, self.ctx.asd_address, cls="WorkspaceServer")
        except (CallError, ConnectionClosed, ConnectionRefused):
            return
        if not wsses:
            return
        wss_addr = wsses[0].address
        # The access point is the identification device's host.
        display = yield from self._device_host(request)
        if display is None:
            return
        try:
            listing = yield from client.call_once(
                wss_addr, ACECmdLine("listWorkspaces", user=username)
            )
        except (CallError, ConnectionClosed, ConnectionRefused):
            return
        count = listing.int("count", 0)
        if count == 0:
            return
        if count > 1:
            # Scenario 4: a selector GUI pops up; whoever watches
            # "selectorShown" drives the actual choice.
            yield from self.self_execute(
                ACECmdLine("selectorShown", username=username,
                           workspaces=listing["workspaces"])
            )
            return
        try:
            yield from client.call_once(
                wss_addr,
                ACECmdLine("openWorkspace", user=username, display=display),
            )
        except (CallError, ConnectionClosed, ConnectionRefused):
            pass

    def _device_host(self, request: Request) -> Generator:
        source = request.command.get("source")
        if not source:
            return None
        client = self._service_client()
        try:
            devices = yield from asd_lookup(client, self.ctx.asd_address, name=source)
        except (CallError, ConnectionClosed, ConnectionRefused):
            return None
        return devices[0].host if devices else None

    def cmd_onIdentifyFailed(self, request: Request) -> Generator:
        self.failures += 1
        self.ctx.trace.emit(self.ctx.sim.now, self.name, "identify-failed")
        if self.ctx.netlogger_address is not None:
            client = self._service_client()
            try:
                yield from client.call_once(
                    self.ctx.netlogger_address,
                    ACECmdLine("logEvent", source=self.name, event="invalid_identification",
                               detail=str(request.command.get("source", "?"))),
                )
            except (CallError, ConnectionClosed, ConnectionRefused):
                pass
        return {}

    def cmd_getLastSeen(self, request: Request) -> dict:
        username = request.command.str("username")
        return {"username": username, "location": self.last_seen.get(username, "unknown")}

    def cmd_selectorShown(self, request: Request) -> dict:
        return {"username": request.command.str("username")}
