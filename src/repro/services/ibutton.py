"""iButton Reader service (§4.9).

The Dallas Semiconductor iButton is "a simple solid-state memory device
that stores a unique serial number"; touching it to a reader identifies
its owner.  The daemon resolves serials through the AUD
(``findByIButton``) and emits the same ``identified``/``identifyFailed``
event commands as the FIU, so the ID Monitor treats both modalities
uniformly.
"""

from __future__ import annotations

from typing import Generator

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics
from repro.core.client import CallError
from repro.core.daemon import Request, ServiceError
from repro.net import ConnectionClosed, ConnectionRefused
from repro.services.devices import DeviceDaemon


class IButtonReaderDaemon(DeviceDaemon):
    """Reads iButton serials and identifies their owners (§4.9)."""

    service_type = "IButtonReader"

    def __init__(self, ctx, name, host, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.powered = True  # readers are passive; no power command needed
        self.reads = 0
        self.matches = 0

    def build_semantics(self, sem: CommandSemantics) -> None:
        super().build_semantics(sem)
        sem.define(
            "read",
            ArgSpec("serial", ArgType.STRING),
            description="an iButton touched to the reader (driver-injected)",
        )
        sem.define(
            "identified",
            ArgSpec("username", ArgType.STRING),
            ArgSpec("location", ArgType.STRING),
            ArgSpec("distance", ArgType.NUMBER, required=False, default=0.0),
        )
        sem.define(
            "identifyFailed",
            ArgSpec("location", ArgType.STRING),
            ArgSpec("distance", ArgType.NUMBER, required=False, default=0.0),
        )

    def _find_user(self, serial: str) -> Generator:
        from repro.services.asd import asd_lookup

        if self.ctx.asd_address is None:
            return None
        client = self._service_client()
        try:
            auds = yield from asd_lookup(client, self.ctx.asd_address, name="aud")
            if not auds:
                return None
            reply = yield from client.call_once(
                auds[0].address, ACECmdLine("findByIButton", serial=serial)
            )
        except (CallError, ConnectionClosed, ConnectionRefused):
            return None
        return reply.str("username")

    def cmd_read(self, request: Request) -> Generator:
        serial = request.command.str("serial")
        self.reads += 1
        username = yield from self._find_user(serial)
        location = self.room or self.host.name
        if username is not None:
            self.matches += 1
            yield from self.self_execute(
                ACECmdLine("identified", username=username, location=location)
            )
            return {"matched": 1, "username": username}
        yield from self.self_execute(ACECmdLine("identifyFailed", location=location))
        return {"matched": 0}

    def cmd_identified(self, request: Request) -> dict:
        # The listeners (ID Monitor, tracker, ...) do the real work; this
        # executing successfully is what fans out their notifications.
        return {"username": request.command.str("username")}

    def cmd_identifyFailed(self, request: Request) -> dict:
        return {}
