"""FIU — Fingerprint Identification Unit (§4.8).

The paper drives a Sony FIU-001/500; here the sensor is simulated: a
fingerprint is a feature vector, enrollment stores clean templates in the
AUD, and a physical press produces a noisy sample (Gaussian noise from a
seeded stream).  The daemon loads templates from the AUD ("loading its
tables of known fingerprints"), matches with nearest-template Euclidean
distance under a threshold, and — crucially for the scenarios — runs an
``identified``/``identifyFailed`` command through its own dispatch path so
notification listeners (the ID Monitor) fire exactly as in Fig. 8.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

import numpy as np

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics
from repro.core.client import CallError
from repro.core.daemon import Request, ServiceError
from repro.net import ConnectionClosed, ConnectionRefused
from repro.services.devices import DeviceDaemon

#: dimensionality of the simulated fingerprint feature space
TEMPLATE_DIM = 16


def make_template(rng: np.random.Generator) -> Tuple[float, ...]:
    """A user's true fingerprint features (unit-ish scale)."""
    return tuple(float(round(v, 6)) for v in rng.normal(0.0, 1.0, TEMPLATE_DIM))


def noisy_sample(
    template: Tuple[float, ...], rng: np.random.Generator, noise: float = 0.05
) -> Tuple[float, ...]:
    """What the sensor reads when a (possibly sweaty) finger is pressed."""
    arr = np.asarray(template) + rng.normal(0.0, noise, len(template))
    return tuple(float(round(v, 6)) for v in arr)


class FingerprintUnitDaemon(DeviceDaemon):
    """Controller interface to the (simulated) Sony FIU sensor."""

    service_type = "FIU"

    def __init__(self, ctx, name, host, *, threshold: float = 1.0,
                 reload_interval: float = 30.0, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.powered = True  # the sensor is always listening
        self.threshold = threshold
        self.reload_interval = reload_interval
        #: username -> template matrix row index
        self._usernames: list = []
        self._templates: Optional[np.ndarray] = None
        self.scans = 0
        self.matches = 0

    def build_semantics(self, sem: CommandSemantics) -> None:
        super().build_semantics(sem)
        sem.define(
            "scan",
            ArgSpec("sample", ArgType.VECTOR),
            description="a finger pressed to the sensor (driver-injected)",
        )
        sem.define("loadTemplates", description="(re)load known prints from the AUD")
        sem.define(
            "identified",
            ArgSpec("username", ArgType.STRING),
            ArgSpec("location", ArgType.STRING),
            ArgSpec("distance", ArgType.NUMBER, required=False, default=0.0),
            description="emitted on a positive match (watch me!)",
        )
        sem.define(
            "identifyFailed",
            ArgSpec("location", ArgType.STRING),
            ArgSpec("distance", ArgType.NUMBER, required=False, default=0.0),
            description="emitted on a failed identification",
        )

    def on_started(self) -> None:
        super().on_started()
        self._spawn(self._reload_loop(), "template-reload")

    # ------------------------------------------------------------------
    def _reload_loop(self) -> Generator:
        while self.running:
            try:
                yield from self._load_templates()
            except Exception:
                pass
            yield self.ctx.sim.timeout(self.reload_interval)

    def _load_templates(self) -> Generator:
        from repro.services.asd import asd_lookup

        if self.ctx.asd_address is None:
            return
        client = self._service_client()
        try:
            auds = yield from asd_lookup(client, self.ctx.asd_address, cls="UserDatabase")
            if not auds:
                auds = yield from asd_lookup(client, self.ctx.asd_address, name="aud")
            if not auds:
                return
            reply = yield from client.call_once(auds[0].address, ACECmdLine("listFingerprints"))
        except (CallError, ConnectionClosed, ConnectionRefused):
            return
        users = reply.get("users", ())
        templates = reply.get("templates", ())
        if users and templates:
            self._usernames = list(users)
            self._templates = np.asarray(templates, dtype=float)
        else:
            self._usernames = []
            self._templates = None

    def match(self, sample: Tuple[float, ...]) -> Tuple[Optional[str], float]:
        """Nearest-template match; returns ``(username | None, distance)``."""
        if self._templates is None or not len(self._usernames):
            return None, float("inf")
        vec = np.asarray(sample, dtype=float)
        if vec.shape[0] != self._templates.shape[1]:
            return None, float("inf")
        distances = np.linalg.norm(self._templates - vec, axis=1)
        best = int(np.argmin(distances))
        if distances[best] <= self.threshold:
            return self._usernames[best], float(distances[best])
        return None, float(distances[best])

    # -- handlers -------------------------------------------------------------
    def cmd_loadTemplates(self, request: Request) -> Generator:
        yield from self._load_templates()
        return {"count": len(self._usernames)}

    def cmd_scan(self, request: Request) -> Generator:
        sample = request.command.vector("sample")
        self.scans += 1
        username, distance = self.match(tuple(float(v) for v in sample))
        location = self.room or self.host.name
        if username is not None:
            self.matches += 1
            yield from self.self_execute(
                ACECmdLine("identified", username=username, location=location,
                           distance=round(distance, 6))
            )
            return {"matched": 1, "username": username, "distance": round(distance, 6)}
        yield from self.self_execute(
            ACECmdLine("identifyFailed", location=location,
                       distance=round(min(distance, 1e9), 6))
        )
        return {"matched": 0, "distance": round(min(distance, 1e9), 6)}

    def cmd_identified(self, request: Request) -> dict:
        # The work happens in the listeners (ID Monitor); executing the
        # command successfully is what triggers their notifications.
        return {"username": request.command.str("username")}

    def cmd_identifyFailed(self, request: Request) -> dict:
        return {}
