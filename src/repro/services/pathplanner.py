"""Automatic Path Creation (Ninja-style APC — §8.1/§9 future work).

The paper concedes that Ninja's Automatic Path Creation "has no equivalent
within ACE. Current developments in ACE call upon programmers to hard code
what services to look for … they cannot determine on their own what
services are needed to provide specific high-level functions", and §9
suggests integrating the concept.

This daemon closes that gap for media pipelines: ask it to connect a
*source format* to a *sink format* and it

1. discovers every Converter (and Distribution) service through the ASD;
2. builds a directed graph of format conversions (networkx);
3. finds the cheapest conversion path;
4. *instantiates* the path by issuing ``addSink`` commands hop by hop,
   exactly the "conduit … through which data can be streamed from service
   to service" that Ninja's paths describe.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

import networkx as nx

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics
from repro.net import Address, ConnectionClosed, ConnectionRefused
from repro.core.client import CallError
from repro.core.daemon import ACEDaemon, Request, ServiceError
from repro.services.asd import ServiceRecord, asd_lookup


class PathPlannerDaemon(ACEDaemon):
    """Plans and wires conversion paths over the converter graph."""

    service_type = "PathPlanner"

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "createPath",
            ArgSpec("from_fmt", ArgType.WORD),
            ArgSpec("to_fmt", ArgType.WORD),
            ArgSpec("source_host", ArgType.STRING),
            ArgSpec("source_port", ArgType.INTEGER),
            ArgSpec("sink_host", ArgType.STRING),
            ArgSpec("sink_port", ArgType.INTEGER),
            description="plan + wire a conversion path (Ninja APC)",
        )
        sem.define(
            "planPath",
            ArgSpec("from_fmt", ArgType.WORD),
            ArgSpec("to_fmt", ArgType.WORD),
            description="dry run: report the hop sequence only",
        )

    # ------------------------------------------------------------------
    def _discover_converters(self) -> Generator:
        """Converter records + their conversion pair, via getInfo/attrs.

        Converters advertise their conversion in their ACE service name by
        convention (``conv.<from>-<to>.*``) or answer ``getStreamStats``;
        to stay honest we query each daemon's ``listCommands``+state via a
        dedicated probe: the converter's ``conversion`` is readable through
        its ``setConversion`` semantics — in practice we ask the daemon
        directly with ``getInfo`` and parse our naming convention, falling
        back to probing.
        """
        client = self._service_client()
        records = yield from asd_lookup(client, self.ctx.asd_address, cls="Converter")
        converters: List[Tuple[ServiceRecord, str, str]] = []
        for record in records:
            # Naming convention first: "conv.<from>-<to>" or "...<from>2<to>".
            payload = record.name.split(".", 1)[-1]
            pair: Optional[Tuple[str, str]] = None
            if "-" in payload:
                maybe_from, _, maybe_to = payload.partition("-")
                pair = (maybe_from, maybe_to)
            if pair is None:
                continue
            converters.append((record, pair[0], pair[1]))
        return converters

    def _build_graph(self, converters) -> nx.DiGraph:
        graph = nx.DiGraph()
        for record, from_fmt, to_fmt in converters:
            # Parallel converters for the same hop: keep the first (stable
            # by ASD's sorted order); weight 1 per conversion hop.
            if not graph.has_edge(from_fmt, to_fmt):
                graph.add_edge(from_fmt, to_fmt, record=record, weight=1.0)
        return graph

    def _plan(self, from_fmt: str, to_fmt: str) -> Generator:
        converters = yield from self._discover_converters()
        graph = self._build_graph(converters)
        if from_fmt == to_fmt:
            return []
        if from_fmt not in graph or to_fmt not in graph:
            raise ServiceError(
                f"no conversion path {from_fmt} -> {to_fmt} (known formats: "
                f"{sorted(set(graph.nodes))})"
            )
        try:
            fmt_path = nx.shortest_path(graph, from_fmt, to_fmt, weight="weight")
        except nx.NetworkXNoPath:
            raise ServiceError(f"no conversion path {from_fmt} -> {to_fmt}")
        hops = []
        for a, b in zip(fmt_path, fmt_path[1:]):
            hops.append(graph.edges[a, b]["record"])
        return hops

    # ------------------------------------------------------------------
    def cmd_planPath(self, request: Request) -> Generator:
        cmd = request.command
        hops = yield from self._plan(cmd.str("from_fmt"), cmd.str("to_fmt"))
        result: dict = {"hops": len(hops)}
        if hops:
            result["path"] = tuple(h.name for h in hops)
        return result

    def cmd_createPath(self, request: Request) -> Generator:
        cmd = request.command
        hops = yield from self._plan(cmd.str("from_fmt"), cmd.str("to_fmt"))
        source = Address(cmd.str("source_host"), cmd.int("source_port"))
        sink = Address(cmd.str("sink_host"), cmd.int("sink_port"))
        # Wire: source -> hop1 -> hop2 -> ... -> sink.
        endpoints: List[Address] = [source] + [h.address for h in hops] + [sink]
        client = self._service_client()
        for upstream, downstream in zip(endpoints, endpoints[1:]):
            try:
                yield from client.call_once(
                    upstream,
                    ACECmdLine("addSink", host=downstream.host, port=downstream.port),
                )
            except (CallError, ConnectionClosed, ConnectionRefused) as exc:
                raise ServiceError(f"wiring {upstream} -> {downstream} failed: {exc}")
        self.ctx.trace.emit(
            self.ctx.sim.now, self.name, "path-created",
            path=" -> ".join(str(e) for e in endpoints),
        )
        result: dict = {"hops": len(hops)}
        if hops:
            result["path"] = tuple(h.name for h in hops)
        return result
