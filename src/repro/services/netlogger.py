"""Network Logger service (§4.14).

Append-only activity history "so that, if necessary, system administrators
can investigate them for security holes or system bugs".  Other services
send ``logEvent`` commands (startup does so automatically, Fig. 9 step 5);
administrators query with ``queryLog``/``countEvents``.  The intrusion
example from the paper — repeated invalid logins — is supported by
``countEvents source=... event=...`` over a time window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.lang import ArgSpec, ArgType, CommandSemantics
from repro.core.daemon import ACEDaemon, Request


@dataclass(frozen=True)
class LogEntry:
    time: float
    source: str
    event: str
    detail: str


class NetworkLoggerDaemon(ACEDaemon):
    """Append-only activity log (§4.14)."""

    service_type = "NetworkLogger"

    def __init__(self, ctx, name, host, *, max_entries: int = 100_000, **kwargs):
        kwargs.setdefault("authorize_commands", False)  # bootstrap service
        super().__init__(ctx, name, host, **kwargs)
        self.max_entries = max_entries
        self.entries: List[LogEntry] = []

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "logEvent",
            ArgSpec("source", ArgType.STRING),
            ArgSpec("event", ArgType.STRING),
            ArgSpec("detail", ArgType.STRING, required=False, default=""),
        )
        sem.define(
            "queryLog",
            ArgSpec("source", ArgType.STRING, required=False),
            ArgSpec("event", ArgType.STRING, required=False),
            ArgSpec("limit", ArgType.INTEGER, required=False, default=20),
        )
        sem.define(
            "countEvents",
            ArgSpec("source", ArgType.STRING, required=False),
            ArgSpec("event", ArgType.STRING, required=False),
            ArgSpec("since", ArgType.NUMBER, required=False, default=0.0),
        )

    def _matching(self, source: Optional[str], event: Optional[str], since: float = 0.0):
        return [
            e
            for e in self.entries
            if (source is None or e.source == source)
            and (event is None or e.event == event)
            and e.time >= since
        ]

    def cmd_logEvent(self, request: Request) -> dict:
        cmd = request.command
        entry = LogEntry(
            time=self.ctx.sim.now,
            source=cmd.str("source"),
            event=cmd.str("event"),
            detail=cmd.str("detail", ""),
        )
        self.entries.append(entry)
        if len(self.entries) > self.max_entries:
            # Drop the oldest decile rather than one-at-a-time churn.
            del self.entries[: self.max_entries // 10]
        return {"logged": 1}

    def cmd_queryLog(self, request: Request) -> dict:
        cmd = request.command
        matches = self._matching(cmd.get("source"), cmd.get("event"))
        limit = cmd.int("limit", 20)
        tail = matches[-limit:] if limit > 0 else []
        result: dict = {"count": len(matches)}
        if tail:
            result["events"] = tuple(f"{e.time:.6f}|{e.source}|{e.event}|{e.detail}" for e in tail)
        return result

    def cmd_countEvents(self, request: Request) -> dict:
        cmd = request.command
        matches = self._matching(cmd.get("source"), cmd.get("event"), cmd.float("since", 0.0))
        return {"count": len(matches)}
