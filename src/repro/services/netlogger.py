"""Network Logger service (§4.14).

Append-only activity history "so that, if necessary, system administrators
can investigate them for security holes or system bugs".  Other services
send ``logEvent`` commands (startup does so automatically, Fig. 9 step 5);
administrators query with ``queryLog``/``countEvents``.  The intrusion
example from the paper — repeated invalid logins — is supported by
``countEvents source=... event=...`` over a time window.

Query rows are ``|``-delimited with the shared :mod:`repro.lang.wire`
escaping, so a ``source`` or ``detail`` containing ``|`` survives the
round trip.  Entries are indexed per source, per event, and per
``(source, event)`` pair by sequence number; since simulated time is
monotonic, a parallel time array turns ``since=...`` into a bisect, so the
intrusion-detection count is O(log n) instead of a full-log scan.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.lang import ArgSpec, ArgType, CommandSemantics
from repro.lang.wire import join_wire
from repro.core.daemon import ACEDaemon, Request


@dataclass(frozen=True)
class LogEntry:
    time: float
    source: str
    event: str
    detail: str

    def to_wire(self) -> str:
        return join_wire((f"{self.time:.6f}", self.source, self.event, self.detail))


class NetworkLoggerDaemon(ACEDaemon):
    """Append-only activity log (§4.14)."""

    service_type = "NetworkLogger"

    def __init__(self, ctx, name, host, *, max_entries: int = 100_000, **kwargs):
        kwargs.setdefault("authorize_commands", False)  # bootstrap service
        super().__init__(ctx, name, host, **kwargs)
        self.max_entries = max_entries
        self.entries: List[LogEntry] = []
        # entries[i] has sequence id _base + i; the indices below hold
        # ascending sequence ids and survive trims via _base bookkeeping.
        self._base = 0
        self._times: List[float] = []
        self._by_source: Dict[str, List[int]] = {}
        self._by_event: Dict[str, List[int]] = {}
        self._by_pair: Dict[Tuple[str, str], List[int]] = {}

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "logEvent",
            ArgSpec("source", ArgType.STRING),
            ArgSpec("event", ArgType.STRING),
            ArgSpec("detail", ArgType.STRING, required=False, default=""),
        )
        sem.define(
            "queryLog",
            ArgSpec("source", ArgType.STRING, required=False),
            ArgSpec("event", ArgType.STRING, required=False),
            ArgSpec("limit", ArgType.INTEGER, required=False, default=20),
        )
        sem.define(
            "countEvents",
            ArgSpec("source", ArgType.STRING, required=False),
            ArgSpec("event", ArgType.STRING, required=False),
            ArgSpec("since", ArgType.NUMBER, required=False, default=0.0),
        )

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def _append(self, entry: LogEntry) -> None:
        seq = self._base + len(self.entries)
        self.entries.append(entry)
        self._times.append(entry.time)
        self._by_source.setdefault(entry.source, []).append(seq)
        self._by_event.setdefault(entry.event, []).append(seq)
        self._by_pair.setdefault((entry.source, entry.event), []).append(seq)
        if len(self.entries) > self.max_entries:
            # Drop the oldest decile rather than one-at-a-time churn.
            drop = self.max_entries // 10
            del self.entries[:drop]
            del self._times[:drop]
            self._base += drop
            self._prune_indices()

    def _prune_indices(self) -> None:
        """Drop sequence ids below ``_base`` (entries already trimmed)."""
        for index in (self._by_source, self._by_event, self._by_pair):
            dead = []
            for key, seqs in index.items():
                cut = bisect_left(seqs, self._base)
                if cut:
                    del seqs[:cut]
                if not seqs:
                    dead.append(key)
            for key in dead:
                del index[key]

    def _index_for(
        self, source: Optional[str], event: Optional[str]
    ) -> Union[Sequence[int], range]:
        """The ascending sequence-id list matching the source/event filter."""
        if source is not None and event is not None:
            return self._by_pair.get((source, event), [])
        if source is not None:
            return self._by_source.get(source, [])
        if event is not None:
            return self._by_event.get(event, [])
        return range(self._base, self._base + len(self.entries))

    def _cutoff_seq(self, since: float) -> int:
        """First sequence id whose entry time is >= ``since``; times are
        monotone (simulated clock), so this is a bisect."""
        if since <= 0.0:
            return self._base
        return self._base + bisect_left(self._times, since)

    def _entry(self, seq: int) -> LogEntry:
        return self.entries[seq - self._base]

    def _count_matching(self, source: Optional[str], event: Optional[str], since: float = 0.0) -> int:
        seqs = self._index_for(source, event)
        cutoff = self._cutoff_seq(since)
        if isinstance(seqs, range):
            return max(0, seqs.stop - max(seqs.start, cutoff))
        return len(seqs) - bisect_left(seqs, cutoff)

    def _matching(self, source: Optional[str], event: Optional[str], since: float = 0.0) -> List[LogEntry]:
        seqs = self._index_for(source, event)
        cutoff = self._cutoff_seq(since)
        if isinstance(seqs, range):
            seqs = range(max(seqs.start, cutoff), seqs.stop)
        else:
            seqs = seqs[bisect_left(seqs, cutoff):]
        return [self._entry(s) for s in seqs]

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def cmd_logEvent(self, request: Request) -> dict:
        cmd = request.command
        self._append(LogEntry(
            time=self.ctx.sim.now,
            source=cmd.str("source"),
            event=cmd.str("event"),
            detail=cmd.str("detail", ""),
        ))
        return {"logged": 1}

    def cmd_queryLog(self, request: Request) -> dict:
        cmd = request.command
        source, event = cmd.get("source"), cmd.get("event")
        limit = cmd.int("limit", 20)
        seqs = self._index_for(source, event)
        count = len(seqs)
        result: dict = {"count": count}
        if count and limit > 0:
            tail = seqs[max(0, count - limit):]
            result["events"] = tuple(self._entry(s).to_wire() for s in tail)
        return result

    def cmd_countEvents(self, request: Request) -> dict:
        cmd = request.command
        count = self._count_matching(
            cmd.get("source"), cmd.get("event"), cmd.float("since", 0.0)
        )
        return {"count": count}
