"""HRM — Host Resource Monitor (§4.1).

One per host; reports that host's CPU load, speed (bogomips), run-queue
length, memory and disk.  Two access styles, per the paper: query
(``getResources``) or push via the inherent notification mechanism —
the HRM executes a ``sample`` command on itself every interval, so any
service that registered ``addNotification cmd=sample ...`` receives
periodic load reports.
"""

from __future__ import annotations

from typing import Generator

from repro.lang import ArgSpec, ArgType, CommandSemantics
from repro.core.daemon import ACEDaemon, Request


class HostResourceMonitorDaemon(ACEDaemon):
    """Reports this host's load/capacity (§4.1)."""

    service_type = "HRM"

    def __init__(self, ctx, name, host, *, sample_interval: float = 5.0, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.sample_interval = sample_interval
        self._last_sample: dict = {}

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define("getResources", description="current host load/capacity figures")
        sem.define(
            "sample",
            ArgSpec("auto", ArgType.INTEGER, required=False, default=0),
            description="take a load sample (self-issued periodically)",
        )

    def on_started(self) -> None:
        self._spawn(self._sample_loop(), "sampler")

    def _measure(self) -> dict:
        host = self.host
        return {
            "host": host.name,
            "bogomips": float(host.bogomips),
            "cores": host.cores,
            "cpu_load": round(host.utilization(), 6),
            "run_queue": host.run_queue_length(),
            "mem_free_mb": round(host.memory.level, 3),
            "disk_free_mb": round(host.disk.level, 3),
        }

    def _sample_loop(self) -> Generator:
        """Periodically run our own ``sample`` command *through the normal
        dispatch path* so notification listeners fire (§4.1's push mode)."""
        from repro.lang import ACECmdLine
        from repro.core.daemon import Request as Req

        while self.running:
            yield self.ctx.sim.timeout(self.sample_interval)
            if not self.running:
                return
            request = Req(
                command=ACECmdLine("sample", auto=1),
                principal=self.name,
                received_at=self.ctx.sim.now,
            )
            slot = self.ctx.sim.event()
            try:
                yield self._control_queue.put((request, slot))
                yield slot
            except Exception:
                return

    def cmd_sample(self, request: Request) -> dict:
        self._last_sample = self._measure()
        self.host.reset_utilization()  # windowed utilization per sample
        return dict(self._last_sample)

    def cmd_getResources(self, request: Request) -> dict:
        return self._measure()
