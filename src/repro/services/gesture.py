"""Gesture recognition (§9: "gesture and face recognition", §7.5's
"commands ... given by voice and gestures").

A gesture is a 2D stroke — the trajectory a hand (or laser pointer) traces
in front of a camera.  The recognizer is the classic $1-style template
matcher: strokes are resampled to a fixed number of points, translated to
their centroid, scale-normalized, and compared by mean point-to-point
distance against enrolled templates.  Like the speech-to-command daemon,
a recognized gesture fires a mapped ACE command.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics, parse_command
from repro.net import Address, ConnectionClosed, ConnectionRefused
from repro.core.client import CallError
from repro.core.daemon import ACEDaemon, Request, ServiceError

#: every stroke is resampled to this many points before matching
RESAMPLE_POINTS = 32


def _as_stroke(flat: Tuple[float, ...]) -> np.ndarray:
    """A flat (x1,y1,x2,y2,...) vector → an (N,2) array."""
    if len(flat) < 6 or len(flat) % 2 != 0:
        raise ServiceError("a stroke needs >= 3 (x,y) pairs, flattened")
    return np.asarray(flat, dtype=float).reshape(-1, 2)


def resample(stroke: np.ndarray, n: int = RESAMPLE_POINTS) -> np.ndarray:
    """Resample to n points equally spaced along the path length."""
    deltas = np.diff(stroke, axis=0)
    seg_lengths = np.hypot(deltas[:, 0], deltas[:, 1])
    total = float(seg_lengths.sum())
    if total <= 0:
        return np.repeat(stroke[:1], n, axis=0)
    cumulative = np.concatenate([[0.0], np.cumsum(seg_lengths)])
    targets = np.linspace(0.0, total, n)
    xs = np.interp(targets, cumulative, stroke[:, 0])
    ys = np.interp(targets, cumulative, stroke[:, 1])
    return np.column_stack([xs, ys])


def normalize(stroke: np.ndarray) -> np.ndarray:
    """Translate to centroid, scale to unit RMS radius."""
    pts = resample(stroke)
    pts = pts - pts.mean(axis=0)
    scale = float(np.sqrt((pts ** 2).sum(axis=1).mean()))
    if scale > 1e-9:
        pts = pts / scale
    return pts


def stroke_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Mean point-to-point distance between normalized strokes (the better
    of forward and reversed drawing directions)."""
    na, nb = normalize(a), normalize(b)
    forward = float(np.hypot(*(na - nb).T).mean())
    backward = float(np.hypot(*(na - nb[::-1]).T).mean())
    return min(forward, backward)


# -- canonical gesture shapes for enrollment/demo ---------------------------

def make_gesture(shape: str, n: int = 24, rng: Optional[np.random.Generator] = None,
                 noise: float = 0.0) -> Tuple[float, ...]:
    """Synthesize a named stroke (circle, zigzag, line, vee), flattened."""
    t = np.linspace(0, 1, n)
    if shape == "circle":
        pts = np.column_stack([np.cos(2 * np.pi * t), np.sin(2 * np.pi * t)])
    elif shape == "line":
        pts = np.column_stack([t, np.zeros_like(t)])
    elif shape == "zigzag":
        pts = np.column_stack([t, 0.3 * np.sign(np.sin(6 * np.pi * t)) * np.minimum(1, 10 * t * (1 - t))])
    elif shape == "vee":
        pts = np.column_stack([t, np.abs(t - 0.5)])
    else:
        raise ValueError(f"unknown gesture shape {shape!r}")
    if rng is not None and noise > 0:
        pts = pts + rng.normal(0, noise, pts.shape)
    return tuple(float(round(v, 6)) for v in pts.reshape(-1))


class GestureRecognitionDaemon(ACEDaemon):
    """Matches strokes against enrolled gestures; fires mapped commands."""

    service_type = "GestureRecognition"

    def __init__(self, ctx, name, host, *, threshold: float = 0.35, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        self.threshold = threshold
        self._templates: Dict[str, np.ndarray] = {}
        #: gesture name -> (target address, command string)
        self.mappings: Dict[str, Tuple[Address, str]] = {}
        self.recognized: List[Tuple[float, str]] = []

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "enrollGesture",
            ArgSpec("gesture", ArgType.WORD),
            ArgSpec("stroke", ArgType.VECTOR),
            description="store a template stroke (flattened x,y pairs)",
        )
        sem.define(
            "mapGesture",
            ArgSpec("gesture", ArgType.WORD),
            ArgSpec("host", ArgType.STRING),
            ArgSpec("port", ArgType.INTEGER),
            ArgSpec("command", ArgType.STRING),
        )
        sem.define(
            "observeStroke",
            ArgSpec("stroke", ArgType.VECTOR),
            description="a stroke seen by the camera (driver-injected)",
        )
        sem.define("gestureRecognized", ArgSpec("gesture", ArgType.WORD),
                   ArgSpec("distance", ArgType.NUMBER, required=False, default=0.0))
        sem.define("listGestures")

    def cmd_enrollGesture(self, request: Request) -> dict:
        cmd = request.command
        stroke = _as_stroke(cmd.vector("stroke"))
        self._templates[cmd.str("gesture")] = normalize(stroke)
        return {"gestures": len(self._templates)}

    def cmd_mapGesture(self, request: Request) -> dict:
        cmd = request.command
        if cmd.str("gesture") not in self._templates:
            raise ServiceError(f"enroll gesture {cmd.str('gesture')!r} first")
        try:
            parse_command(cmd.str("command"))
        except Exception as exc:
            raise ServiceError(f"unparseable mapped command: {exc}")
        self.mappings[cmd.str("gesture")] = (
            Address(cmd.str("host"), cmd.int("port")), cmd.str("command"))
        return {"mapped": len(self.mappings)}

    def cmd_listGestures(self, request: Request) -> dict:
        names = tuple(sorted(self._templates))
        return {"count": len(names), **({"gestures": names} if names else {})}

    def classify(self, stroke: np.ndarray) -> Tuple[Optional[str], float]:
        if not self._templates:
            return None, float("inf")
        scored = sorted(
            (stroke_distance(stroke, tpl), name)
            for name, tpl in self._templates.items()
        )
        best_distance, best_name = scored[0]
        if best_distance > self.threshold:
            return None, best_distance
        return best_name, best_distance

    def cmd_observeStroke(self, request: Request) -> Generator:
        stroke = _as_stroke(request.command.vector("stroke"))
        yield from self.host.execute(3.0)  # vision work
        name, distance = self.classify(stroke)
        if name is None:
            return {"matched": 0, "distance": round(min(distance, 1e9), 6)}
        self.recognized.append((self.ctx.sim.now, name))
        yield from self.self_execute(
            ACECmdLine("gestureRecognized", gesture=name, distance=round(distance, 6)))
        mapping = self.mappings.get(name)
        if mapping is not None:
            target, command_text = mapping
            client = self._service_client()
            try:
                yield from client.call_once(target, parse_command(command_text))
            except (CallError, ConnectionClosed, ConnectionRefused):
                self.ctx.trace.emit(self.ctx.sim.now, self.name,
                                    "gesture-command-failed", gesture=name)
        return {"matched": 1, "gesture": name, "distance": round(distance, 6)}

    def cmd_gestureRecognized(self, request: Request) -> dict:
        return {"gesture": request.command.str("gesture")}
