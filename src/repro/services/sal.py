"""SAL — System Application Launcher (§4.4).

The system-wide front door for running applications: a client asks the SAL,
the SAL picks a host ("randomly or by resource allocation by communicating
with the SRM", §4.4) and delegates to that host's HAL.  Both placement
policies are implemented so experiment E6 can compare them.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics
from repro.core.client import CallError
from repro.core.daemon import ACEDaemon, Request, ServiceError
from repro.net import ConnectionClosed, ConnectionRefused
from repro.services.asd import ServiceRecord, asd_lookup


class SystemApplicationLauncherDaemon(ACEDaemon):
    """System-wide launcher delegating to per-host HALs (§4.4)."""

    service_type = "SAL"

    def __init__(self, ctx, name, host, *, placement: str = "srm", **kwargs):
        """``placement``: 'srm' (resource-aware, default) or 'random'."""
        if placement not in ("srm", "random"):
            raise ValueError(f"placement must be srm|random, got {placement!r}")
        super().__init__(ctx, name, host, **kwargs)
        self.placement = placement
        self._placement_rng = ctx.rng.py(f"sal.{name}.placement")

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "launchApp",
            ArgSpec("app", ArgType.STRING),
            ArgSpec("args", ArgType.STRING, required=False, default=""),
            ArgSpec("host", ArgType.STRING, required=False),
            ArgSpec("min_mem_mb", ArgType.NUMBER, required=False, default=0.0),
            description="launch anywhere suitable in the ACE (§4.4)",
        )
        sem.define("setPlacement", ArgSpec("policy", ArgType.WORD))

    # ------------------------------------------------------------------
    def _find_hals(self) -> Generator:
        client = self._service_client()
        records = yield from asd_lookup(client, self.ctx.asd_address, cls="HAL")
        return records

    def _pick_hal(self, hals, target_host: Optional[str]) -> Optional[ServiceRecord]:
        if target_host is not None:
            for record in hals:
                if record.host == target_host:
                    return record
            return None
        if not hals:
            return None
        return hals[self._placement_rng.randrange(len(hals))]

    def _srm_choice(self, min_mem_mb: float) -> Generator:
        client = self._service_client()
        try:
            srms = yield from asd_lookup(client, self.ctx.asd_address, cls="SRM")
        except (CallError, ConnectionClosed, ConnectionRefused):
            return None
        if not srms:
            return None
        try:
            reply = yield from client.call_once(
                srms[0].address,
                ACECmdLine("selectHost", min_mem_mb=float(min_mem_mb)),
            )
        except (CallError, ConnectionClosed, ConnectionRefused):
            return None
        return reply.str("host")

    def cmd_launchApp(self, request: Request) -> Generator:
        cmd = request.command
        target_host = cmd.get("host")
        if target_host is None and self.placement == "srm":
            target_host = yield from self._srm_choice(cmd.float("min_mem_mb", 0.0))
        hals = yield from self._find_hals()
        record = self._pick_hal(hals, target_host)
        if record is None:
            raise ServiceError(
                f"no HAL available on {target_host!r}" if target_host else "no HALs registered"
            )
        client = self._service_client()
        try:
            reply = yield from client.call_once(
                record.address,
                ACECmdLine("launch", app=cmd.str("app"), args=cmd.str("args", "")),
            )
        except (CallError, ConnectionClosed, ConnectionRefused) as exc:
            raise ServiceError(f"delegation to {record.name} failed: {exc}")
        self.ctx.trace.emit(
            self.ctx.sim.now, self.name, "app-placed",
            app=cmd.str("app"), host=reply.str("host"), pid=reply.int("pid"),
        )
        return {"pid": reply.int("pid"), "host": reply.str("host"), "app": cmd.str("app")}

    def cmd_setPlacement(self, request: Request) -> dict:
        policy = request.command.str("policy")
        if policy not in ("srm", "random"):
            raise ServiceError("policy must be srm or random")
        self.placement = policy
        return {"policy": policy}
