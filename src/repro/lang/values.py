"""Value model and serialization for ACE argument values.

Python-native representation:

=========  =======================================
ACE type   Python type
=========  =======================================
INTEGER    ``int`` (not bool)
FLOAT      ``float``
WORD       ``str`` matching ``[A-Za-z0-9_]+``
STRING     any other ``str`` (serialized quoted)
VECTOR     ``tuple`` of homogeneous scalars
ARRAY      ``tuple`` of VECTORs (same element type)
=========  =======================================

Tuples (not lists) are used so values are hashable and commands can be
compared/deduplicated; the parser produces tuples, and ``format_value``
accepts lists for convenience but normalizes.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Any, Sequence, Tuple, Union

from repro.lang.errors import ACELanguageError

_WORD_RE = re.compile(r"^[A-Za-z0-9_]+$")
# Word-shaped strings the lexer would read back as numbers ("42", "1e5"):
# these must be quoted to survive the round trip as strings.
_NUMERIC_AMBIGUOUS_RE = re.compile(r"^\d+(?:[eE]\d+)?$")

Scalar = Union[int, float, str]
Value = Union[Scalar, Tuple]


def is_word(text: str) -> bool:
    """True when ``text`` can be serialized bare (no quotes) and still
    parse back as a WORD rather than a number."""
    return bool(_WORD_RE.match(text)) and not _NUMERIC_AMBIGUOUS_RE.match(text)


def _format_scalar(value: Scalar) -> str:
    if isinstance(value, bool):
        raise ACELanguageError("booleans are not an ACE type; use words on/off")
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ACELanguageError(f"non-finite floats are not serializable: {value!r}")
        # repr round-trips floats exactly; ensure a '.'/exponent so the
        # parser sees a FLOAT, not an INTEGER.
        text = repr(value)
        if "." not in text and "e" not in text:
            text += ".0"
        return text
    if isinstance(value, str):
        if is_word(value):
            return value
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        if not _printable(value):
            raise ACELanguageError(f"string contains non-printable characters: {value!r}")
        return f'"{escaped}"'
    raise ACELanguageError(f"unsupported ACE value type {type(value).__name__}")


# Commands repeat the same scalars constantly (status words, coordinates,
# sequence numbers), and formatting a string runs two regexes.  ``typed=True``
# keeps 1, 1.0 and True from colliding as cache keys (booleans must still
# raise).  Exceptions are not cached by lru_cache, so invalid scalars keep
# raising on every call.
_format_scalar_cached = lru_cache(maxsize=4096, typed=True)(_format_scalar)


def _printable(text: str) -> bool:
    # Only control characters are banned; anything else survives quoting.
    return all(ch not in "\n\r\t" and (ord(ch) >= 32 and ord(ch) != 127) for ch in text)


def scalar_kind(value: Scalar) -> str:
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise ACELanguageError(f"not an ACE scalar: {value!r}")
    if isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "float"
    return "word" if is_word(value) else "string"


def normalize_value(value: Any) -> Value:
    """Coerce lists to tuples and validate homogeneity of vectors/arrays."""
    if isinstance(value, (list, tuple)):
        items = tuple(normalize_value(v) for v in value)
        if not items:
            raise ACELanguageError("empty vectors/arrays cannot be serialized")
        if all(isinstance(v, tuple) for v in items):
            kinds = {_vector_kind(v) for v in items}
            if len(kinds) > 1:
                raise ACELanguageError(f"array mixes vector element types: {sorted(kinds)}")
            return items
        if any(isinstance(v, tuple) for v in items):
            raise ACELanguageError("array mixes vectors and scalars")
        kinds = {_element_bucket(v) for v in items}
        if len(kinds) > 1:
            raise ACELanguageError(f"vector mixes element types: {sorted(kinds)}")
        return items
    if isinstance(value, bool):
        raise ACELanguageError("booleans are not an ACE type; use words on/off")
    if isinstance(value, (int, float, str)):
        return value
    raise ACELanguageError(f"unsupported ACE value type {type(value).__name__}")


def _element_bucket(value: Scalar) -> str:
    """Vectors are homogeneous by ACE type; words and strings share STRING's
    bucket (the paper's grammar allows {WORD,...} | {STRING,...} and every
    word is a string)."""
    kind = scalar_kind(value)
    return "string" if kind in ("word", "string") else kind


def _vector_kind(vector: Tuple) -> str:
    if not vector or any(isinstance(v, tuple) for v in vector):
        raise ACELanguageError("array elements must be non-empty scalar vectors")
    kinds = {_element_bucket(v) for v in vector}
    if len(kinds) > 1:
        raise ACELanguageError(f"vector mixes element types: {sorted(kinds)}")
    return kinds.pop()


def format_value(value: Any) -> str:
    """Serialize a (normalized or raw) value to its wire form."""
    value = normalize_value(value)
    return format_normalized(value)


def format_normalized(value: Value) -> str:
    """Serialize a value that is already normalized (as produced by
    :func:`normalize_value` or the parser) without re-validating it —
    the hot path for ``ACECmdLine.to_string``."""
    if isinstance(value, tuple):
        if isinstance(value[0], tuple):  # ARRAY
            return "{" + ",".join(format_normalized(v) for v in value) + "}"
        return "{" + ",".join(_format_scalar_cached(v) for v in value) + "}"
    return _format_scalar_cached(value)
