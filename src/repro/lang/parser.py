"""Recursive-descent parser: command string → ACECmdLine (Fig. 5's
"CmdParser"), with optional semantic checking against a daemon's
:class:`~repro.lang.semantics.CommandSemantics`.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.lang.command import ACECmdLine
from repro.lang.errors import ParseError
from repro.lang.lexer import Token, TokenKind, tokenize
from repro.lang.values import Value


class _Cursor:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.END:
            self.pos += 1
        return tok

    def accept(self, kind: TokenKind) -> Optional[Token]:
        if self.tokens[self.pos].kind is kind:
            return self.next()
        return None

    def expect(self, kind: TokenKind) -> Token:
        tok = self.peek()
        if tok.kind is not kind:
            raise ParseError(f"expected {kind.value}, got {tok.text!r}", tok.position)
        return self.next()


def _unquote(text: str) -> str:
    return re.sub(r"\\(.)", r"\1", text[1:-1])


def _scalar(token: Token) -> Value:
    if token.kind is TokenKind.INTEGER:
        return int(token.text)
    if token.kind is TokenKind.FLOAT:
        return float(token.text)
    if token.kind is TokenKind.WORD:
        return token.text
    if token.kind is TokenKind.STRING:
        return _unquote(token.text)
    raise ParseError(f"expected a value, got {token.text!r}", token.position)


def _parse_value(cur: _Cursor) -> Value:
    tok = cur.peek()
    if tok.kind is TokenKind.LBRACE:
        return _parse_braced(cur)
    return _scalar(cur.next())


def _parse_braced(cur: _Cursor) -> Tuple:
    """A ``{...}`` construct: VECTOR of scalars or ARRAY of vectors."""
    open_tok = cur.expect(TokenKind.LBRACE)
    items: List[Value] = []
    if cur.peek().kind is TokenKind.RBRACE:
        raise ParseError("empty vector/array", cur.peek().position)
    while True:
        tok = cur.peek()
        if tok.kind is TokenKind.LBRACE:
            items.append(_parse_braced(cur))
        else:
            items.append(_scalar(cur.next()))
        if cur.accept(TokenKind.COMMA):
            continue
        cur.expect(TokenKind.RBRACE)
        break
    vectors = [isinstance(item, tuple) for item in items]
    if any(vectors) and not all(vectors):
        raise ParseError("array mixes vectors and scalars", open_tok.position)
    return tuple(items)


def parse_command(text: str) -> ACECmdLine:
    """Parse one command string, e.g. ``setPosition x=1.0 y=2.0 z=0.5;``"""
    cur = _Cursor(tokenize(text))
    name_tok = cur.peek()
    if name_tok.kind is not TokenKind.WORD:
        raise ParseError(f"expected command name, got {name_tok.text!r}", name_tok.position)
    cur.next()
    args: dict = {}
    while True:
        tok = cur.peek()
        if tok.kind is TokenKind.SEMICOLON:
            cur.next()
            break
        if tok.kind is TokenKind.END:
            raise ParseError("missing terminating ';'", tok.position)
        if tok.kind is not TokenKind.WORD and tok.kind is not TokenKind.INTEGER:
            raise ParseError(f"expected argument name, got {tok.text!r}", tok.position)
        name = cur.next().text
        cur.expect(TokenKind.EQUALS)
        if name in args:
            raise ParseError(f"duplicate argument {name!r}", tok.position)
        args[name] = _parse_value(cur)
        cur.accept(TokenKind.COMMA)  # optional separator
    tail = cur.peek()
    if tail.kind is not TokenKind.END:
        raise ParseError(f"trailing input after ';': {tail.text!r}", tail.position)
    try:
        return ACECmdLine(name_tok.text, args)
    except Exception as exc:  # value normalization errors carry positions poorly
        raise ParseError(str(exc))


class CommandParser:
    """A parser bound to a daemon's semantics (checks as it parses).

    This mirrors the paper's description: "This parser ... checks the
    incoming string for syntactic and semantic correctness (against those
    parameters defined within the receiving daemon/service)".
    """

    def __init__(self, semantics: Optional["CommandSemantics"] = None):
        self.semantics = semantics

    def parse(self, text: str) -> ACECmdLine:
        command = parse_command(text)
        if self.semantics is not None:
            command = self.semantics.validate(command)
        return command


from repro.lang.semantics import CommandSemantics  # noqa: E402  (cycle-breaking)
