"""Recursive-descent parser: command string → ACECmdLine (Fig. 5's
"CmdParser"), with optional semantic checking against a daemon's
:class:`~repro.lang.semantics.CommandSemantics`.
"""

from __future__ import annotations

import re
import sys
from typing import List, Optional, Tuple

from repro.lang.command import ACECmdLine
from repro.lang.errors import ParseError
from repro.lang.lexer import Token, TokenKind, tokenize
from repro.lang.values import Value


class _Cursor:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.END:
            self.pos += 1
        return tok

    def accept(self, kind: TokenKind) -> Optional[Token]:
        if self.tokens[self.pos].kind is kind:
            return self.next()
        return None

    def expect(self, kind: TokenKind) -> Token:
        tok = self.peek()
        if tok.kind is not kind:
            raise ParseError(f"expected {kind.value}, got {tok.text!r}", tok.position)
        return self.next()


def _unquote(text: str) -> str:
    return re.sub(r"\\(.)", r"\1", text[1:-1])


def _scalar(token: Token) -> Value:
    if token.kind is TokenKind.INTEGER:
        return int(token.text)
    if token.kind is TokenKind.FLOAT:
        return float(token.text)
    if token.kind is TokenKind.WORD:
        return token.text
    if token.kind is TokenKind.STRING:
        return _unquote(token.text)
    raise ParseError(f"expected a value, got {token.text!r}", token.position)


def _parse_value(cur: _Cursor) -> Value:
    tok = cur.peek()
    if tok.kind is TokenKind.LBRACE:
        return _parse_braced(cur)
    return _scalar(cur.next())


def _parse_braced(cur: _Cursor) -> Tuple:
    """A ``{...}`` construct: VECTOR of scalars or ARRAY of vectors."""
    open_tok = cur.expect(TokenKind.LBRACE)
    items: List[Value] = []
    if cur.peek().kind is TokenKind.RBRACE:
        raise ParseError("empty vector/array", cur.peek().position)
    while True:
        tok = cur.peek()
        if tok.kind is TokenKind.LBRACE:
            items.append(_parse_braced(cur))
        else:
            items.append(_scalar(cur.next()))
        if cur.accept(TokenKind.COMMA):
            continue
        cur.expect(TokenKind.RBRACE)
        break
    vectors = [isinstance(item, tuple) for item in items]
    if any(vectors) and not all(vectors):
        raise ParseError("array mixes vectors and scalars", open_tok.position)
    return tuple(items)


# -- fast lane ---------------------------------------------------------------
#
# The dominant wire form by far is flat: ``name k1=v1 k2=v2;`` with scalar
# values and no vectors, arrays, escapes, or comma separators.  The fast
# lane recognizes exactly that shape with two compiled regexes and builds
# the command without tokenizing; *anything* it is unsure about — including
# every malformed input — falls back to the full tokenizer/parser so error
# messages and accepted language are identical (property-tested).
#
# Equivalence notes, mirroring the lexer's rules:
# - Bare values are classified with the lexer's own INTEGER/FLOAT/WORD
#   regexes (fullmatch, in the lexer's tie-break order INTEGER before WORD,
#   FLOAT before WORD so ``2e3`` stays a FLOAT) — never with Python's more
#   permissive ``int()``/``float()`` acceptance.
# - The bare-token charset excludes *all* whitespace (the lexer only skips
#   space/tab; a NBSP or newline must keep falling through to the lexer's
#   "unexpected character" error).
# - Quoted values are accepted only without backslashes; escape handling
#   stays in the full parser.
# - Command names must start with a letter/underscore here: digit-led WORDs
#   ("3cam") are legal command names but need longest-match disambiguation
#   against INTEGER/FLOAT, so they take the slow path.

_FAST_LINE_RE = re.compile(
    r"[ \t]*([A-Za-z_][A-Za-z0-9_]*)"
    r"((?:[ \t]+[A-Za-z0-9_]+=(?:\"[^\"\\]*\"|[^\s;{},\"=]+))*)"
    r"[ \t]*;[ \t]*\Z"
)
_FAST_ARG_RE = re.compile(r"([A-Za-z0-9_]+)=(?:\"([^\"\\]*)\"|([^\s;{},\"=]+))")
_INTEGER_FULL = re.compile(r"-?\d+\Z")
_FLOAT_FULL = re.compile(r"(?:-?(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?|-?\d+[eE][-+]?\d+)\Z")
_WORD_FULL = re.compile(r"[A-Za-z0-9_]+\Z")

_intern = sys.intern


def _parse_fast(text: str) -> Optional[ACECmdLine]:
    """Parse the flat form, or return None to defer to the full parser."""
    line = _FAST_LINE_RE.match(text)
    if line is None:
        return None
    args: dict = {}
    n_args = 0
    for match in _FAST_ARG_RE.finditer(line.group(2)):
        n_args += 1
        quoted = match.group(2)
        if quoted is not None:
            value: Value = quoted
        else:
            bare = match.group(3)
            if _INTEGER_FULL.match(bare):
                value = int(bare)
            elif _FLOAT_FULL.match(bare):
                value = float(bare)
            elif _WORD_FULL.match(bare):
                value = bare
            else:
                return None  # e.g. "--5": the lexer rejects it with context
        args[_intern(match.group(1))] = value
    if len(args) != n_args:
        return None  # duplicate argument: full parser raises the exact error
    return ACECmdLine._from_normalized(_intern(line.group(1)), args)


def parse_command(text: str) -> ACECmdLine:
    """Parse one command string, e.g. ``setPosition x=1.0 y=2.0 z=0.5;``

    Tries the flat-form fast lane first and falls back to
    :func:`parse_command_full` for everything else (vectors, arrays,
    escaped strings, comma separators, and all malformed input).
    """
    command = _parse_fast(text)
    if command is not None:
        return command
    return parse_command_full(text)


def parse_command_full(text: str) -> ACECmdLine:
    """The complete tokenizer + recursive-descent path (every construct)."""
    cur = _Cursor(tokenize(text))
    name_tok = cur.peek()
    if name_tok.kind is not TokenKind.WORD:
        raise ParseError(f"expected command name, got {name_tok.text!r}", name_tok.position)
    cur.next()
    args: dict = {}
    while True:
        tok = cur.peek()
        if tok.kind is TokenKind.SEMICOLON:
            cur.next()
            break
        if tok.kind is TokenKind.END:
            raise ParseError("missing terminating ';'", tok.position)
        if tok.kind is not TokenKind.WORD and tok.kind is not TokenKind.INTEGER:
            raise ParseError(f"expected argument name, got {tok.text!r}", tok.position)
        name = cur.next().text
        cur.expect(TokenKind.EQUALS)
        if name in args:
            raise ParseError(f"duplicate argument {name!r}", tok.position)
        args[name] = _parse_value(cur)
        cur.accept(TokenKind.COMMA)  # optional separator
    tail = cur.peek()
    if tail.kind is not TokenKind.END:
        raise ParseError(f"trailing input after ';': {tail.text!r}", tail.position)
    try:
        return ACECmdLine(name_tok.text, args)
    except Exception as exc:  # value normalization errors carry positions poorly
        raise ParseError(str(exc))


class CommandParser:
    """A parser bound to a daemon's semantics (checks as it parses).

    This mirrors the paper's description: "This parser ... checks the
    incoming string for syntactic and semantic correctness (against those
    parameters defined within the receiving daemon/service)".
    """

    def __init__(self, semantics: Optional["CommandSemantics"] = None):
        self.semantics = semantics

    def parse(self, text: str) -> ACECmdLine:
        command = parse_command(text)
        if self.semantics is not None:
            command = self.semantics.validate(command)
        return command


from repro.lang.semantics import CommandSemantics  # noqa: E402  (cycle-breaking)
