"""Field escaping for ``|``-delimited wire records.

Several services flatten structured records into single ACE string values
with ``|`` separators (ASD ServiceRecords, NetLogger rows, obs span
exports).  These helpers make embedded ``|`` and ``\\`` survive the round
trip; they were born in ``repro.services.asd`` and promoted here so every
record format shares one implementation.
"""

from __future__ import annotations

from typing import List


def escape_field(value: str) -> str:
    """Make a record field safe around the ``|`` wire delimiter."""
    return value.replace("\\", "\\\\").replace("|", "\\|")


def split_wire(text: str) -> List[str]:
    """Split on unescaped ``|`` and undo the escaping."""
    fields: List[str] = []
    current: List[str] = []
    it = iter(text)
    for ch in it:
        if ch == "\\":
            current.append(next(it, ""))
        elif ch == "|":
            fields.append("".join(current))
            current = []
        else:
            current.append(ch)
    fields.append("".join(current))
    return fields


def join_wire(fields) -> str:
    """Escape and join fields with ``|`` (inverse of :func:`split_wire`)."""
    return "|".join(escape_field(str(f)) for f in fields)
