"""The ACE service command language (§2.2 of the paper).

Every command issued to an ACE service is built as an
:class:`~repro.lang.command.ACECmdLine` object, serialized to a string,
transmitted, and re-parsed on the receiving side against that daemon's
*command semantics* (Fig. 5).  The grammar is the paper's, verbatim::

    <CMND>     := <CMNDNAME><space>[<ARGLIST>];
    <ARGUMENT> := <ARGNAME>'='<ARGVALUE>
    <ARGVALUE> := <INTEGER> | <FLOAT> | <WORD> | <STRING> | <VECTOR> | <ARRAY>
    <VECTOR>   := {v1,v2,...}          (homogeneous element types)
    <ARRAY>    := {<VECTOR>,<VECTOR>,...}

The implementation guarantees ``parse(serialize(cmd)) == cmd`` (verified by
property tests), which is what lets the two daemons in Fig. 5 reconstruct
an *exact copy* of the sender's ACECmdLine.
"""

from repro.lang.command import ACECmdLine
from repro.lang.errors import (
    ACELanguageError,
    ParseError,
    SemanticError,
)
from repro.lang.lexer import Token, TokenKind, tokenize
from repro.lang.parser import CommandParser, parse_command
from repro.lang.semantics import ArgSpec, ArgType, CommandSemantics, infer_type
from repro.lang.values import format_value

__all__ = [
    "ACECmdLine",
    "ACELanguageError",
    "ArgSpec",
    "ArgType",
    "CommandParser",
    "CommandSemantics",
    "ParseError",
    "SemanticError",
    "Token",
    "TokenKind",
    "format_value",
    "infer_type",
    "parse_command",
    "tokenize",
]
