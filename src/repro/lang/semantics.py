"""Per-daemon command semantics (§2.3's "service's command semantics").

A :class:`CommandSemantics` declares, for each command a daemon understands,
the argument names, their ACE types, whether they're required, and defaults.
The receiving daemon's parser validates inbound commands against this
before dispatch; the sending side can validate before transmitting.
Semantics compose through the service hierarchy (Fig. 6): a child service's
semantics *extend* its parent's.
"""

from __future__ import annotations

import enum
import weakref
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.lang.command import ACECmdLine, RESERVED_ARGS
from repro.lang.errors import SemanticError
from repro.lang.values import Value, is_word


class ArgType(enum.Enum):
    """Declared ACE argument types (the grammar's value categories)."""

    INTEGER = "integer"
    FLOAT = "float"
    #: INTEGER or FLOAT accepted (common for coordinates).
    NUMBER = "number"
    WORD = "word"
    STRING = "string"  # any string, including words
    VECTOR = "vector"
    ARRAY = "array"
    #: anything goes (used by pass-through services like the logger)
    ANY = "any"


def infer_type(value: Value) -> ArgType:
    """The most specific ArgType of a parsed value."""
    if isinstance(value, bool):
        raise SemanticError("booleans are not ACE values")
    if isinstance(value, int):
        return ArgType.INTEGER
    if isinstance(value, float):
        return ArgType.FLOAT
    if isinstance(value, str):
        return ArgType.WORD if is_word(value) else ArgType.STRING
    if isinstance(value, tuple):
        return ArgType.ARRAY if value and isinstance(value[0], tuple) else ArgType.VECTOR
    raise SemanticError(f"unknown value type {type(value).__name__}")


_COMPATIBLE = {
    ArgType.INTEGER: {ArgType.INTEGER},
    ArgType.FLOAT: {ArgType.FLOAT, ArgType.INTEGER},  # ints widen to float
    ArgType.NUMBER: {ArgType.INTEGER, ArgType.FLOAT},
    ArgType.WORD: {ArgType.WORD},
    ArgType.STRING: {ArgType.WORD, ArgType.STRING},
    ArgType.VECTOR: {ArgType.VECTOR},
    ArgType.ARRAY: {ArgType.ARRAY},
}


@dataclass(frozen=True)
class ArgSpec:
    """One argument slot of a command."""

    name: str
    type: ArgType = ArgType.ANY
    required: bool = True
    default: Optional[Value] = None

    def check(self, command_name: str, value: Value) -> None:
        if self.type is ArgType.ANY:
            return
        actual = infer_type(value)
        if actual not in _COMPATIBLE[self.type]:
            raise SemanticError(
                f"{command_name}: argument {self.name!r} expects {self.type.value}, "
                f"got {actual.value} ({value!r})"
            )


@dataclass
class CommandSpec:
    """Declared shape of one command."""

    name: str
    args: Tuple[ArgSpec, ...] = ()
    description: str = ""
    #: commands the daemon emits as notifications rather than accepts
    notification: bool = False

    def arg(self, name: str) -> Optional[ArgSpec]:
        for spec in self.args:
            if spec.name == name:
                return spec
        return None


class CommandSemantics:
    """The full command vocabulary of a daemon (extensible by inheritance)."""

    def __init__(self, parent: Optional["CommandSemantics"] = None, strict: bool = True):
        self.parent = parent
        self.strict = strict
        self._commands: Dict[str, CommandSpec] = {}
        # Flattened parent-chain view, rebuilt lazily: daemons define their
        # vocabulary once at startup and then look commands up per request,
        # so lookup must be one dict probe, not a chain walk.  A define()
        # anywhere up the chain invalidates every descendant's view.
        self._flat: Dict[str, CommandSpec] = {}
        self._flat_valid = False
        self._children: "weakref.WeakSet[CommandSemantics]" = weakref.WeakSet()

    # -- definition -----------------------------------------------------------
    def define(
        self,
        name: str,
        *args: ArgSpec,
        description: str = "",
        notification: bool = False,
    ) -> CommandSpec:
        if name in self._commands:
            raise SemanticError(f"command {name!r} already defined")
        spec = CommandSpec(name, tuple(args), description, notification)
        self._commands[name] = spec
        self._invalidate_flat()
        return spec

    def _invalidate_flat(self) -> None:
        self._flat_valid = False
        for child in self._children:
            child._invalidate_flat()

    def _rebuild_flat(self) -> Dict[str, CommandSpec]:
        if self.parent is not None:
            flat = dict(self.parent._flat_view())
        else:
            flat = {}
        flat.update(self._commands)
        self._flat = flat
        self._flat_valid = True
        return flat

    def _flat_view(self) -> Dict[str, CommandSpec]:
        return self._flat if self._flat_valid else self._rebuild_flat()

    def extend(self) -> "CommandSemantics":
        """Child semantics inheriting everything defined here (Fig. 6)."""
        child = CommandSemantics(parent=self, strict=self.strict)
        self._children.add(child)
        return child

    # -- lookup ------------------------------------------------------------------
    def lookup(self, name: str) -> Optional[CommandSpec]:
        if self._flat_valid:
            return self._flat.get(name)
        return self._rebuild_flat().get(name)

    def commands(self) -> List[str]:
        names = set(self._commands)
        if self.parent is not None:
            names.update(self.parent.commands())
        return sorted(names)

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    # -- validation ------------------------------------------------------------
    def validate(self, command: ACECmdLine) -> ACECmdLine:
        """Check ``command`` and fill in defaults; returns the (possibly
        augmented) command.  Raises :class:`SemanticError` on violations."""
        spec = self.lookup(command.name)
        if spec is None:
            if self.strict:
                raise SemanticError(f"unknown command {command.name!r}")
            return command
        # Validate against the command's argument dict directly instead of
        # copying it per request; reserved args are invisible to semantics,
        # so a spec slot sharing a reserved name counts as absent.
        present = command._args
        fills: Optional[Dict[str, Any]] = None
        matched = 0
        for arg_spec in spec.args:
            arg_name = arg_spec.name
            if arg_name in present and arg_name not in RESERVED_ARGS:
                arg_spec.check(command.name, present[arg_name])
                matched += 1
            elif arg_spec.required:
                raise SemanticError(
                    f"{command.name}: missing required argument {arg_name!r}"
                )
            elif arg_spec.default is not None:
                if fills is None:
                    fills = {}
                fills[arg_name] = arg_spec.default
        if self.strict:
            n_reserved = sum(1 for r in RESERVED_ARGS if r in present)
            if matched + n_reserved < len(present):
                declared = {s.name for s in spec.args}
                unknown = ", ".join(
                    sorted(
                        k for k in present
                        if k not in declared and k not in RESERVED_ARGS
                    )
                )
                raise SemanticError(f"{command.name}: unknown argument(s) {unknown}")
        return command.with_args(**fills) if fills else command


def reply_semantics() -> CommandSemantics:
    """The universal reply vocabulary every daemon shares."""
    sem = CommandSemantics(strict=False)
    sem.define(
        "cmdOk",
        ArgSpec("cmd", ArgType.WORD),
        description="successful completion of the named command",
    )
    sem.define(
        "cmdFailed",
        ArgSpec("cmd", ArgType.WORD),
        ArgSpec("reason", ArgType.STRING),
        description="failure report for the named command",
    )
    return sem
