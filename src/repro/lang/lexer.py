"""Tokenizer for the ACE command language."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.lang.errors import ParseError


class TokenKind(enum.Enum):
    """Token categories of the §2.2 grammar."""

    WORD = "word"          # bare alnum/underscore run
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"      # quoted
    EQUALS = "equals"
    COMMA = "comma"
    LBRACE = "lbrace"
    RBRACE = "rbrace"
    SEMICOLON = "semicolon"
    END = "end"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r}, @{self.position})"


# Order matters: FLOAT must beat INTEGER; WORD must not eat a leading digit
# of a number (numbers win because they're matched first and WORDs starting
# with digits are still WORDs per the grammar — disambiguate by content).
_PATTERNS = [
    (TokenKind.FLOAT, re.compile(r"-?(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?|-?\d+[eE][-+]?\d+")),
    (TokenKind.INTEGER, re.compile(r"-?\d+")),
    (TokenKind.WORD, re.compile(r"[A-Za-z0-9_]+")),
    (TokenKind.STRING, re.compile(r'"(?:[^"\\]|\\.)*"')),
    (TokenKind.EQUALS, re.compile(r"=")),
    (TokenKind.COMMA, re.compile(r",")),
    (TokenKind.LBRACE, re.compile(r"\{")),
    (TokenKind.RBRACE, re.compile(r"\}")),
    (TokenKind.SEMICOLON, re.compile(r";")),
]

_SPACE_RE = re.compile(r"[ \t]+")

# First-character dispatch: every pattern's possible match set is decided by
# its first character, so instead of trying all nine patterns at every
# position we try only the candidates for that character class.  Longest
# match still wins within a class, with earlier patterns breaking ties —
# identical to the exhaustive scan (regression-covered by the codec tests).
_PUNCT = {
    "=": TokenKind.EQUALS,
    ",": TokenKind.COMMA,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    ";": TokenKind.SEMICOLON,
}
# Digits can begin FLOAT, INTEGER or WORD ("3cam"); '-' and '.' begin only
# numbers; letters/underscore begin only WORDs; '"' begins only STRINGs.
_NUMERIC_PATTERNS = _PATTERNS[:3]  # FLOAT, INTEGER, WORD in tie-break order
_SIGN_PATTERNS = _PATTERNS[:2]     # FLOAT, INTEGER
_WORD_RE = _PATTERNS[2][1]
_STRING_RE = _PATTERNS[3][1]


def _iter_tokens(text: str) -> Iterator[Token]:
    pos = 0
    length = len(text)
    while pos < length:
        ch = text[pos]
        if ch == " " or ch == "\t":
            pos = _SPACE_RE.match(text, pos).end()
            continue
        punct = _PUNCT.get(ch)
        if punct is not None:
            yield Token(punct, ch, pos)
            pos += 1
            continue
        if ch.isdigit():
            candidates = _NUMERIC_PATTERNS
        elif ch == "-" or ch == ".":
            candidates = _SIGN_PATTERNS
        elif ch == '"':
            match = _STRING_RE.match(text, pos)
            if match is None:
                raise ParseError(f"unexpected character {text[pos]!r}", pos)
            yield Token(TokenKind.STRING, match.group(), pos)
            pos = match.end()
            continue
        else:
            match = _WORD_RE.match(text, pos)
            if match is None:
                raise ParseError(f"unexpected character {text[pos]!r}", pos)
            yield Token(TokenKind.WORD, match.group(), pos)
            pos = match.end()
            continue
        best: Token | None = None
        for kind, pattern in candidates:
            match = pattern.match(text, pos)
            if match and (best is None or match.end() > pos + len(best.text)):
                best = Token(kind, match.group(), pos)
        if best is None:
            raise ParseError(f"unexpected character {text[pos]!r}", pos)
        pos += len(best.text)
        yield best
    yield Token(TokenKind.END, "", length)


def tokenize(text: str) -> List[Token]:
    """Tokenize a command string; raises :class:`ParseError` on bad input."""
    return list(_iter_tokens(text))
