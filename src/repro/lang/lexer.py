"""Tokenizer for the ACE command language."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.lang.errors import ParseError


class TokenKind(enum.Enum):
    """Token categories of the §2.2 grammar."""

    WORD = "word"          # bare alnum/underscore run
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"      # quoted
    EQUALS = "equals"
    COMMA = "comma"
    LBRACE = "lbrace"
    RBRACE = "rbrace"
    SEMICOLON = "semicolon"
    END = "end"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r}, @{self.position})"


# Order matters: FLOAT must beat INTEGER; WORD must not eat a leading digit
# of a number (numbers win because they're matched first and WORDs starting
# with digits are still WORDs per the grammar — disambiguate by content).
_PATTERNS = [
    (TokenKind.FLOAT, re.compile(r"-?(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?|-?\d+[eE][-+]?\d+")),
    (TokenKind.INTEGER, re.compile(r"-?\d+")),
    (TokenKind.WORD, re.compile(r"[A-Za-z0-9_]+")),
    (TokenKind.STRING, re.compile(r'"(?:[^"\\]|\\.)*"')),
    (TokenKind.EQUALS, re.compile(r"=")),
    (TokenKind.COMMA, re.compile(r",")),
    (TokenKind.LBRACE, re.compile(r"\{")),
    (TokenKind.RBRACE, re.compile(r"\}")),
    (TokenKind.SEMICOLON, re.compile(r";")),
]

_SPACE_RE = re.compile(r"[ \t]+")


def _iter_tokens(text: str) -> Iterator[Token]:
    pos = 0
    length = len(text)
    while pos < length:
        space = _SPACE_RE.match(text, pos)
        if space:
            pos = space.end()
            continue
        best: Token | None = None
        for kind, pattern in _PATTERNS:
            match = pattern.match(text, pos)
            if match and (best is None or match.end() > pos + len(best.text)):
                best = Token(kind, match.group(), pos)
        if best is None:
            raise ParseError(f"unexpected character {text[pos]!r}", pos)
        pos += len(best.text)
        yield best
    yield Token(TokenKind.END, "", length)


def tokenize(text: str) -> List[Token]:
    """Tokenize a command string; raises :class:`ParseError` on bad input."""
    return list(_iter_tokens(text))
