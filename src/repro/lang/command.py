"""The ACECmdLine object (§2.2): name + ordered named arguments.

Commands are immutable once built.  ``str(cmd)`` is the wire form; commands
compare equal iff their names and argument mappings (including value types:
``1`` is an INTEGER, ``1.0`` a FLOAT) are equal, which is exactly the
"exact copy" the paper's Fig. 5 promises the receiving daemon.
"""

from __future__ import annotations

import re
import sys
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from repro.lang.errors import ACELanguageError, SemanticError
from repro.lang.values import Value, format_normalized, normalize_value

_NAME_OK = re.compile(r"^[A-Za-z0-9_]+$")
_intern = sys.intern

#: the reserved argument carrying the repro.obs trace context (a WORD like
#: ``t3_s12_s11``); reserved arguments ride on any command without being
#: part of its declared semantics — validation skips them.
OBS_TRACE_ARG = "o_tc"
#: the reserved argument tagging pipelined requests (an INTEGER sequence
#: number); daemons echo it on the matching reply so a client with several
#: commands in flight on one channel can pair replies to calls even when a
#: lossy link swallows one of them.
PIPELINE_SEQ_ARG = "o_seq"
#: reserved arguments carrying the client's idempotency stamp (§ recovery
#: plane): a per-client id plus a per-logical-call sequence number.  A
#: daemon that sees the same ``(o_cid, o_cseq)`` twice replays its cached
#: reply instead of re-executing — that is what turns at-least-once
#: retries into effectively exactly-once across a daemon restart.
CLIENT_ID_ARG = "o_cid"
CLIENT_SEQ_ARG = "o_cseq"
RESERVED_ARGS = frozenset(
    {OBS_TRACE_ARG, PIPELINE_SEQ_ARG, CLIENT_ID_ARG, CLIENT_SEQ_ARG}
)


class ACECmdLine:
    """An ACE command line: ``name arg1=value1 arg2=value2 ... ;``"""

    __slots__ = ("_name", "_args", "_text", "_key_memo", "_wire_size")

    def __init__(self, name: str, args: Optional[Mapping[str, Any]] = None, /, **kwargs: Any):
        if not _NAME_OK.match(name):
            raise ACELanguageError(f"invalid command name {name!r}")
        merged: Dict[str, Value] = {}
        for source in (args or {}), kwargs:
            for key, value in source.items():
                if not _NAME_OK.match(key):
                    raise ACELanguageError(f"invalid argument name {key!r}")
                if key in merged:
                    raise ACELanguageError(f"duplicate argument {key!r}")
                merged[_intern(key)] = normalize_value(value)
        # Command and argument names repeat across millions of wire lines;
        # interning makes later dict lookups and equality checks pointer
        # comparisons.
        self._name = _intern(name)
        self._args = merged
        self._text: Optional[str] = None
        self._key_memo: Optional[Tuple] = None
        self._wire_size: Optional[int] = None

    @classmethod
    def _from_normalized(cls, name: str, args: Dict[str, Value]) -> "ACECmdLine":
        """Internal constructor bypass for callers that guarantee ``name``
        and every key/value in ``args`` are already validated, interned and
        normalized (the fast-lane parser, ``with_args``/``without_args``).
        ``args`` ownership transfers to the new command."""
        cmd = cls.__new__(cls)
        cmd._name = name
        cmd._args = args
        cmd._text = None
        cmd._key_memo = None
        cmd._wire_size = None
        return cmd

    # -- accessors --------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def args(self) -> Dict[str, Value]:
        return dict(self._args)

    def __contains__(self, key: str) -> bool:
        return key in self._args

    def __iter__(self) -> Iterator[Tuple[str, Value]]:
        return iter(self._args.items())

    def get(self, key: str, default: Any = None) -> Any:
        return self._args.get(key, default)

    def __getitem__(self, key: str) -> Value:
        try:
            return self._args[key]
        except KeyError:
            raise SemanticError(f"command {self._name!r} has no argument {key!r}")

    def require(self, key: str) -> Value:
        return self[key]

    def int(self, key: str, default: Optional[int] = None) -> int:
        return self._typed(key, int, default)

    def float(self, key: str, default: Optional[float] = None) -> float:
        value = self._args.get(key)
        if value is None:
            if default is None:
                raise SemanticError(f"command {self._name!r} missing argument {key!r}")
            return default
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SemanticError(f"argument {key!r} is not numeric: {value!r}")
        return float(value)

    def str(self, key: str, default: Optional[str] = None) -> str:
        return self._typed(key, str, default)

    def vector(self, key: str, default: Optional[tuple] = None) -> tuple:
        return self._typed(key, tuple, default)

    def _typed(self, key: str, typ: type, default: Any) -> Any:
        value = self._args.get(key)
        if value is None:
            if default is None:
                raise SemanticError(f"command {self._name!r} missing argument {key!r}")
            return default
        if not isinstance(value, typ) or isinstance(value, bool):
            raise SemanticError(
                f"argument {key!r} of {self._name!r} is {type(value).__name__}, "
                f"expected {typ.__name__}"
            )
        return value

    # -- derivation ---------------------------------------------------------
    def with_args(self, **updates: Any) -> "ACECmdLine":
        """A copy with arguments added/replaced.  Existing arguments are
        reused as-is (they are already normalized); only the updates pay
        for validation."""
        merged = dict(self._args)
        for key, value in updates.items():
            if key not in merged and not _NAME_OK.match(key):
                raise ACELanguageError(f"invalid argument name {key!r}")
            merged[_intern(key)] = normalize_value(value)
        return ACECmdLine._from_normalized(self._name, merged)

    def without_args(self, *names: str) -> "ACECmdLine":
        """A copy with the named arguments removed (missing names are
        ignored) — e.g. stripping reserved observability arguments before
        re-forwarding a command as a notification payload."""
        if not any(n in self._args for n in names):
            return self
        kept = {k: v for k, v in self._args.items() if k not in names}
        return ACECmdLine._from_normalized(self._name, kept)

    # -- serialization --------------------------------------------------------
    def to_string(self) -> str:
        if self._text is None:
            if self._args:
                body = " ".join(f"{k}={format_normalized(v)}" for k, v in self._args.items())
                self._text = f"{self._name} {body};"
            else:
                self._text = f"{self._name};"
        return self._text

    def __str__(self) -> str:
        return self.to_string()

    @property
    def wire_size(self) -> int:
        if self._wire_size is None:
            self._wire_size = len(self.to_string().encode("utf-8"))
        return self._wire_size

    # -- equality ---------------------------------------------------------------
    def _key(self) -> Tuple:
        key = self._key_memo
        if key is None:
            key = self._key_memo = (
                self._name,
                tuple(sorted((k, type(v).__name__, v) for k, v in self._args.items())),
            )
        return key

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, ACECmdLine):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ACECmdLine({self.to_string()!r})"


# Conventional reply commands every daemon understands (§2.2: "return
# commands are used to reply on the status of the attempted command").

def ok_reply(request: ACECmdLine, **results: Any) -> ACECmdLine:
    return ACECmdLine("cmdOk", {"cmd": request.name, **results})


def error_reply(request: ACECmdLine, reason: str, **extra: Any) -> ACECmdLine:
    return ACECmdLine("cmdFailed", {"cmd": request.name, "reason": reason, **extra})


def is_ok(reply: ACECmdLine) -> bool:
    return reply.name == "cmdOk"


def is_error(reply: ACECmdLine) -> bool:
    return reply.name == "cmdFailed"
