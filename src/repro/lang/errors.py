"""Error taxonomy for the command language."""


class ACELanguageError(Exception):
    """Base class for all command-language failures."""


class ParseError(ACELanguageError):
    """Syntactic failure: the string is not a well-formed ACE command."""

    def __init__(self, message: str, position: int = -1):
        suffix = f" at position {position}" if position >= 0 else ""
        super().__init__(message + suffix)
        self.position = position


class SemanticError(ACELanguageError):
    """The command is well-formed but violates the daemon's semantics."""
