"""Cross-shard boundary links for the sharded simulator (E29).

A sharded run (:mod:`repro.sim.parallel`) gives every shard the **full**
topology — every host exists in every shard so latency math, segment
classes, and construction-time RNG draws are identical everywhere — but
only the hosts a shard *owns* run daemons and sockets.  The remaining
hosts are **ghosts**: latency/accounting endpoints whose live halves exist
in some other kernel process.

:class:`BoundaryNetwork` subclasses the ordinary :class:`Network` and
reroutes any traffic addressed to a non-owned host onto an outbox of
picklable message tuples.  The coordinator relays those between shards at
window boundaries; :meth:`inject` turns them back into ordinary in-kernel
deliveries at their precomputed arrival time.

The conservative-sync contract every send path here must uphold: a message
posted at local time ``t`` arrives no earlier than ``t + lookahead``,
where the lookahead (:meth:`compute_lookahead`) is the minimum cross-shard
path latency.  That is why arrival timestamps are computed and posted *at
send-decision time*, before the sender yields for its transmit delay.

Connect refusals are *not* a deviation: the base fabric delivers a
refusal on the RST return leg and mints the client's ephemeral port at
``connect()`` call time (see :meth:`Network.connect`), which is exactly
the shape a refusing shard can reproduce — the SYN-NAK rides back one
leg after SYN arrival and the port was already allocated sender-side.

Deviations from the single-kernel fabric (all fault-path only):

* reachability/partition checks run sender-side against ghost state, so a
  remote crash is enforced at *arrival* (receiver-side), not at send;
* the server side of a cross-shard connection records the client's
  ephemeral port as 0 (routing is by connection id, the port is cosmetic);
* multicast stays shard-local (the Jini discovery baseline is not a
  sharded workload).

With ``jitter_frac``/``loss_rate`` at their 0 defaults, none of these are
reachable in a healthy run and multi-shard traces are shard-count
invariant (regression-tested).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.sim import SimulationError

from repro.net.address import Address
from repro.net.host import Host, HostDownError
from repro.net.network import Network
from repro.net.sockets import Connection, ConnectionRefused, wire_size

#: message kinds crossing shard boundaries
SYN = "syn"
SYNACK = "synack"
STREAM = "stream"
CLOSE = "close"
DGRAM = "dgram"


class BoundaryStats:
    """Counters for traffic crossing shard boundaries."""

    def __init__(self) -> None:
        self.msgs_out = 0
        self.msgs_in = 0
        self.bytes_out = 0
        self.connects = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "boundary_msgs_out": self.msgs_out,
            "boundary_msgs_in": self.msgs_in,
            "boundary_bytes_out": self.bytes_out,
            "boundary_connects": self.connects,
        }


class BoundaryConnection(Connection):
    """One endpoint of a stream whose peer lives in another shard.

    There is no ``peer`` object — payloads are routed by ``conn_id``
    through the coordinator.  FIFO ordering is enforced sender-side via
    ``_peer_last_arrival`` (the same rule the base fabric applies at the
    receiving endpoint).
    """

    def __init__(self, net: "BoundaryNetwork", host: Host,
                 local: Optional[Address], remote: Address, conn_id: str):
        super().__init__(net, host, local, remote)
        self.conn_id = conn_id
        self._peer_last_arrival = 0.0

    def close(self) -> None:
        if self._closed:
            return
        super().close()
        self.net._boundary_conns.pop(self.conn_id, None)


class BoundaryNetwork(Network):
    """A :class:`Network` that exports non-owned-destination traffic."""

    def __init__(self, sim, rng=None, trace=None, *, shard, **kwargs):
        super().__init__(sim, rng, trace, **kwargs)
        #: the :class:`~repro.sim.parallel.ShardContext` this fabric serves
        self.shard = shard
        self.boundary = BoundaryStats()
        self._outbox: List[Tuple[int, tuple]] = []
        self._link_seq = 0
        self._conn_seq = 0
        self._boundary_conns: Dict[str, BoundaryConnection] = {}
        self._pending_connects: Dict[str, Any] = {}
        self._lookahead_row: Optional[Dict[int, float]] = None

    # ------------------------------------------------------------------
    # Ownership / lookahead
    # ------------------------------------------------------------------
    def owns(self, host_name: str) -> bool:
        return self.shard.owns(host_name)

    def compute_lookahead_row(self) -> Dict[int, float]:
        """Per-destination-shard lookahead: ``{j: L[self][j]}`` (E30).

        ``L[i][j]`` is the minimum path latency from any host owned by
        this shard to any host owned by shard ``j`` — the earliest a
        message posted here *now* can arrive there.  A shard this one
        cannot reach (no owned hosts on either side, or ``j`` owns
        nothing) gets ``inf``: it never bounds ``j``'s time grants.

        Conservative under gray failure: degraded hosts only *add*
        latency (multipliers >= 1), and any multiplier below 1 is clamped
        out so the bound still holds.  Jitter multiplies by ``1 + x``
        with ``x >= 0`` and cannot shrink a path either.

        The row is computed once and cached — topology and segment
        layout are construction-time facts, and the sync protocol pins
        its safety argument to the build-time bound (same contract the
        E29 global lookahead had).
        """
        if self._lookahead_row is not None:
            return self._lookahead_row
        row: Dict[int, float] = {
            j: float("inf")
            for j in range(self.shard.n_shards) if j != self.shard.index
        }
        owned = [h for h in self.hosts.values() if self.owns(h.name)]
        for b in self.hosts.values():
            j = self.shard.shard_of(b.name)
            if j == self.shard.index:
                continue
            best = row[j]
            for a in owned:
                base = self.lan_latency
                if a.segment != b.segment:
                    base += self.backbone_latency
                base *= min(1.0, a.latency_mult * b.latency_mult)
                if base < best:
                    best = base
            row[j] = best
        self._lookahead_row = row
        return row

    def compute_lookahead(self) -> float:
        """Minimum owned→foreign path latency: the global sync lookahead.

        The row minimum of :meth:`compute_lookahead_row` — kept as the
        scalar bound the lockstep protocol (and the zero-lookahead sanity
        check) uses.
        """
        row = self.compute_lookahead_row()
        return min(row.values(), default=float("inf"))

    def earliest_output_times(self, next_event: float) -> Dict[int, float]:
        """EOT promises: per destination shard, the earliest timestamp any
        *future* message from this shard can carry (E30).

        Given that this shard will not execute anything before
        ``next_event``, a message to shard ``j`` cannot arrive before
        ``next_event + L[self][j]`` — every send path posts arrival
        timestamps that include at least one full path latency
        (see :meth:`post`).  These promises piggyback on shard reports
        and are what lets the coordinator issue per-shard demand-driven
        grants instead of one global lockstep window.
        """
        return {
            j: next_event + la
            for j, la in self.compute_lookahead_row().items()
        }

    # ------------------------------------------------------------------
    # Outbox / inbox plumbing
    # ------------------------------------------------------------------
    def post(self, dst_host_name: str, kind: str, ts: float, data: tuple,
             nbytes: int = 0) -> None:
        """Queue a boundary message for the shard owning ``dst_host_name``.

        ``ts`` is the precomputed arrival time; the conservative-sync
        contract requires ``ts >= now + lookahead``, which every caller
        satisfies because ``ts`` always includes one full path latency.
        """
        self._link_seq += 1
        msg = (kind, ts, self.shard.index, self._link_seq, data)
        self._outbox.append((self.shard.shard_of(dst_host_name), msg))
        self.boundary.msgs_out += 1
        self.boundary.bytes_out += nbytes

    def drain_outbox(self) -> Dict[int, List[tuple]]:
        """Take all queued boundary messages, grouped by destination shard."""
        out: Dict[int, List[tuple]] = {}
        for dst_shard, msg in self._outbox:
            out.setdefault(dst_shard, []).append(msg)
        self._outbox = []
        return out

    def inject(self, messages: List[tuple]) -> None:
        """Schedule inbound boundary messages as in-kernel deliveries.

        Messages are sorted by ``(ts, src_shard, link_seq)`` so injection
        order — and therefore same-timestamp kernel sequence order — is
        deterministic regardless of relay batching.
        """
        now = self.sim.now
        for msg in sorted(messages, key=lambda m: (m[1], m[2], m[3])):
            ts = msg[1]
            if ts < now:
                raise SimulationError(
                    f"boundary causality violation: message {msg[0]!r} for "
                    f"t={ts} injected at t={now} (lookahead too small?)"
                )
            self.boundary.msgs_in += 1
            delivery = self.sim.timeout(ts - now)
            delivery.callbacks.append(lambda _ev, m=msg: self._arrive_boundary(m))

    def _arrive_boundary(self, msg: tuple) -> None:
        kind, ts, _src_shard, _link_seq, data = msg
        if kind == STREAM:
            self._arrive_stream_boundary(*data)
        elif kind == DGRAM:
            self._arrive_dgram_boundary(*data)
        elif kind == SYN:
            self._arrive_syn(*data)
        elif kind == SYNACK:
            self._arrive_synack(*data)
        elif kind == CLOSE:
            self._arrive_close(*data)
        else:  # pragma: no cover - protocol misuse
            raise SimulationError(f"unknown boundary message kind {kind!r}")

    # ------------------------------------------------------------------
    # Stream sockets across the boundary
    # ------------------------------------------------------------------
    def connect(self, src: Host, dest: Address,
                timeout: Optional[float] = None) -> Generator:
        if dest.host not in self.hosts or self.owns(dest.host):
            return (yield from super().connect(src, dest, timeout))
        src.check_up()
        dst_host = self.hosts[dest.host]
        lat = self._path_latency(src, dst_host)
        self._conn_seq += 1
        conn_id = f"{self.shard.index}:{self._conn_seq}"
        # The ephemeral port is minted at connect() call time — the same
        # instant the single-kernel handshake mints it — so port-assignment
        # order across concurrent connects from this host is shard-count
        # invariant even when a connect ends up refused.
        local = Address(src.name, self.ephemeral_port(src.name))
        client = BoundaryConnection(self, src, local, dest, conn_id)
        self._boundary_conns[conn_id] = client
        self.boundary.connects += 1
        self.post(dest.host, SYN, self.sim.now + lat,
                  (conn_id, src.name, dest.host, dest.port))
        wait = self.sim.event()
        self._pending_connects[conn_id] = wait
        try:
            yield wait
        except ConnectionRefused:
            self._boundary_conns.pop(conn_id, None)
            if not src.up:
                raise HostDownError(src.name)
            raise
        if not src.up:
            raise HostDownError(src.name)
        self.trace.emit(self.sim.now, "network", "connect",
                        src=str(client.local), dst=str(dest))
        return client

    def _arrive_syn(self, conn_id: str, src_host_name: str,
                    dst_host_name: str, dst_port: int) -> None:
        dest = Address(dst_host_name, dst_port)
        dst_host = self.hosts.get(dst_host_name)
        src_host = self.hosts.get(src_host_name)
        ok, reason = True, ""
        if dst_host is None or src_host is None or not self._reachable(src_host, dst_host):
            ok, reason = False, f"no route to {dest}"
        else:
            listener = self._listeners.get(dest)
            if listener is None or listener.closed:
                ok, reason = False, f"nothing listening at {dest}"
        if ok:
            server = BoundaryConnection(
                self, dst_host, dest, Address(src_host_name, 0), conn_id
            )
            if listener._offer(server):
                self._boundary_conns[conn_id] = server
            else:
                ok, reason = False, f"listener at {dest} closed during handshake"
        if dst_host is not None and src_host is not None:
            back = self._path_latency(dst_host, src_host)
        else:  # pragma: no cover - full topology makes this unreachable
            back = self.connect_timeout
        self.post(src_host_name, SYNACK, self.sim.now + back,
                  (conn_id, ok, reason))

    def _arrive_synack(self, conn_id: str, ok: bool, reason: str) -> None:
        wait = self._pending_connects.pop(conn_id, None)
        if wait is None:
            return
        if ok:
            wait.succeed(None)
        else:
            self._boundary_conns.pop(conn_id, None)
            wait.defuse()
            wait.fail(ConnectionRefused(reason))

    def _stream_transmit(self, conn: Connection, payload: Any) -> Generator:
        if not isinstance(conn, BoundaryConnection):
            yield from super()._stream_transmit(conn, payload)
            return
        nbytes = wire_size(payload)
        delay = self._transmit_delay(conn.host, nbytes)
        dst_host = self.hosts.get(conn.remote.host)
        if dst_host is None or not self._reachable(conn.host, dst_host):
            self.stats.dropped += 1
        elif not self._link_dropped(conn.host, dst_host):
            self._account(conn.host, dst_host, nbytes)
            arrival = self.sim.now + delay + self._path_latency(conn.host, dst_host)
            if arrival < conn._peer_last_arrival:
                arrival = conn._peer_last_arrival
            conn._peer_last_arrival = arrival
            self.post(conn.remote.host, STREAM, arrival,
                      (conn.conn_id, payload), nbytes=nbytes)
        yield self.sim.timeout(delay)

    def _arrive_stream_boundary(self, conn_id: str, payload: Any) -> None:
        conn = self._boundary_conns.get(conn_id)
        if conn is None or conn.closed or not conn.host.up:
            self.stats.dropped += 1
            return
        conn._enqueue(payload)

    def _stream_close_notify(self, conn: Connection) -> None:
        if not isinstance(conn, BoundaryConnection):
            super()._stream_close_notify(conn)
            return
        dst_host = self.hosts.get(conn.remote.host)
        if dst_host is None or not self._reachable(conn.host, dst_host):
            return
        lat = self._path_latency(conn.host, dst_host)
        self.post(conn.remote.host, CLOSE, self.sim.now + lat, (conn.conn_id,))

    def _arrive_close(self, conn_id: str) -> None:
        conn = self._boundary_conns.pop(conn_id, None)
        if conn is None or conn.closed or not conn.host.up:
            return
        conn._enqueue_close()

    # ------------------------------------------------------------------
    # Datagrams across the boundary
    # ------------------------------------------------------------------
    def _datagram_transmit(self, sock, dest: Address, payload: Any) -> Generator:
        if dest.host not in self.hosts or self.owns(dest.host):
            yield from super()._datagram_transmit(sock, dest, payload)
            return
        nbytes = wire_size(payload)
        delay = self._transmit_delay(sock.host, nbytes)
        dst_host = self.hosts[dest.host]
        if not self._reachable(sock.host, dst_host):
            self.stats.dropped += 1
        elif self.loss_rate > 0 and self._loss_rng.random() < self.loss_rate:
            self.stats.dropped += 1
        elif not self._link_dropped(sock.host, dst_host):
            self._account(sock.host, dst_host, nbytes)
            arrival = self.sim.now + delay + self._path_latency(sock.host, dst_host)
            self.post(dest.host, DGRAM, arrival,
                      (sock.address.host, sock.address.port,
                       dest.host, dest.port, payload),
                      nbytes=nbytes)
        yield self.sim.timeout(delay)

    def _arrive_dgram_boundary(self, src_host: str, src_port: int,
                               dst_host: str, dst_port: int, payload: Any) -> None:
        target = self._datagram.get(Address(dst_host, dst_port))
        if target is None or target.closed or not target.host.up:
            self.stats.dropped += 1
            return
        target._enqueue(Address(src_host, src_port), payload)
