"""Network addresses and the handful of well-known ACE ports.

The paper (§2.4, §2.6) relies on the ASD living at a *fixed socket location
known to all ACE daemons*; ``WellKnownPorts`` pins those conventions down.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Address:
    """A ``host:port`` endpoint on the simulated network."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"

    @classmethod
    def parse(cls, text: str) -> "Address":
        """Parse ``"host:port"``; raises ``ValueError`` on malformed input."""
        host, sep, port = text.rpartition(":")
        if not sep or not host:
            raise ValueError(f"malformed address {text!r}")
        return cls(host, int(port))


class WellKnownPorts:
    """Fixed port assignments every ACE daemon knows at compile time.

    Only the ASD *must* be well known (the paper's bootstrap assumption);
    the rest are conventions used by the environment builder so traces are
    easy to read.
    """

    ASD = 5000
    ROOM_DB = 5001
    NET_LOGGER = 5002
    AUTH_DB = 5003
    USER_DB = 5004
    PERSISTENT_STORE = 5010  # replicas use 5010, 5011, 5012
    TELEMETRY = 5020  # E27 cluster telemetry aggregator
    #: First port handed out to dynamically placed daemons.
    EPHEMERAL_BASE = 10000
    #: Multicast "address" used by the Jini-style discovery baseline.
    JINI_MULTICAST = Address("224.0.1.85", 4160)
