"""Secure channels over stream connections (the paper's SSL, §3.1).

A :class:`SecureChannel` wraps a :class:`~repro.net.sockets.Connection` after
a three-message handshake:

1. ``ClientHello``  — client nonce + ephemeral DH public value.
2. ``ServerHello``  — server nonce + DH public value + the server's
   certificate + a Schnorr signature over the handshake transcript
   (authenticates the server and prevents man-in-the-middle splicing).
3. ``Finished``     — client's HMAC over the transcript under the derived
   MAC key, proving key agreement.

Records are then encrypted with a keystream cipher and authenticated with
HMAC-SHA256, with per-direction sequence numbers to stop replay/reorder.

Cryptographic *work* is also charged as simulated CPU time on the endpoint
hosts so experiment E5 (plain vs SSL vs SSL+KeyNote command cost) reflects
both the latency of extra round trips and the compute of the primitives.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, Optional, Tuple, Union

from repro.security.crypto import (
    Certificate,
    KeyPair,
    KeystreamCipher,
    constant_time_equal,
    derive_keys,
    dh_keypair,
    dh_shared_secret,
    hmac_sha256,
    verify_certificate,
    verify_signature,
)

from repro.net.sockets import Connection

# Simulated CPU cost of crypto, in bogomips-seconds.  On an 800-bogomips
# host: ~2.5 ms per handshake half, ~10 µs + 2.5 µs/KB per record —
# millisecond-scale public-key ops and microsecond-scale symmetric ops,
# matching the paper's era of hardware.
HANDSHAKE_WORK = 2.0
RECORD_WORK_BASE = 0.008
RECORD_WORK_PER_BYTE = 2e-6


class HandshakeError(Exception):
    """Certificate, signature, or protocol failure during the handshake."""


@dataclass(frozen=True)
class _Record:
    """An encrypted, MACed frame on the wire."""

    nonce: bytes
    ciphertext: bytes
    mac: bytes

    def wire_size(self) -> int:
        return len(self.ciphertext) + len(self.nonce) + len(self.mac) + 5


Payload = Union[str, bytes]


class SecureChannel:
    """Encrypted/authenticated message pipe mirroring the Connection API."""

    def __init__(
        self,
        conn: Connection,
        cipher_key: bytes,
        mac_key: bytes,
        peer_subject: str,
    ):
        self.conn = conn
        self.peer_subject = peer_subject
        self._cipher = KeystreamCipher(cipher_key)
        self._mac_key = mac_key
        self._send_seq = 0
        self._recv_seq = 0

    @property
    def closed(self) -> bool:
        return self.conn.closed

    @property
    def local(self):
        return self.conn.local

    @property
    def remote(self):
        return self.conn.remote

    def send(self, payload: Payload) -> Generator:
        """Encrypt, MAC, and transmit ``payload`` (str or bytes)."""
        if isinstance(payload, str):
            plaintext = b"s" + payload.encode("utf-8")
        elif isinstance(payload, bytes):
            plaintext = b"b" + payload
        else:
            raise TypeError(f"SecureChannel carries str/bytes, not {type(payload).__name__}")
        seq = self._send_seq
        self._send_seq += 1
        nonce = seq.to_bytes(8, "big")
        ciphertext = self._cipher.encrypt(nonce, plaintext)
        mac = hmac_sha256(self._mac_key, nonce + ciphertext)[:16]
        yield from self.conn.host.execute(RECORD_WORK_BASE + RECORD_WORK_PER_BYTE * len(plaintext))
        yield from self.conn.send(_Record(nonce, ciphertext, mac))

    def recv(self) -> Generator:
        """Receive, verify, and decrypt the next record."""
        record = yield from self.conn.recv()
        if not isinstance(record, _Record):
            raise HandshakeError(f"plaintext injection on secure channel: {record!r}")
        expected_seq = self._recv_seq
        self._recv_seq += 1
        if int.from_bytes(record.nonce, "big") != expected_seq:
            raise HandshakeError("record replay or reorder detected")
        mac = hmac_sha256(self._mac_key, record.nonce + record.ciphertext)[:16]
        if not constant_time_equal(mac, record.mac):
            raise HandshakeError("record MAC verification failed")
        yield from self.conn.host.execute(
            RECORD_WORK_BASE + RECORD_WORK_PER_BYTE * len(record.ciphertext)
        )
        plaintext = self._cipher.decrypt(record.nonce, record.ciphertext)
        tag, body = plaintext[:1], plaintext[1:]
        if tag == b"s":
            return body.decode("utf-8")
        if tag == b"b":
            return body
        raise HandshakeError(f"corrupt record type tag {tag!r}")

    def close(self) -> None:
        self.conn.close()


def handshake_client(
    conn: Connection,
    rng: random.Random,
    ca_public_key: int,
    ca_name: str,
    expected_subject: Optional[str] = None,
) -> Generator:
    """Client side of the handshake; returns a :class:`SecureChannel`."""
    client_nonce = "%016x" % rng.getrandbits(64)
    dh_priv, dh_pub = dh_keypair(rng)
    yield from conn.host.execute(HANDSHAKE_WORK)
    yield from conn.send(("hello", client_nonce, dh_pub))

    reply = yield from conn.recv()
    try:
        kind, server_nonce, server_dh_pub, cert, signature = reply
    except (TypeError, ValueError):
        raise HandshakeError(f"malformed ServerHello {reply!r}")
    if kind != "hello-ack" or not isinstance(cert, Certificate):
        raise HandshakeError("malformed ServerHello")
    if not verify_certificate(cert, ca_public_key, ca_name):
        raise HandshakeError(f"untrusted certificate for {cert.subject!r}")
    if expected_subject is not None and cert.subject != expected_subject:
        raise HandshakeError(
            f"certificate subject {cert.subject!r} != expected {expected_subject!r}"
        )
    transcript = f"{client_nonce}|{dh_pub}|{server_nonce}|{server_dh_pub}|{cert.subject}"
    if not verify_signature(cert.public_key, transcript, signature):
        raise HandshakeError("server transcript signature invalid")
    yield from conn.host.execute(HANDSHAKE_WORK)
    shared = dh_shared_secret(dh_priv, server_dh_pub)
    cipher_key, mac_key = derive_keys(shared, transcript)
    finished = hmac_sha256(mac_key, b"finished:" + transcript.encode())[:16]
    yield from conn.send(("finished", finished))
    return SecureChannel(conn, cipher_key, mac_key, cert.subject)


def handshake_server(
    conn: Connection,
    rng: random.Random,
    keypair: KeyPair,
    certificate: Certificate,
) -> Generator:
    """Server side of the handshake; returns a :class:`SecureChannel`."""
    hello = yield from conn.recv()
    try:
        kind, client_nonce, client_dh_pub = hello
    except (TypeError, ValueError):
        raise HandshakeError(f"malformed ClientHello {hello!r}")
    if kind != "hello":
        raise HandshakeError(f"malformed ClientHello {hello!r}")
    server_nonce = "%016x" % rng.getrandbits(64)
    dh_priv, dh_pub = dh_keypair(rng)
    transcript = (
        f"{client_nonce}|{client_dh_pub}|{server_nonce}|{dh_pub}|{certificate.subject}"
    )
    signature = keypair.sign(transcript)
    yield from conn.host.execute(HANDSHAKE_WORK)
    yield from conn.send(("hello-ack", server_nonce, dh_pub, certificate, signature))

    shared = dh_shared_secret(dh_priv, client_dh_pub)
    cipher_key, mac_key = derive_keys(shared, transcript)
    fin = yield from conn.recv()
    try:
        kind, finished = fin
    except (TypeError, ValueError):
        raise HandshakeError(f"malformed Finished {fin!r}")
    expected = hmac_sha256(mac_key, b"finished:" + transcript.encode())[:16]
    if kind != "finished" or not constant_time_equal(finished, expected):
        raise HandshakeError("client Finished verification failed")
    yield from conn.host.execute(HANDSHAKE_WORK)
    return SecureChannel(conn, cipher_key, mac_key, peer_subject="")


def secure_pair(
    client_conn: Connection,
    server_conn: Connection,
    sim,
    rng_client: random.Random,
    rng_server: random.Random,
    keypair: KeyPair,
    certificate: Certificate,
    ca_public_key: int,
    ca_name: str,
) -> Tuple[SecureChannel, SecureChannel]:
    """Test helper: run both handshake halves to completion synchronously."""
    server_proc = sim.process(
        handshake_server(server_conn, rng_server, keypair, certificate), name="hs-server"
    )
    client_chan = sim.run_process(
        handshake_client(client_conn, rng_client, ca_public_key, ca_name), name="hs-client"
    )
    server_chan = sim.run_process(_await(server_proc), name="hs-join")
    return client_chan, server_chan


def _await(event) -> Generator:
    value = yield event
    return value
