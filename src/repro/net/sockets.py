"""Stream and datagram socket endpoints.

Connections are reliable, ordered, bidirectional message pipes (the TCP/SSL
sockets of §2.1); datagram sockets are unreliable, unordered (the UDP data
channel of §2.1.1).  All wire mechanics (latency, bandwidth, loss,
partitions) live in :class:`repro.net.network.Network`; these classes are
the endpoints daemons hold.

Sub-operations that take simulated time are generators used with
``yield from`` inside a simulation process::

    conn = yield from net.connect(host, Address("bar", 5000))
    yield from conn.send(command_string)
    reply = yield from conn.recv()
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from repro.sim import Event, QueueClosed, Store

from repro.net.address import Address

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.net.network import Network


class ConnectionClosed(Exception):
    """recv() on a closed connection / send() into a closed connection."""


class ConnectionRefused(Exception):
    """connect() to an address nobody is listening on (or unreachable)."""


_CLOSE = object()  # in-band control marker for orderly shutdown


class Connection:
    """One endpoint of an established stream connection."""

    def __init__(self, net: "Network", host: "Host", local: Address, remote: Address):
        self.net = net
        self.host = host
        self.local = local
        self.remote = remote
        self.peer: Optional["Connection"] = None  # set by Network at setup
        self._inbox: Store = Store(net.sim, name=f"conn {local}->{remote}")
        self._closed = False
        self._last_arrival = 0.0  # FIFO enforcement for jittered latency

    @property
    def closed(self) -> bool:
        return self._closed

    def send(self, payload: Any) -> Generator:
        """Transmit ``payload`` to the peer; waits for the transmit delay.

        Raises :class:`ConnectionClosed` if this side is already closed.
        Delivery is not acknowledged: if the peer or path dies in flight the
        payload is silently lost (as with TCP after the last ACK).
        """
        if self._closed:
            raise ConnectionClosed(f"send on closed connection {self.local}->{self.remote}")
        self.host.check_up()
        yield from self.net._stream_transmit(self, payload)

    def recv(self) -> Generator:
        """Wait for the next message; raises ConnectionClosed at EOF."""
        while True:
            try:
                item = yield self._inbox.get()
            except QueueClosed:
                raise ConnectionClosed(f"recv on closed connection {self.local}")
            if item is _CLOSE:
                self._mark_closed()
                raise ConnectionClosed(f"peer closed {self.remote}")
            return item

    def try_recv(self) -> tuple[bool, Any]:
        """Non-blocking receive; returns ``(found, payload)``."""
        found, item = self._inbox.try_get()
        if found and item is _CLOSE:
            self._mark_closed()
            raise ConnectionClosed(f"peer closed {self.remote}")
        return found, item

    def pending(self) -> int:
        return len(self._inbox)

    def close(self) -> None:
        """Orderly shutdown: peer sees EOF after one network latency."""
        if self._closed:
            return
        self._mark_closed()
        self.net._stream_close_notify(self)

    def _mark_closed(self) -> None:
        self._closed = True
        self._inbox.close()

    def _enqueue(self, item: Any) -> None:
        """Called by the network at arrival time."""
        if not self._inbox.closed:
            self._inbox.try_put(item)

    def _enqueue_close(self) -> None:
        if not self._inbox.closed:
            self._inbox.try_put(_CLOSE)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else "open"
        return f"<Connection {self.local}->{self.remote} {state}>"


class ListenerSocket:
    """A passive socket bound to ``address``, accepting inbound connections."""

    def __init__(self, net: "Network", host: "Host", address: Address):
        self.net = net
        self.host = host
        self.address = address
        self._backlog: Store = Store(net.sim, name=f"listen {address}")
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def accept(self) -> Generator:
        """Wait for the next inbound connection."""
        try:
            conn = yield self._backlog.get()
        except QueueClosed:
            raise ConnectionClosed(f"listener {self.address} closed")
        return conn

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._backlog.close()
        self.net._unbind_listener(self)

    def _offer(self, conn: Connection) -> bool:
        if self._closed:
            return False
        return self._backlog.try_put(conn)


class DatagramSocket:
    """Connectionless endpoint (the UDP data channel of §2.1.1)."""

    def __init__(self, net: "Network", host: "Host", address: Address):
        self.net = net
        self.host = host
        self.address = address
        self._inbox: Store = Store(net.sim, name=f"dgram {address}")
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def send(self, dest: Address, payload: Any) -> Generator:
        """Fire-and-forget datagram (may be lost, reordered)."""
        if self._closed:
            raise ConnectionClosed(f"send on closed datagram socket {self.address}")
        self.host.check_up()
        yield from self.net._datagram_transmit(self, dest, payload)

    def send_multicast(self, group: Address, payload: Any) -> Generator:
        """Deliver to every socket joined to ``group`` (lossy, per-member)."""
        if self._closed:
            raise ConnectionClosed(f"send on closed datagram socket {self.address}")
        self.host.check_up()
        yield from self.net._multicast_transmit(self, group, payload)

    def recv(self) -> Generator:
        """Wait for the next datagram; returns ``(source, payload)``."""
        try:
            item = yield self._inbox.get()
        except QueueClosed:
            raise ConnectionClosed(f"recv on closed datagram socket {self.address}")
        return item

    def try_recv(self) -> tuple[bool, Any]:
        return self._inbox.try_get()

    def pending(self) -> int:
        return len(self._inbox)

    def join(self, group: Address) -> None:
        self.net._multicast_join(group, self)

    def leave(self, group: Address) -> None:
        self.net._multicast_leave(group, self)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._inbox.close()
        self.net._unbind_datagram(self)

    def _enqueue(self, source: Address, payload: Any) -> None:
        if not self._inbox.closed:
            self._inbox.try_put((source, payload))


def wire_size(payload: Any) -> int:
    """Bytes a payload occupies on the wire.

    Strings/bytes count their encoded length; objects may advertise a
    ``wire_size`` attribute (ACE command strings and framed records do);
    anything else is charged by its ``repr`` as a rough envelope.
    """
    size = getattr(payload, "wire_size", None)
    if size is not None:
        return int(size() if callable(size) else size)
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if payload is None:
        return 1
    return len(repr(payload).encode("utf-8"))
