"""The network fabric: delivery, faults, and traffic accounting.

Topology model
--------------
Hosts belong to *segments* (think: one switch per room/wing).  Latency for a
message is::

    same host          -> local_latency
    same segment       -> lan_latency   (+ jitter)
    different segment  -> lan_latency + backbone_latency (+ jitter)

plus a serialization term ``bytes / bandwidth_Bps`` charged at the sender.
Backbone bytes are counted separately so the distribution-vs-centralization
experiment (E16) can report them, exactly the traffic-locality argument the
paper makes against centralized clusters (§8.1).

Fault model
-----------
* ``Host.crash()`` — endpoints on the host are closed; in-flight traffic to
  it is dropped at arrival time; peers discover EOF (streams) or silence.
* ``set_partition(groups)`` — traffic between groups is dropped; connects
  across the cut raise ``ConnectionRefused`` after the connect timeout.
* ``loss_rate`` — i.i.d. datagram loss from the ``net.loss`` RNG stream
  (streams are reliable, as TCP would retransmit under the covers).
* **degraded hosts** (gray failure) — ``Host.degrade(latency_mult,
  bandwidth_mult)`` slows every message touching that host without taking
  it down; leases keep renewing, so only client-side deadlines notice.
* **flaky links** (gray failure) — ``set_link_fault(a, b, loss)`` drops a
  fraction of messages between two hosts.  Unlike ``loss_rate`` this also
  applies to *stream* payloads, modelling a path so lossy that TCP stalls
  past any reasonable RPC budget; the dropped message simply never
  arrives and the caller's deadline is what ends the wait.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, List, Optional, Set

from repro.sim import RngRegistry, Simulator, TraceRecorder

from repro.net.address import Address
from repro.net.host import Host, HostDownError
from repro.net.sockets import (
    Connection,
    ConnectionClosed,
    ConnectionRefused,
    DatagramSocket,
    ListenerSocket,
    wire_size,
)


class NetworkError(Exception):
    """Configuration/usage errors: duplicate binds, unknown hosts, ..."""


class TrafficStats:
    """Byte and message counters split by traffic scope."""

    def __init__(self) -> None:
        self.messages = 0
        self.bytes_local = 0
        self.bytes_lan = 0
        self.bytes_backbone = 0
        self.dropped = 0
        #: subset of ``dropped`` caused by injected link faults (chaos runs)
        self.dropped_fault = 0

    @property
    def bytes_total(self) -> int:
        return self.bytes_local + self.bytes_lan + self.bytes_backbone

    def snapshot(self) -> Dict[str, int]:
        return {
            "messages": self.messages,
            "bytes_local": self.bytes_local,
            "bytes_lan": self.bytes_lan,
            "bytes_backbone": self.bytes_backbone,
            "bytes_total": self.bytes_total,
            "dropped": self.dropped,
            "dropped_fault": self.dropped_fault,
        }


class Network:
    """Owns hosts, bindings, and every message in flight."""

    def __init__(
        self,
        sim: Simulator,
        rng: Optional[RngRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        *,
        local_latency: float = 20e-6,
        lan_latency: float = 250e-6,
        backbone_latency: float = 2e-3,
        bandwidth_Bps: float = 12.5e6,  # 100 Mbit/s
        jitter_frac: float = 0.0,
        loss_rate: float = 0.0,
        connect_timeout: float = 1.0,
    ):
        self.sim = sim
        self.rng = rng if rng is not None else RngRegistry(0)
        # NB: an empty TraceRecorder is falsy (it has __len__), so a plain
        # ``trace or ...`` would silently discard the caller's recorder and
        # network records would never reach the environment trace.
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.local_latency = local_latency
        self.lan_latency = lan_latency
        self.backbone_latency = backbone_latency
        self.bandwidth_Bps = bandwidth_Bps
        self.jitter_frac = jitter_frac
        self.loss_rate = loss_rate
        self.connect_timeout = connect_timeout
        self.stats = TrafficStats()
        self.hosts: Dict[str, Host] = {}
        self._listeners: Dict[Address, ListenerSocket] = {}
        self._datagram: Dict[Address, DatagramSocket] = {}
        self._multicast: Dict[Address, Set[DatagramSocket]] = {}
        self._partition: Optional[Dict[str, int]] = None
        self._link_faults: Dict[tuple, float] = {}
        self._next_port: Dict[str, int] = {}
        self._jitter_rng = self.rng.py("net.jitter")
        self._loss_rng = self.rng.py("net.loss")

    # ------------------------------------------------------------------
    # Host management
    # ------------------------------------------------------------------
    def add_host(self, host: Host) -> Host:
        if host.name in self.hosts:
            raise NetworkError(f"duplicate host {host.name!r}")
        self.hosts[host.name] = host
        return host

    def make_host(self, name: str, **kwargs: Any) -> Host:
        return self.add_host(Host(self.sim, name, **kwargs))

    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host {name!r}")

    def crash_host(self, name: str) -> None:
        """Crash a host and close all of its endpoints."""
        host = self.host(name)
        host.crash()
        for addr, listener in list(self._listeners.items()):
            if addr.host == name:
                listener.close()
        for addr, sock in list(self._datagram.items()):
            if addr.host == name:
                sock.close()
        self.trace.emit(self.sim.now, "network", "host-crash", host=name)

    def restart_host(self, name: str) -> None:
        self.host(name).restart()
        self.trace.emit(self.sim.now, "network", "host-restart", host=name)

    def ephemeral_port(self, host_name: str) -> int:
        from repro.net.address import WellKnownPorts

        port = self._next_port.get(host_name, WellKnownPorts.EPHEMERAL_BASE)
        self._next_port[host_name] = port + 1
        return port

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def set_partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Partition the network into the given host groups.

        Hosts not named in any group go into an implicit extra group.
        """
        mapping: Dict[str, int] = {}
        for idx, group in enumerate(groups):
            for host_name in group:
                self.host(host_name)  # validate
                mapping[host_name] = idx
        next_group = len(set(mapping.values()))
        for name in self.hosts:
            mapping.setdefault(name, next_group)
        self._partition = mapping
        self.trace.emit(self.sim.now, "network", "partition", groups=dict(mapping))

    def clear_partition(self) -> None:
        self._partition = None
        self.trace.emit(self.sim.now, "network", "partition-heal")

    def _reachable(self, src: Host, dst: Host) -> bool:
        if not dst.up:
            return False
        if self._partition is None or src.name == dst.name:
            return True
        return self._partition[src.name] == self._partition[dst.name]

    # ------------------------------------------------------------------
    # Flaky links (gray failure)
    # ------------------------------------------------------------------
    @staticmethod
    def _link_key(a: str, b: str) -> tuple:
        return (a, b) if a <= b else (b, a)

    def set_link_fault(self, a: str, b: str, loss: float) -> None:
        """Drop ``loss`` fraction of messages between hosts ``a`` and ``b``
        (both directions).  Unlike ``loss_rate``, stream payloads are
        dropped too — the gray-failure mode where TCP stalls forever."""
        self.host(a), self.host(b)  # validate
        if not 0.0 <= loss <= 1.0:
            raise NetworkError(f"link loss must be in [0, 1], got {loss}")
        key = self._link_key(a, b)
        if loss <= 0.0:
            self._link_faults.pop(key, None)
        else:
            self._link_faults[key] = loss
        self.trace.emit(self.sim.now, "network", "link-fault", a=a, b=b, loss=loss)

    def clear_link_fault(self, a: str, b: str) -> None:
        self._link_faults.pop(self._link_key(a, b), None)
        self.trace.emit(self.sim.now, "network", "link-fault-heal", a=a, b=b)

    def link_fault(self, a: str, b: str) -> float:
        return self._link_faults.get(self._link_key(a, b), 0.0)

    def _link_dropped(self, src: Host, dst: Host) -> bool:
        """Roll for an injected link-fault drop on a src→dst message."""
        loss = self._link_faults.get(self._link_key(src.name, dst.name), 0.0)
        if loss > 0 and self._loss_rng.random() < loss:
            self.stats.dropped += 1
            self.stats.dropped_fault += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Latency / accounting
    # ------------------------------------------------------------------
    def _path_latency(self, src: Host, dst: Host) -> float:
        if src.name == dst.name:
            base = self.local_latency
        elif src.segment == dst.segment:
            base = self.lan_latency
        else:
            base = self.lan_latency + self.backbone_latency
        # Degraded hosts slow every message touching them (gray failure).
        base *= src.latency_mult * dst.latency_mult
        if self.jitter_frac > 0:
            base *= 1.0 + self.jitter_frac * self._jitter_rng.random()
        return base

    def _account(self, src: Host, dst: Host, nbytes: int) -> None:
        self.stats.messages += 1
        if src.name == dst.name:
            self.stats.bytes_local += nbytes
        elif src.segment == dst.segment:
            self.stats.bytes_lan += nbytes
        else:
            self.stats.bytes_backbone += nbytes

    def _transmit_delay(self, src: Host, nbytes: int) -> float:
        return nbytes / self.bandwidth_Bps * src.bandwidth_mult

    # ------------------------------------------------------------------
    # Stream sockets
    # ------------------------------------------------------------------
    def listen(self, host: Host, port: int) -> ListenerSocket:
        host.check_up()
        addr = Address(host.name, port)
        if addr in self._listeners and not self._listeners[addr].closed:
            raise NetworkError(f"address {addr} already bound")
        sock = ListenerSocket(self, host, addr)
        self._listeners[addr] = sock
        return sock

    def _unbind_listener(self, sock: ListenerSocket) -> None:
        if self._listeners.get(sock.address) is sock:
            del self._listeners[sock.address]

    def connect(self, src: Host, dest: Address, timeout: Optional[float] = None) -> Generator:
        """Three-message handshake; returns the client-side Connection.

        Raises :class:`ConnectionRefused` if nothing listens at ``dest``, the
        destination is down/partitioned away, or the timeout elapses.  As in
        real TCP, the client's ephemeral port is allocated when ``connect``
        is called (before the SYN leaves) and a refusal travels back as an
        RST, surfacing one full round trip after the call.
        """
        src.check_up()
        timeout = self.connect_timeout if timeout is None else timeout
        dst_host = self.hosts.get(dest.host)
        local = Address(src.name, self.ephemeral_port(src.name))
        # SYN leg.
        yield self.sim.timeout(self._path_latency(src, dst_host) if dst_host else timeout)
        if dst_host is None or not self._reachable(src, dst_host) or not src.up:
            yield self.sim.timeout(timeout)
            raise ConnectionRefused(f"no route to {dest}")
        refusal: Optional[str] = None
        client: Optional[Connection] = None
        listener = self._listeners.get(dest)
        if listener is None or listener.closed:
            refusal = f"nothing listening at {dest}"
        else:
            client = Connection(self, src, local, dest)
            server = Connection(self, dst_host, dest, local)
            client.peer = server
            server.peer = client
            if not listener._offer(server):
                refusal = f"listener at {dest} closed during handshake"
        # SYN-ACK (or RST, when refused) leg back to the client.
        yield self.sim.timeout(self._path_latency(dst_host, src))
        if not src.up:
            raise HostDownError(src.name)
        if refusal is not None:
            raise ConnectionRefused(refusal)
        self.trace.emit(self.sim.now, "network", "connect", src=str(local), dst=str(dest))
        return client

    def _stream_transmit(self, conn: Connection, payload: Any) -> Generator:
        nbytes = wire_size(payload)
        yield self.sim.timeout(self._transmit_delay(conn.host, nbytes))
        peer = conn.peer
        assert peer is not None
        dst_host = peer.host
        if not self._reachable(conn.host, dst_host):
            self.stats.dropped += 1
            return
        if self._link_dropped(conn.host, dst_host):
            return
        self._account(conn.host, dst_host, nbytes)
        arrival = self.sim.now + self._path_latency(conn.host, dst_host)
        # Enforce per-connection FIFO despite jitter.
        arrival = max(arrival, peer._last_arrival)
        peer._last_arrival = arrival
        delivery = self.sim.timeout(arrival - self.sim.now)
        delivery.callbacks.append(lambda _ev, p=peer, m=payload: self._arrive_stream(p, m))

    def _arrive_stream(self, peer: Connection, payload: Any) -> None:
        if not peer.host.up or peer.closed:
            self.stats.dropped += 1
            return
        peer._enqueue(payload)

    def _stream_close_notify(self, conn: Connection) -> None:
        peer = conn.peer
        if peer is None or peer.closed:
            return
        if not self._reachable(conn.host, peer.host):
            return  # peer never learns; it will discover on its own
        lat = self._path_latency(conn.host, peer.host)
        delivery = self.sim.timeout(lat)
        delivery.callbacks.append(lambda _ev, p=peer: p._enqueue_close())

    # ------------------------------------------------------------------
    # Datagram sockets
    # ------------------------------------------------------------------
    def bind_datagram(self, host: Host, port: Optional[int] = None) -> DatagramSocket:
        host.check_up()
        if port is None:
            port = self.ephemeral_port(host.name)
        addr = Address(host.name, port)
        if addr in self._datagram and not self._datagram[addr].closed:
            raise NetworkError(f"datagram address {addr} already bound")
        sock = DatagramSocket(self, host, addr)
        self._datagram[addr] = sock
        return sock

    def _unbind_datagram(self, sock: DatagramSocket) -> None:
        if self._datagram.get(sock.address) is sock:
            del self._datagram[sock.address]
        for members in self._multicast.values():
            members.discard(sock)

    def _datagram_transmit(self, sock: DatagramSocket, dest: Address, payload: Any) -> Generator:
        nbytes = wire_size(payload)
        yield self.sim.timeout(self._transmit_delay(sock.host, nbytes))
        self._datagram_route(sock, dest, payload, nbytes)

    def _datagram_route(self, sock: DatagramSocket, dest: Address, payload: Any, nbytes: int) -> None:
        dst_host = self.hosts.get(dest.host)
        if dst_host is None or not self._reachable(sock.host, dst_host):
            self.stats.dropped += 1
            return
        if self.loss_rate > 0 and self._loss_rng.random() < self.loss_rate:
            self.stats.dropped += 1
            return
        if self._link_dropped(sock.host, dst_host):
            return
        self._account(sock.host, dst_host, nbytes)
        delivery = self.sim.timeout(self._path_latency(sock.host, dst_host))
        source = sock.address

        def arrive(_ev: Any) -> None:
            target = self._datagram.get(dest)
            if target is None or target.closed or not target.host.up:
                self.stats.dropped += 1
                return
            target._enqueue(source, payload)

        delivery.callbacks.append(arrive)

    # ------------------------------------------------------------------
    # Multicast (for the Jini-style discovery baseline)
    # ------------------------------------------------------------------
    def _multicast_join(self, group: Address, sock: DatagramSocket) -> None:
        self._multicast.setdefault(group, set()).add(sock)

    def _multicast_leave(self, group: Address, sock: DatagramSocket) -> None:
        self._multicast.get(group, set()).discard(sock)

    def _multicast_transmit(self, sock: DatagramSocket, group: Address, payload: Any) -> Generator:
        nbytes = wire_size(payload)
        yield self.sim.timeout(self._transmit_delay(sock.host, nbytes))
        members = sorted(self._multicast.get(group, ()), key=lambda s: str(s.address))
        source = sock.address
        for member in members:
            if member is sock:
                continue
            if not self._reachable(sock.host, member.host):
                self.stats.dropped += 1
                continue
            if self.loss_rate > 0 and self._loss_rng.random() < self.loss_rate:
                self.stats.dropped += 1
                continue
            if self._link_dropped(sock.host, member.host):
                continue
            self._account(sock.host, member.host, nbytes)
            delivery = self.sim.timeout(self._path_latency(sock.host, member.host))
            delivery.callbacks.append(
                lambda _ev, m=member, p=payload: m._enqueue(source, p) if (not m.closed and m.host.up) else None
            )
