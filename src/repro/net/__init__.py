"""Simulated network substrate for ACE.

The paper deploys ACE on a LAN of Unix workstations.  Here the network is a
deterministic simulation: :class:`~repro.net.host.Host` objects (with a CPU
speed in *bogomips*, as the HRM reports in §4.1) attached to a
:class:`~repro.net.network.Network` that delivers stream and datagram
messages with configurable latency, bandwidth, jitter, loss, partitions,
and host crashes.  Latency is segment-aware so the locality experiment
(E16) can count backbone traffic.

Secure channels (§3.1's SSL) live in :mod:`repro.net.secure`.
"""

from repro.net.address import Address, WellKnownPorts
from repro.net.host import Host, HostDownError
from repro.net.network import Network, NetworkError
from repro.net.sockets import (
    Connection,
    ConnectionClosed,
    ConnectionRefused,
    DatagramSocket,
    ListenerSocket,
)
from repro.net.secure import HandshakeError, SecureChannel, secure_pair

__all__ = [
    "Address",
    "Connection",
    "ConnectionClosed",
    "ConnectionRefused",
    "DatagramSocket",
    "HandshakeError",
    "Host",
    "HostDownError",
    "ListenerSocket",
    "Network",
    "NetworkError",
    "SecureChannel",
    "WellKnownPorts",
    "secure_pair",
]
