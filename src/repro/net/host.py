"""Simulated hosts: CPU, memory, disk, load accounting, crash/restart.

A host is where ACE daemons run.  Its CPU is a :class:`repro.sim.Resource`
with one slot per core; daemon work is expressed in *bogomips-seconds* (the
unit the paper's HRM reports, §4.1) so a 400-bogomips host takes twice as
long as an 800-bogomips one for the same work, and contention queues up
naturally.  Utilization is tracked with an exponentially-decayed busy-time
window so the HRM/SRM (§4.1–4.2) can report meaningful load figures.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim import Container, Resource, Simulator


class HostDownError(Exception):
    """Raised when code touches a crashed host."""

    def __init__(self, host: str):
        super().__init__(f"host {host!r} is down")
        self.host = host


class Host:
    """A machine in the ACE network."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        bogomips: float = 800.0,
        cores: int = 1,
        memory_mb: float = 512.0,
        disk_mb: float = 20_000.0,
        room: str = "",
        segment: str = "lan",
    ):
        if bogomips <= 0:
            raise ValueError(f"bogomips must be positive, got {bogomips}")
        self.sim = sim
        self.name = name
        self.bogomips = bogomips
        self.cores = cores
        self.room = room
        self.segment = segment
        self.cpu = Resource(sim, capacity=cores, name=f"{name}.cpu")
        self.memory = Container(sim, capacity=memory_mb, init=memory_mb, name=f"{name}.mem")
        self.disk = Container(sim, capacity=disk_mb, init=disk_mb, name=f"{name}.disk")
        self._up = True
        self._busy_accum = 0.0
        self._busy_mark: Optional[float] = None
        self._window_start = 0.0
        self._epoch = 0  # bumped on each crash so stale work notices
        # Gray-failure degradation: >1 means this host's NIC/stack is slower.
        self.latency_mult = 1.0
        self.bandwidth_mult = 1.0

    # -- liveness ----------------------------------------------------------
    @property
    def up(self) -> bool:
        return self._up

    @property
    def epoch(self) -> int:
        return self._epoch

    def crash(self) -> None:
        """Take the host down.  The network drops its traffic; daemons on it
        stop making progress (their next ``execute`` raises)."""
        self._up = False
        self._epoch += 1

    def restart(self) -> None:
        """Bring a crashed host back (empty: daemons must be relaunched)."""
        self._up = True
        self._busy_accum = 0.0
        self._busy_mark = None
        self._window_start = self.sim.now
        self.restore_performance()

    def check_up(self) -> None:
        if not self._up:
            raise HostDownError(self.name)

    # -- gray failure (degraded host) --------------------------------------
    @property
    def degraded(self) -> bool:
        return self.latency_mult != 1.0 or self.bandwidth_mult != 1.0

    def degrade(self, latency_mult: float = 1.0, bandwidth_mult: float = 1.0) -> None:
        """Make this host's networking slow without taking it down — the
        gray-failure mode leases and restart managers cannot see.

        Multipliers scale *time*: ``latency_mult=10`` means every message
        touching this host takes 10× the path latency; ``bandwidth_mult=4``
        means sends from it serialize 4× slower.
        """
        if latency_mult <= 0 or bandwidth_mult <= 0:
            raise ValueError("degradation multipliers must be positive")
        self.latency_mult = latency_mult
        self.bandwidth_mult = bandwidth_mult

    def restore_performance(self) -> None:
        self.latency_mult = 1.0
        self.bandwidth_mult = 1.0

    # -- CPU work ----------------------------------------------------------
    def execute(self, bogomips_seconds: float) -> Generator:
        """Process generator: occupy a core for the given amount of work.

        ``bogomips_seconds`` is work normalized to a 1-bogomips machine;
        wall time on this host is ``work / bogomips``.
        """
        self.check_up()
        epoch = self._epoch
        req = self.cpu.request()
        yield req
        try:
            self.check_up()
            duration = bogomips_seconds / self.bogomips
            self._note_busy_start()
            yield self.sim.timeout(duration)
            if not self._up or self._epoch != epoch:
                raise HostDownError(self.name)
        finally:
            self._note_busy_end()
            self.cpu.release(req)

    # -- load accounting -----------------------------------------------------
    def _note_busy_start(self) -> None:
        if self.cpu.count >= 1 and self._busy_mark is None:
            self._busy_mark = self.sim.now

    def _note_busy_end(self) -> None:
        # Called with the slot still held; busy interval ends when the last
        # active slot drains.
        if self._busy_mark is not None and self.cpu.count <= 1:
            self._busy_accum += self.sim.now - self._busy_mark
            self._busy_mark = None

    def utilization(self) -> float:
        """Fraction of time at least one core was busy since the last reset."""
        end = self.sim.now
        window = end - self._window_start
        if window <= 0:
            return 0.0
        busy = self._busy_accum
        if self._busy_mark is not None:
            busy += end - self._busy_mark
        return min(1.0, busy / window)

    def reset_utilization(self) -> None:
        self._busy_accum = 0.0
        self._window_start = self.sim.now
        if self._busy_mark is not None:
            self._busy_mark = self.sim.now

    def run_queue_length(self) -> int:
        """Processes waiting for a core (the classic Unix load signal)."""
        return self.cpu.queued

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self._up else "DOWN"
        return f"<Host {self.name} {self.bogomips:.0f}bmips x{self.cores} {state}>"
