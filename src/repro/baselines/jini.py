"""Jini-style discovery baseline (experiment E17, §8.4).

The Jini flow differs from the ASD's in two measurable ways:

1. the lookup service is found by **multicast** rather than a well-known
   address (extra round trip + multicast traffic);
2. lookups return a serialized **service proxy** (downloaded code, often
   kilobytes) instead of the ASD's ~60-byte ``host|port`` record; the
   client then invokes through the proxy via RMI.

Both effects are modeled with genuine payload sizes so the discovery
byte/latency comparison is meaningful.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.net import Address
from repro.net.address import WellKnownPorts
from repro.net.host import Host
from repro.net.network import Network

#: Serialized Jini proxies carry stub classes; a few KB is typical.
PROXY_CODE_BYTES = 4096


@dataclass
class JiniServiceProxy:
    """What a Jini lookup hands back: a serialized, downloadable stub."""

    interface: str
    name: str
    address: Address
    attributes: Dict[str, str]
    stub_code: bytes = b""

    def wire_size(self) -> int:
        return len(pickle.dumps(
            (self.interface, self.name, str(self.address), self.attributes)
        )) + len(self.stub_code)


@dataclass
class _Registration:
    proxy: JiniServiceProxy
    lease_expiry: float


class JiniLookupService:
    """The Jini lookup service: multicast-discoverable registrar."""

    def __init__(self, net: Network, host: Host, port: int = 4160,
                 lease_duration: float = 30.0):
        self.net = net
        self.host = host
        self.port = port
        self.lease_duration = lease_duration
        self._registry: Dict[str, _Registration] = {}
        self._dgram = None
        self.lookups_served = 0
        self.registrations = 0

    @property
    def address(self) -> Address:
        return Address(self.host.name, self.port)

    def start(self) -> None:
        self._dgram = self.net.bind_datagram(self.host, self.port)
        self._dgram.join(WellKnownPorts.JINI_MULTICAST)
        self.net.sim.process(self._serve_loop(), name="jini-lookup")

    def stop(self) -> None:
        if self._dgram is not None:
            self._dgram.close()

    def _expire(self) -> None:
        now = self.net.sim.now
        for name in [n for n, reg in self._registry.items() if reg.lease_expiry <= now]:
            del self._registry[name]

    def _serve_loop(self) -> Generator:
        from repro.net import ConnectionClosed

        while True:
            try:
                source, message = yield from self._dgram.recv()
            except ConnectionClosed:
                return
            kind = message[0]
            if kind == "discover":
                # Unicast announcement back to the requester.
                yield from self._dgram.send(source, ("announce", self.address))
            elif kind == "register":
                _, proxy = message
                self._registry[proxy.name] = _Registration(
                    proxy, self.net.sim.now + self.lease_duration
                )
                self.registrations += 1
                yield from self._dgram.send(
                    source, ("lease", proxy.name, self.lease_duration)
                )
            elif kind == "renew":
                _, name = message
                reg = self._registry.get(name)
                if reg is not None and reg.lease_expiry > self.net.sim.now:
                    reg.lease_expiry = self.net.sim.now + self.lease_duration
                    yield from self._dgram.send(source, ("lease", name, self.lease_duration))
                else:
                    yield from self._dgram.send(source, ("no-lease", name))
            elif kind == "lookup":
                _, interface = message
                self._expire()
                self.lookups_served += 1
                matches = [
                    reg.proxy for reg in self._registry.values()
                    if reg.proxy.interface == interface
                ]
                matches.sort(key=lambda p: p.name)
                yield from self._dgram.send(source, ("proxies", tuple(matches)))


def jini_discover(net: Network, host: Host, port: Optional[int] = None,
                  timeout: float = 2.0) -> Generator:
    """Multicast discovery: returns the lookup service's address.

    Raises ``TimeoutError`` if no announcement arrives (lookup down or
    partitioned away).
    """
    sock = net.bind_datagram(host, port)
    try:
        yield from sock.send_multicast(WellKnownPorts.JINI_MULTICAST, ("discover",))
        deadline = net.sim.now + timeout
        while net.sim.now < deadline:
            found, item = sock.try_recv()
            if found:
                _source, message = item
                if message[0] == "announce":
                    return message[1]
            yield net.sim.timeout(0.005)
        raise TimeoutError("no Jini lookup service answered the multicast")
    finally:
        sock.close()


class JiniParticipant:
    """Helper for services/clients speaking the lookup protocol."""

    def __init__(self, net: Network, host: Host):
        self.net = net
        self.host = host
        self.sock = net.bind_datagram(host)
        self.lookup_address: Optional[Address] = None

    def discover(self, timeout: float = 2.0) -> Generator:
        yield from self.sock.send_multicast(WellKnownPorts.JINI_MULTICAST, ("discover",))
        deadline = self.net.sim.now + timeout
        while self.net.sim.now < deadline:
            found, item = self.sock.try_recv()
            if found and item[1][0] == "announce":
                self.lookup_address = item[1][1]
                return self.lookup_address
            yield self.net.sim.timeout(0.005)
        raise TimeoutError("no Jini lookup service answered")

    def _request(self, message: Tuple, want: Tuple[str, ...], timeout: float = 2.0) -> Generator:
        assert self.lookup_address is not None, "discover() first"
        yield from self.sock.send(self.lookup_address, message)
        deadline = self.net.sim.now + timeout
        while self.net.sim.now < deadline:
            found, item = self.sock.try_recv()
            if found and item[1][0] in want:
                return item[1]
            yield self.net.sim.timeout(0.005)
        raise TimeoutError(f"lookup service did not answer {message[0]!r}")

    def join(self, proxy: JiniServiceProxy) -> Generator:
        """Register a service (Jini's 'join protocol')."""
        if proxy.stub_code == b"":
            proxy.stub_code = bytes(PROXY_CODE_BYTES)
        reply = yield from self._request(("register", proxy), ("lease",))
        return reply[2]  # lease duration

    def renew(self, name: str) -> Generator:
        """Returns the new lease duration, or None when the lease lapsed."""
        reply = yield from self._request(("renew", name), ("lease", "no-lease"))
        return reply[2] if reply[0] == "lease" else None

    def lookup(self, interface: str) -> Generator:
        reply = yield from self._request(("lookup", interface), ("proxies",))
        return list(reply[1])

    def close(self) -> None:
        self.sock.close()
