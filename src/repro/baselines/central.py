"""Centralized-gateway baseline (experiment E16, §8.3).

WebSphere-style deployment: every device command from every client routes
through one central server (possibly across the backbone), which forwards
to the device and relays the reply.  ACE's counter-argument (§8.1) is that
distributing daemons "not only reduces network traffic to local devices
... but also makes response times to these local services much more
efficient"; E16 measures exactly that: per-command latency and backbone
bytes, centralized vs direct.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics, parse_command
from repro.net import Address, ConnectionClosed, ConnectionRefused
from repro.core.client import CallError
from repro.core.daemon import ACEDaemon, Request, ServiceError


class CentralGatewayDaemon(ACEDaemon):
    """The single integration point all device traffic flows through."""

    service_type = "CentralGateway"

    def __init__(self, ctx, name, host, **kwargs):
        super().__init__(ctx, name, host, **kwargs)
        #: device name -> address (the gateway's own registry, mirroring a
        #: centralized deployment descriptor)
        self.devices: Dict[str, Address] = {}
        self.forwarded = 0

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "registerDevice",
            ArgSpec("device", ArgType.STRING),
            ArgSpec("host", ArgType.STRING),
            ArgSpec("port", ArgType.INTEGER),
        )
        sem.define(
            "forward",
            ArgSpec("device", ArgType.STRING),
            ArgSpec("command", ArgType.STRING),
            description="relay a command to a device and return its reply",
        )

    def cmd_registerDevice(self, request: Request) -> dict:
        cmd = request.command
        self.devices[cmd.str("device")] = Address(cmd.str("host"), cmd.int("port"))
        return {"devices": len(self.devices)}

    def cmd_forward(self, request: Request) -> Generator:
        cmd = request.command
        device = cmd.str("device")
        target = self.devices.get(device)
        if target is None:
            raise ServiceError(f"unknown device {device!r}")
        try:
            inner = parse_command(cmd.str("command"))
        except Exception as exc:
            raise ServiceError(f"unparseable inner command: {exc}")
        client = self._service_client()
        try:
            reply = yield from client.call_once(target, inner, attach=True)
        except (CallError, ConnectionClosed, ConnectionRefused) as exc:
            raise ServiceError(f"device {device!r} unreachable: {exc}")
        self.forwarded += 1
        # Relay the device's reply fields (prefixed to avoid clashing with
        # the gateway's own reply envelope).
        out = {"device": device}
        for key, value in reply:
            if key not in ("cmd",):
                out[f"r_{key}"] = value
        return out
