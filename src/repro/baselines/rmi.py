"""RMI-style remote method invocation baseline (experiment E1).

Java RMI ships serialized call envelopes: a method descriptor (interface
name, method signature, operation hash), serialized arguments with class
metadata, plus the transport's own header.  We emulate that with pickled
envelopes carrying the same descriptive burden, so the byte and CPU
comparison against the ~dozens-of-bytes ACE command strings is fair at the
protocol level (both run over the identical simulated transport).

The paper's claim (§2.2, §8.1): the ACE command language "allows for a
very lightweight form of communication ... much more lightweight than
utilizing something like RMI", whose "bytecode transmissions ... may be
large".
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional, Tuple

from repro.net import Address, Connection
from repro.net.host import Host
from repro.net.network import Network

#: JRMP-ish fixed framing overhead per message (stream magic, protocol
#: byte, UID, operation number...).
TRANSPORT_HEADER = 22


@dataclass
class RMIEnvelope:
    """A serialized remote call or reply."""

    payload: bytes

    def wire_size(self) -> int:
        return len(self.payload) + TRANSPORT_HEADER

    @classmethod
    def call(cls, interface: str, method: str, signature: str,
             args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> "RMIEnvelope":
        envelope = {
            "type": "call",
            "interface": interface,
            "method": method,
            "signature": signature,
            # Java serialization tags every object with its class; pickle
            # does the equivalent via its own opcodes.
            "args": args,
            "kwargs": kwargs,
            "operation_hash": hash((interface, method, signature)) & 0xFFFFFFFF,
        }
        return cls(pickle.dumps(envelope, protocol=2))

    @classmethod
    def reply(cls, value: Any, exception: Optional[str] = None) -> "RMIEnvelope":
        return cls(pickle.dumps({"type": "return", "value": value,
                                 "exception": exception}, protocol=2))

    def decode(self) -> Dict[str, Any]:
        return pickle.loads(self.payload)


def rmi_roundtrip_size(interface: str, method: str, signature: str,
                       args: Tuple[Any, ...], kwargs: Dict[str, Any],
                       result: Any) -> Tuple[int, int]:
    """(call bytes, reply bytes) for one invocation — E1's byte metric."""
    call = RMIEnvelope.call(interface, method, signature, args, kwargs)
    reply = RMIEnvelope.reply(result)
    return call.wire_size(), reply.wire_size()


class RMIServer:
    """A remote object: dispatches envelope calls to registered methods."""

    def __init__(self, net: Network, host: Host, port: int, interface: str):
        self.net = net
        self.host = host
        self.port = port
        self.interface = interface
        self._methods: Dict[str, Any] = {}
        self._listener = None
        self.calls_served = 0

    @property
    def address(self) -> Address:
        return Address(self.host.name, self.port)

    def register(self, name: str, func) -> None:
        self._methods[name] = func

    def start(self) -> None:
        self._listener = self.net.listen(self.host, self.port)
        self.net.sim.process(self._accept_loop(), name=f"rmi:{self.interface}")

    def stop(self) -> None:
        if self._listener is not None:
            self._listener.close()

    def _accept_loop(self) -> Generator:
        from repro.net import ConnectionClosed

        while True:
            try:
                conn = yield from self._listener.accept()
            except ConnectionClosed:
                return
            self.net.sim.process(self._serve(conn), name="rmi-conn")

    def _serve(self, conn: Connection) -> Generator:
        from repro.net import ConnectionClosed

        while True:
            try:
                envelope = yield from conn.recv()
            except ConnectionClosed:
                return
            message = envelope.decode()
            # Deserialization/dispatch CPU (comparable accounting to the
            # ACE daemon's dispatch_work, plus per-byte unpickling cost).
            yield from self.host.execute(2.0 + 0.004 * len(envelope.payload))
            method = self._methods.get(message["method"])
            if method is None:
                reply = RMIEnvelope.reply(None, exception="NoSuchMethodException")
            else:
                try:
                    value = method(*message["args"], **message["kwargs"])
                    reply = RMIEnvelope.reply(value)
                except Exception as exc:  # noqa: BLE001 - remote fault path
                    reply = RMIEnvelope.reply(None, exception=str(exc))
            self.calls_served += 1
            try:
                yield from conn.send(reply)
            except ConnectionClosed:
                return


class RMIClient:
    """Client-side stub: connect once, invoke many times."""

    def __init__(self, net: Network, host: Host, interface: str):
        self.net = net
        self.host = host
        self.interface = interface
        self._conn: Optional[Connection] = None

    def connect(self, address: Address) -> Generator:
        self._conn = yield from self.net.connect(self.host, address)

    def invoke(self, method: str, *args: Any, signature: str = "()", **kwargs: Any) -> Generator:
        if self._conn is None:
            raise RuntimeError("not connected")
        call = RMIEnvelope.call(self.interface, method, signature, args, kwargs)
        yield from self.host.execute(1.0 + 0.004 * len(call.payload))  # marshalling
        yield from self._conn.send(call)
        reply = yield from self._conn.recv()
        message = reply.decode()
        if message.get("exception"):
            raise RuntimeError(message["exception"])
        return message["value"]

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
