"""Comparison baselines for the paper's qualitative claims.

* :mod:`repro.baselines.rmi` — a Java-RMI-flavoured remote-invocation
  protocol (pickled call envelopes with interface descriptors), matched
  against the ACE command language for experiment E1 ("much more
  lightweight than RMI", §2.2/§8.1).
* :mod:`repro.baselines.jini` — Jini-style discovery: multicast lookup
  location, serialized service *proxies* shipped to clients (§8.4), for
  experiment E17 against the ASD.
* :mod:`repro.baselines.central` — a WebSphere-style centralized gateway
  all device traffic routes through (§8.3), for the locality experiment
  E16 against ACE's distributed placement.
"""

from repro.baselines.rmi import RMIClient, RMIEnvelope, RMIServer, rmi_roundtrip_size
from repro.baselines.jini import JiniLookupService, JiniServiceProxy, jini_discover
from repro.baselines.central import CentralGatewayDaemon

__all__ = [
    "CentralGatewayDaemon",
    "JiniLookupService",
    "JiniServiceProxy",
    "RMIClient",
    "RMIEnvelope",
    "RMIServer",
    "jini_discover",
    "rmi_roundtrip_size",
]
