"""repro — a full reproduction of the ACE (Ambient Computational
Environments) architecture on a deterministic simulated network.

Quick start::

    from repro.env.scenarios import run_full_story

    results = run_full_story(seed=1)        # Scenarios 1-5 of the paper
    print(results["scenario3"]["t_end_to_end"])

Layer map (bottom-up):

* :mod:`repro.sim`       — discrete-event kernel (processes, queues, RNG).
* :mod:`repro.net`       — hosts, links, sockets, faults, secure channels.
* :mod:`repro.lang`      — the ACE command language (§2.2).
* :mod:`repro.security`  — toy crypto + KeyNote trust management (Ch. 3).
* :mod:`repro.core`      — the service-daemon infrastructure (Ch. 2).
* :mod:`repro.services`  — the basic ACE services (Ch. 4).
* :mod:`repro.store`     — the replicated persistent store (Ch. 6).
* :mod:`repro.apps`      — VNC workspaces, O-Phone, robust apps (Ch. 5).
* :mod:`repro.env`       — environment builder + Chapter 7 scenarios.
* :mod:`repro.baselines` — RMI / Jini / centralized-gateway comparators.
"""

from repro.core import ACEDaemon, DaemonContext, SecurityMode, ServiceClient
from repro.env import ACEEnvironment, UserIdentity
from repro.lang import ACECmdLine, parse_command
from repro.net import Address, Host, Network
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "ACECmdLine",
    "ACEDaemon",
    "ACEEnvironment",
    "Address",
    "DaemonContext",
    "Host",
    "Network",
    "SecurityMode",
    "ServiceClient",
    "Simulator",
    "UserIdentity",
    "parse_command",
    "__version__",
]
