"""User identities: everything Scenario 1 registers for a new ACE user."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.security.crypto import KeyPair


@dataclass
class UserIdentity:
    """A human user's enrollment material."""

    username: str
    fullname: str = ""
    password: str = ""
    fingerprint_template: Tuple[float, ...] = ()
    ibutton_serial: str = ""
    keypair: Optional[KeyPair] = None

    @property
    def principal(self) -> str:
        """KeyNote principal id (the key when present, else the username)."""
        if self.keypair is not None:
            return self.keypair.principal()
        return f"user:{self.username}"
