"""Environment composition: declaratively build and boot a whole ACE.

:class:`~repro.env.environment.ACEEnvironment` wires the simulation kernel,
network, security material, infrastructure services, per-host monitors and
launchers, devices, and users into one runnable object; the scenario
drivers in :mod:`repro.env.scenarios` replay Chapter 7 on top of it.
"""

from repro.env.campus import (
    CampusRegion,
    build_campus,
    campus_100k_profile,
    campus_shard_map,
)
from repro.env.environment import ACEEnvironment
from repro.env.users import UserIdentity

__all__ = [
    "ACEEnvironment",
    "CampusRegion",
    "UserIdentity",
    "build_campus",
    "campus_100k_profile",
    "campus_shard_map",
]
