"""Chapter 7 scenario drivers.

Each ``scenario_N`` coroutine replays one of the paper's five scenarios on
an :class:`~repro.env.environment.ACEEnvironment` and returns a result dict
with the measurements the benchmarks report (E12–E15).  They compose: the
standard demo environment runs 1→2→3→4→5 as one continuous story (see
``examples/conference_room.py``).
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.lang import ACECmdLine
from repro.services.devices import Epson7350ProjectorDaemon, VCC4CameraDaemon
from repro.services.fiu import noisy_sample

from repro.core.context import SecurityMode
from repro.env.environment import ACEEnvironment
from repro.env.users import UserIdentity


def scenario_client(env: ACEEnvironment, host, name: str):
    """A client suitable for the environment's security mode: plain in
    NONE/SSL, key-backed and POLICY-trusted in SSL_KEYNOTE (scenario
    drivers model administrator tools and device drivers, which a real
    deployment would credential exactly this way)."""
    if env.ctx.security.mode is SecurityMode.SSL_KEYNOTE:
        return env.authorized_client(host, name)
    return env.client(host, principal=name)


def standard_environment(seed: int = 0, **env_kwargs) -> ACEEnvironment:
    """The conference-room demo ACE: infrastructure, the 'hawk' conference
    room with a podium access point + ID devices + camera + projector, and
    two spare office workstations for placement."""
    env = ACEEnvironment(seed=seed, **env_kwargs)
    env.add_infrastructure("infra")
    env.add_room("hawk", building="nichols", dims=(10.0, 8.0, 3.0))
    env.add_room("office21", building="nichols", dims=(4.0, 3.0, 3.0))
    podium = env.add_workstation("podium", room="hawk", bogomips=600.0)
    env.add_workstation("tube", room="office21", bogomips=800.0)
    env.add_workstation("rod", room="office21", bogomips=1000.0)
    env.add_id_devices(podium, room="hawk")
    env.add_device(VCC4CameraDaemon, "camera.hawk", podium, room="hawk")
    env.add_device(Epson7350ProjectorDaemon, "projector.hawk", podium, room="hawk")
    return env


# ---------------------------------------------------------------------------
# Scenario 1 — New User & User Workspace (§7.1, Fig. 18)
# ---------------------------------------------------------------------------

def scenario_1_new_user(env: ACEEnvironment, username: str = "john",
                        fullname: str = "John Doe") -> Generator:
    """The administrator registers John and provisions his default
    workspace: GUI → AUD (addUser + fingerprint), GUI → WSS → SAL → SRM →
    HAL → VNC server."""
    sim = env.sim
    identity = env.create_identity(username, fullname=fullname)
    admin_host = env.daemon("aud").host
    client = scenario_client(env, admin_host, "admin-gui")
    t0 = sim.now

    # The whole scenario is one causal trace: every hop below (AUD insert,
    # WSS placement, the SAL/SRM/HAL fan-out it causes) lands in one tree.
    root = client.begin_trace("scenario1:new-user", user=username)
    status = "interrupted"
    try:
        # Step 1: insert the user and his scanned fingerprint into the AUD.
        yield from client.call_once(
            env.daemon("aud").address,
            ACECmdLine(
                "addUser",
                username=username,
                fullname=fullname,
                password=identity.password,
                ibutton=identity.ibutton_serial,
                fingerprint=identity.fingerprint_template,
            ),
        )
        t_user_added = sim.now

        # Step 2: the GUI tells the WSS; a default workspace comes up somewhere.
        reply = yield from client.call_once(
            env.daemon("wss").address,
            ACECmdLine("ensureDefaultWorkspace", user=username),
        )
        t_workspace = sim.now
        status = "ok"
    finally:
        client.end_trace(root, status=status)
    return {
        "username": username,
        "workspace": reply.str("workspace"),
        "vnc_host": reply.str("host"),
        "t_user_added": t_user_added - t0,
        "t_total": t_workspace - t0,
        "trace_id": root.trace_id if root is not None else "",
    }


# ---------------------------------------------------------------------------
# Scenario 2 — User Identification (§7.2)
# ---------------------------------------------------------------------------

def scenario_2_identification(env: ACEEnvironment, username: str = "john",
                              device: str = "fiu.podium",
                              noise: float = 0.05) -> Generator:
    """John presses his thumb to the podium fingerprint scanner."""
    sim = env.sim
    identity = env.users[username]
    fiu = env.daemon(device)
    # Make sure the FIU has loaded John's template from the AUD.
    driver = scenario_client(env, fiu.host, "fiu-driver")
    yield from driver.call_once(fiu.address, ACECmdLine("loadTemplates"))
    sample = noisy_sample(
        identity.fingerprint_template, env.rng.np(f"scan.{username}.{sim.now}"), noise
    )
    t0 = sim.now
    reply = yield from driver.call_once(fiu.address, ACECmdLine("scan", sample=sample))
    matched = reply.int("matched") == 1
    # Let the notification chain (FIU → IDMon → AUD) drain.
    yield sim.timeout(0.5)
    aud_location = env.daemon("aud").users[username].location if matched else ""
    return {
        "matched": matched,
        "distance": reply.float("distance"),
        "t_scan": sim.now - t0,
        "aud_location": aud_location,
    }


# ---------------------------------------------------------------------------
# Scenario 3 — User Workspace at the access point (§7.3, Fig. 19)
# ---------------------------------------------------------------------------

def scenario_3_workspace_display(env: ACEEnvironment, username: str = "john",
                                 device: str = "fiu.podium") -> Generator:
    """Identification brings John's workspace up on the podium screen.

    Returns the end-to-end latency from finger press to viewer attach —
    the full 7-step chain of Fig. 19."""
    sim = env.sim
    fiu = env.daemon(device)
    identity = env.users[username]
    driver = scenario_client(env, fiu.host, "fiu-driver3")
    yield from driver.call_once(fiu.address, ACECmdLine("loadTemplates"))
    before = len(env.trace.filter(kind="viewer-attached"))
    sample = noisy_sample(
        identity.fingerprint_template, env.rng.np(f"scan3.{username}"), 0.05
    )
    t0 = sim.now
    yield from driver.call_once(fiu.address, ACECmdLine("scan", sample=sample))
    # Wait for the viewer to come up (IDMon → WSS → HAL → viewer attach).
    deadline = sim.now + 30.0
    while sim.now < deadline:
        attaches = env.trace.filter(kind="viewer-attached")
        if len(attaches) > before:
            return {
                "displayed": True,
                "t_end_to_end": attaches[-1].time - t0,
                "display": attaches[-1].detail.get("display"),
                "session": attaches[-1].detail.get("session"),
            }
        yield sim.timeout(0.1)
    return {"displayed": False, "t_end_to_end": float("inf")}


# ---------------------------------------------------------------------------
# Scenario 4 — Multiple User Workspaces (§7.4)
# ---------------------------------------------------------------------------

def scenario_4_multiple_workspaces(env: ACEEnvironment, username: str = "john",
                                   device: str = "fiu.podium") -> Generator:
    """John has a second workspace; identification pops a selector and his
    explicit choice opens the secondary workspace at the podium."""
    sim = env.sim
    identity = env.users[username]
    client = scenario_client(env, env.daemon("wss").host, "admin-gui4")
    wss_addr = env.daemon("wss").address
    yield from client.call_once(
        wss_addr, ACECmdLine("createWorkspace", user=username, name=f"{username}-work")
    )
    # Identify at the podium: with 2 workspaces the IDMon shows a selector.
    fiu = env.daemon(device)
    driver = scenario_client(env, fiu.host, "fiu-driver4")
    yield from driver.call_once(fiu.address, ACECmdLine("loadTemplates"))
    selectors_before = len(env.trace.filter(kind="notification-delivered"))
    sample = noisy_sample(
        identity.fingerprint_template, env.rng.np(f"scan4.{username}"), 0.05
    )
    yield from driver.call_once(fiu.address, ACECmdLine("scan", sample=sample))
    yield sim.timeout(2.0)
    listing = yield from client.call_once(
        wss_addr, ACECmdLine("listWorkspaces", user=username)
    )
    # John picks the secondary workspace on the selector GUI.
    viewer_before = len(env.trace.filter(kind="viewer-attached"))
    reply = yield from client.call_once(
        wss_addr,
        ACECmdLine("openWorkspace", user=username, name=f"{username}-work",
                   display=fiu.host.name),
    )
    deadline = sim.now + 30.0
    opened = False
    while sim.now < deadline:
        if len(env.trace.filter(kind="viewer-attached")) > viewer_before:
            opened = True
            break
        yield sim.timeout(0.1)
    del selectors_before
    return {
        "workspaces": list(listing.get("workspaces", ())),
        "opened_secondary": opened,
        "viewer_pid": reply.int("viewer_pid"),
    }


# ---------------------------------------------------------------------------
# Scenario 5 — ACE Services & Devices (§7.5)
# ---------------------------------------------------------------------------

def scenario_5_devices(env: ACEEnvironment, username: str = "john",
                       room: str = "hawk") -> Generator:
    """From his workspace John drives the room: the device GUI asks the
    RoomDB what's present, powers the projector, routes the workspace to
    it, sets camera picture-in-picture, and aims the camera at the podium."""
    sim = env.sim
    client = scenario_client(env, env.daemon(f"projector.{room}").host, f"gui.{username}")
    t0 = sim.now

    # The GUI discovers what is in the room.
    room_reply = yield from client.call_once(
        env.ctx.roomdb_address, ACECmdLine("lookupRoom", room=room)
    )
    services = [w.split("|")[0] for w in room_reply.get("services", ())]
    projector = env.daemon(f"projector.{room}")
    camera = env.daemon(f"camera.{room}")

    # Projector on; workspace to the screen; camera picture-in-picture.
    proj_conn = yield from client.connect(projector.address)
    yield from proj_conn.call(ACECmdLine("power", state="on"))
    yield from proj_conn.call(ACECmdLine("setInput", source="workspace"))
    yield from proj_conn.call(
        ACECmdLine("setPictureInPicture", source=f"stream:{camera.name}")
    )
    proj_conn.close()

    # Camera on; pan/tilt/zoom toward the podium.
    cam_conn = yield from client.connect(camera.address)
    yield from cam_conn.call(ACECmdLine("power", state="on"))
    aim = yield from cam_conn.call(ACECmdLine("setPosition", x=2.0, y=1.0, z=1.2))
    yield from cam_conn.call(ACECmdLine("setZoom", factor=4.0))
    cam_conn.close()

    return {
        "room_services": services,
        "projector_state": projector.device_state(),
        "camera_state": camera.device_state(),
        "pan": aim.float("pan"),
        "t_total": sim.now - t0,
    }


def run_full_story(env: Optional[ACEEnvironment] = None, seed: int = 0) -> Dict[str, dict]:
    """Scenarios 1–5 back to back on one environment (the paper's demo)."""
    env = env or standard_environment(seed=seed).boot()
    results: Dict[str, dict] = {}
    results["scenario1"] = env.run(scenario_1_new_user(env))
    results["scenario2"] = env.run(scenario_2_identification(env))
    results["scenario3"] = env.run(scenario_3_workspace_display(env))
    results["scenario4"] = env.run(scenario_4_multiple_workspaces(env))
    results["scenario5"] = env.run(scenario_5_devices(env))
    return results
