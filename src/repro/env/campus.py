"""A multi-region campus topology for population-scale runs (E29).

Four (by default) regions on distinct network segments:

* region 0 — the central machine room: the full infrastructure stack
  (``add_infrastructure`` on ``r0-infra``) including the authoritative
  ASD and AUD;
* regions 1..N-1 — satellite buildings: a regional
  :class:`~repro.services.asd.ServiceDirectoryDaemon` and a regional
  :class:`~repro.services.aud.UserDatabaseDaemon` on ``r<k>-infra``.
  Regional AUDs register (and keep renewing leases) with the *central*
  ASD, which is what gives a sharded run its organic cross-shard
  control-plane traffic.

Every region also gets one client host, ``r<k>-clients``, that the
population workload (:mod:`repro.workloads.population`) runs user
sessions from.

The module is shard-aware but shard-free by default: ``build_campus(None)``
yields an ordinary single-kernel environment, while the same function
used as a :class:`~repro.sim.parallel.ShardedSimulator` builder (with
:func:`campus_shard_map`) builds the identical topology in every shard.
Everything here is module-level and picklable on purpose.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.net.address import Address, WellKnownPorts
from repro.env.environment import (
    ACEEnvironment,
    _TIER_BOOTSTRAP,
    _TIER_DATABASE,
)
from repro.services.asd import ServiceDirectoryDaemon
from repro.services.aud import UserDatabaseDaemon


@dataclass(frozen=True)
class CampusRegion:
    """Addresses a workload needs to exercise one region."""

    index: int
    asd: Address        # regional directory (central ASD for region 0)
    aud: Address        # regional user database (central AUD for region 0)
    client_host: str    # host user sessions run from


def build_campus(
    shard=None,
    *,
    seed: int = 29,
    regions: int = 4,
    lease_duration: float = 15.0,
    trace: bool = True,
    client_monitors: bool = False,
) -> ACEEnvironment:
    """Build the campus; identical topology at every shard count.

    ``shard`` is a :class:`~repro.sim.parallel.ShardContext` (or ``None``
    for a plain single-kernel environment).  The region list is attached
    as ``env.campus_regions``.
    """
    if regions < 1:
        raise ValueError(f"need at least one region, got {regions}")
    env = ACEEnvironment(
        seed=seed, lease_duration=lease_duration, trace=trace, shard=shard
    )
    env.add_infrastructure(
        "r0-infra",
        room="machineroom",
        with_wss=False,
        with_idmon=False,
        srm_poll_interval=60.0,
    )
    region_infos: List[CampusRegion] = [
        CampusRegion(
            index=0,
            asd=Address("r0-infra", WellKnownPorts.ASD),
            aud=Address("r0-infra", WellKnownPorts.USER_DB),
            client_host="r0-clients",
        )
    ]
    env.add_workstation("r0-clients", segment="lan", monitors=client_monitors)
    for r in range(1, regions):
        segment = f"r{r}"
        infra = env.add_workstation(
            f"r{r}-infra", segment=segment, bogomips=1600.0, cores=2,
            monitors=False,
        )
        env.add_daemon(
            ServiceDirectoryDaemon(
                env.ctx, f"asd.r{r}", infra, port=WellKnownPorts.ASD,
            ),
            tier=_TIER_BOOTSTRAP,
        )
        env.add_daemon(
            UserDatabaseDaemon(
                env.ctx, f"aud.r{r}", infra, port=WellKnownPorts.USER_DB,
            ),
            tier=_TIER_DATABASE,
        )
        env.add_workstation(
            f"r{r}-clients", segment=segment, monitors=client_monitors
        )
        region_infos.append(
            CampusRegion(
                index=r,
                asd=Address(f"r{r}-infra", WellKnownPorts.ASD),
                aud=Address(f"r{r}-infra", WellKnownPorts.USER_DB),
                client_host=f"r{r}-clients",
            )
        )
    env.campus_regions = region_infos
    return env


def _campus_host_shard(host_name: str, n_regions: int, n_shards: int) -> int:
    """Region-contiguous placement: region ``r`` -> shard ``r*S // R``."""
    prefix = host_name.split("-", 1)[0]
    if not prefix.startswith("r"):
        raise ValueError(f"host {host_name!r} is not a campus host")
    region = int(prefix[1:])
    return region * n_shards // n_regions


def campus_shard_map(n_regions: int, n_shards: int) -> Callable[[str], int]:
    """A picklable host->shard map assigning whole regions to shards.

    With more shards than regions, the region-contiguous formula leaves
    some shards owning zero hosts.  That is a legal partition: an empty
    shard's lookahead row is all-``inf``, so under demand-driven sync
    (E30) it simply never receives a grant — whereas lockstep would
    null-broadcast to it every round.
    """
    return functools.partial(
        _campus_host_shard, n_regions=n_regions, n_shards=n_shards
    )


def campus_100k_profile(n_users: int = 100_000, duration: float = 6.0):
    """The 100k-user campus rung (E30): a memory-trimmed population.

    Turns on both population-scale switches — ``lazy_sessions`` (one
    pump process materializes session generators at their arrival times)
    and ``compact_sessions`` (xorshift per-user RNGs, histogram latency
    digest instead of raw samples) — and stretches think time so the
    event rate stays within a timed-benchmark budget.  Compact sessions
    draw from a different generator family, so this profile is for
    capacity runs, not for trace-equivalence comparisons against the
    standard profiles.
    """
    from repro.workloads.population import PopulationProfile

    return PopulationProfile(
        n_users=n_users,
        duration=duration,
        process="mmpp",
        think_time=2.0,
        lazy_sessions=True,
        compact_sessions=True,
    )
