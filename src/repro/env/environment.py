"""The ACE environment builder.

Composes everything the scenarios, examples, and benchmarks need::

    env = ACEEnvironment(seed=1)
    env.add_infrastructure()                       # ASD/RoomDB/... on "infra"
    env.add_room("hawk", building="nichols", dims=(10, 8, 3))
    bar = env.add_workstation("bar", room="hawk")  # host + HRM + HAL
    env.add_device(VCC4CameraDaemon, "camera.hawk", bar, room="hawk")
    env.boot()                                     # start in dependency order

Daemon start order follows the boot dependencies of Fig. 9: the ASD,
RoomDB, and NetLogger come up first, then databases, then monitors and
launchers, then everything else.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Generator, List, Optional, Tuple, Type

from repro.net import Address, Host, Network
from repro.net.address import WellKnownPorts
from repro.security.crypto import CertificateAuthority, KeyPair
from repro.security.keynote import Assertion
from repro.sim import RngRegistry, Simulator, TraceRecorder

from repro.apps.factories import build_registry
from repro.apps.runner import AppRegistry
from repro.core.client import ServiceClient
from repro.core.context import DaemonContext, SecurityMode
from repro.core.daemon import ACEDaemon
from repro.env.users import UserIdentity
from repro.services.asd import DirectoryWatcherDaemon, ServiceDirectoryDaemon
from repro.services.aud import UserDatabaseDaemon
from repro.services.authdb import AuthorizationDatabaseDaemon
from repro.services.fiu import FingerprintUnitDaemon, make_template
from repro.services.hal import HostApplicationLauncherDaemon
from repro.services.hrm import HostResourceMonitorDaemon
from repro.services.ibutton import IButtonReaderDaemon
from repro.services.idmon import IDMonitorDaemon
from repro.services.netlogger import NetworkLoggerDaemon
from repro.services.roomdb import RoomDatabaseDaemon
from repro.services.sal import SystemApplicationLauncherDaemon
from repro.services.srm import SystemResourceMonitorDaemon
from repro.services.wss import WorkspaceServerDaemon

#: boot tiers: daemons start tier by tier (Fig. 9 dependencies)
_TIER_BOOTSTRAP = 0   # ASD, RoomDB, NetLogger
_TIER_DATABASE = 1    # AuthDB, AUD
_TIER_MONITOR = 2     # HRMs, HALs
_TIER_SYSTEM = 3      # SRM, SAL, WSS, IDMon
_TIER_SERVICE = 4     # devices and everything else


class ACEEnvironment:
    """One complete simulated ACE installation."""

    def __init__(
        self,
        seed: int = 0,
        *,
        security: SecurityMode = SecurityMode.NONE,
        lease_duration: float = 30.0,
        trace: bool = True,
        net_kwargs: Optional[dict] = None,
        obs_export: bool = False,
        obs_export_kwargs: Optional[dict] = None,
        shard=None,
    ):
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        self.trace = TraceRecorder(enabled=trace)
        #: :class:`~repro.sim.parallel.ShardContext` when this environment
        #: is one shard of a sharded run (None = ordinary single kernel)
        self.shard = shard
        if shard is not None and shard.n_shards > 1:
            from repro.net.boundary import BoundaryNetwork

            self.net = BoundaryNetwork(
                self.sim, self.rng, self.trace, shard=shard,
                **(net_kwargs or {}),
            )
        else:
            self.net = Network(self.sim, self.rng, self.trace, **(net_kwargs or {}))
        self.ctx = DaemonContext(
            sim=self.sim, net=self.net, rng=self.rng, trace=self.trace,
            lease_duration=lease_duration,
        )
        self.ctx.security.mode = security
        if security is not SecurityMode.NONE:
            self.ctx.security.ca = CertificateAuthority(self.rng.py("env.ca"))
        self.registry: AppRegistry = build_registry(self.ctx)
        self.daemons: Dict[str, ACEDaemon] = {}
        self._tiers: Dict[str, int] = {}
        self.users: Dict[str, UserIdentity] = {}
        self.rooms: List[Tuple[str, str, Tuple[float, float, float]]] = []
        self._booted = False
        self._admin_keypair: Optional[KeyPair] = None
        #: persistent-store topology (replica-groups + consistent-hash map)
        self._store_groups: List[List[ACEDaemon]] = []
        self._store_shard_map = None
        #: monotonic naming serial for store groups — hosts outlive a
        #: drained group, so re-added groups need fresh host names
        self._store_group_serial = 0
        #: SupervisorDaemon kwargs once enable_supervision() ran (None =
        #: supervision off); late-added hosts get supervisors from these
        self._supervision_kwargs: Optional[dict] = None
        #: ship finished spans + metric snapshots to the NetLogger at boot
        self._obs_export = obs_export
        self._obs_export_kwargs = dict(obs_export_kwargs or {})
        self.exporter = None

    @property
    def obs(self):
        """The environment's observability hub (tracer + metrics)."""
        return self.ctx.obs

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_host(self, name: str, **kwargs) -> Host:
        return self.net.make_host(name, **kwargs)

    def add_workstation(
        self, name: str, *, room: str = "", segment: str = "lan",
        bogomips: float = 800.0, cores: int = 1, monitors: bool = True, **kwargs,
    ) -> Host:
        """A host with the per-host services (HRM + HAL) pre-attached."""
        host = self.net.make_host(
            name, room=room, segment=segment, bogomips=bogomips, cores=cores, **kwargs
        )
        if monitors:
            self.add_daemon(
                HostResourceMonitorDaemon(self.ctx, f"hrm.{name}", host, room=room),
                tier=_TIER_MONITOR,
            )
            self.add_daemon(
                HostApplicationLauncherDaemon(
                    self.ctx, f"hal.{name}", host, room=room, registry=self.registry
                ),
                tier=_TIER_MONITOR,
            )
        return host

    def add_room(self, name: str, building: str = "", dims: Tuple[float, float, float] = (0, 0, 0)) -> None:
        self.rooms.append((name, building, tuple(float(v) for v in dims)))

    # ------------------------------------------------------------------
    # Daemons
    # ------------------------------------------------------------------
    def add_daemon(self, daemon: ACEDaemon, tier: int = _TIER_SERVICE) -> ACEDaemon:
        if self.shard is not None and not self.shard.owns(daemon.host.name):
            # Ghost daemon: constructed (so construction-time RNG draws and
            # host state match every shard) but never registered or started
            # — its live twin runs in the shard owning this host.
            return daemon
        if daemon.name in self.daemons:
            raise ValueError(f"duplicate daemon name {daemon.name!r}")
        self.daemons[daemon.name] = daemon
        self._tiers[daemon.name] = tier
        if self._booted:
            daemon.start()
        return daemon

    def add_device(self, daemon_class: Type[ACEDaemon], name: str, host: Host,
                   room: str = "", **kwargs) -> ACEDaemon:
        return self.add_daemon(
            daemon_class(self.ctx, name, host, room=room or host.room, **kwargs)
        )

    def add_infrastructure(
        self,
        host_name: str = "infra",
        *,
        room: str = "machineroom",
        bogomips: float = 1600.0,
        cores: int = 2,
        with_wss: bool = True,
        with_idmon: bool = True,
        sal_placement: str = "srm",
        srm_poll_interval: float = 5.0,
        asd_replicas: int = 1,
        asd_sync_interval: float = 5.0,
    ) -> Host:
        """The standard service stack on one (beefier) machine.

        With ``asd_replicas > 1`` the directory becomes a replica group
        (§5.3): extra ``ServiceDirectoryDaemon``\\ s on their own hosts,
        leader-forwarded writes, anti-entropy sync, and every client
        failing over across ``ctx.asd_addresses``.
        """
        host = self.add_workstation(
            host_name, room=room, bogomips=bogomips, cores=cores
        )
        self.ctx.default_bootstrap(host_name)
        directory = [
            self.add_daemon(
                ServiceDirectoryDaemon(
                    self.ctx, "asd", host, port=WellKnownPorts.ASD, room=room,
                    sync_interval=asd_sync_interval,
                ),
                tier=_TIER_BOOTSTRAP,
            )
        ]
        for i in range(1, asd_replicas):
            replica_host = self.add_workstation(
                f"{host_name}-asd{i + 1}", room=room,
                bogomips=bogomips, cores=cores, monitors=False,
            )
            directory.append(
                self.add_daemon(
                    ServiceDirectoryDaemon(
                        self.ctx, f"asd{i + 1}", replica_host,
                        port=WellKnownPorts.ASD, room=room,
                        sync_interval=asd_sync_interval,
                    ),
                    tier=_TIER_BOOTSTRAP,
                )
            )
        if len(directory) > 1:
            addresses = [d.address for d in directory]
            self.ctx.asd_addresses = addresses
            for daemon in directory:
                daemon.set_group(addresses)
        self.add_daemon(
            RoomDatabaseDaemon(self.ctx, "roomdb", host, port=WellKnownPorts.ROOM_DB, room=room),
            tier=_TIER_BOOTSTRAP,
        )
        self.add_daemon(
            NetworkLoggerDaemon(self.ctx, "netlogger", host, port=WellKnownPorts.NET_LOGGER, room=room),
            tier=_TIER_BOOTSTRAP,
        )
        self.add_daemon(
            AuthorizationDatabaseDaemon(self.ctx, "authdb", host, port=WellKnownPorts.AUTH_DB, room=room),
            tier=_TIER_DATABASE,
        )
        self.add_daemon(
            UserDatabaseDaemon(self.ctx, "aud", host, port=WellKnownPorts.USER_DB, room=room),
            tier=_TIER_DATABASE,
        )
        self.add_daemon(
            SystemResourceMonitorDaemon(self.ctx, "srm", host, room=room,
                                        poll_interval=srm_poll_interval),
            tier=_TIER_SYSTEM,
        )
        self.add_daemon(
            SystemApplicationLauncherDaemon(self.ctx, "sal", host, room=room,
                                            placement=sal_placement),
            tier=_TIER_SYSTEM,
        )
        if with_wss:
            self.add_daemon(
                WorkspaceServerDaemon(self.ctx, "wss", host, room=room),
                tier=_TIER_SYSTEM,
            )
        if with_idmon:
            self.add_daemon(
                IDMonitorDaemon(self.ctx, "idmon", host, room=room),
                tier=_TIER_SYSTEM,
            )
        return host

    def enable_supervision(
        self,
        *,
        suspicion_window: Optional[float] = None,
        check_interval: float = 0.5,
        checkpoint_interval: float = 2.0,
        checkpoint_to_store: bool = True,
        negative_ttl: float = 0.5,
        idempotent_retries: bool = True,
        include: Optional[List[str]] = None,
        exclude: Tuple[str, ...] = (),
    ) -> Dict[str, "object"]:
        """Turn on the self-healing supervision plane (E26).

        Creates one :class:`~repro.recovery.SupervisorDaemon` per host
        that runs daemons, watches every daemon on it (the directory
        replicas and watcher are exempt — they *are* the heartbeat
        substrate), switches clients to idempotent retry stamping, and
        configures negative lookup caching so clients chasing a dead name
        back off during the recovery window.

        ``include`` restricts supervision to the named daemons;
        ``exclude`` exempts names.  Returns host name -> supervisor.
        """
        from repro.recovery import SupervisorDaemon

        self.ctx.idempotent_retries = idempotent_retries
        if negative_ttl > 0 and self.ctx.lookup_cache is not None:
            self.ctx.lookup_cache.negative_ttl = negative_ttl
        self._supervision_kwargs = {
            "suspicion_window": suspicion_window,
            "check_interval": check_interval,
            "checkpoint_interval": checkpoint_interval,
            "checkpoint_to_store": checkpoint_to_store,
        }
        exempt = set(exclude) | {"dirwatch"}
        supervisors: Dict[str, SupervisorDaemon] = {}
        for name, daemon in self.daemons.items():
            if name in exempt:
                continue
            if include is not None and name not in include:
                continue
            if isinstance(daemon, (ServiceDirectoryDaemon, DirectoryWatcherDaemon)):
                continue
            supervisor = self.ctx.supervisors.get(daemon.host.name)
            if supervisor is None:
                supervisor = SupervisorDaemon(
                    self.ctx, daemon.host,
                    suspicion_window=suspicion_window,
                    check_interval=check_interval,
                    checkpoint_interval=checkpoint_interval,
                    checkpoint_to_store=checkpoint_to_store,
                )
                supervisor.on_restart(self._adopt_restart)
            supervisor.watch(daemon)
            supervisors[daemon.host.name] = supervisor
        for supervisor in supervisors.values():
            supervisor.start()
        return supervisors

    def enable_telemetry(
        self,
        *,
        interval: float = 1.0,
        jitter: float = 0.2,
        slos=None,
        aggregator_host=None,
        port: Optional[int] = None,
    ) -> "ACEDaemon":
        """Turn on the E27 cluster telemetry plane.

        Adds one :class:`~repro.obs.cluster.TelemetryAggregatorDaemon`
        (well-known telemetry port, ASD-registered, supervisable like any
        daemon) plus one per-host
        :class:`~repro.obs.cluster.TelemetryPublisherDaemon` that
        delta-pushes the host's metric scopes every ``interval`` seconds
        (jittered).  ``slos`` defaults to
        :func:`~repro.obs.cluster.default_slos` scaled to the interval.
        Returns the aggregator.  When telemetry stays off, none of this
        exists and the wire is byte-identical to pre-E27 traffic.
        """
        from repro.net.address import WellKnownPorts
        from repro.obs.cluster import (
            TelemetryAggregatorDaemon,
            TelemetryPublisherDaemon,
            default_slos,
        )
        from repro.obs.cluster.snapshot import BREAKER_LEVELS

        if "telemetry" in self.daemons:
            return self.daemons["telemetry"]
        if aggregator_host is None:
            if "asd" in self.daemons:
                aggregator_host = self.daemons["asd"].host
            else:
                aggregator_host = self.net.host(sorted(self.net.hosts)[0])
        aggregator = TelemetryAggregatorDaemon(
            self.ctx, "telemetry", aggregator_host,
            port=port if port is not None else WellKnownPorts.TELEMETRY,
            interval=interval,
            slos=tuple(slos) if slos is not None else default_slos(interval),
        )
        self.add_daemon(aggregator, tier=_TIER_DATABASE)
        self.ctx.telemetry_address = aggregator.address
        self._supervise_if_enabled(aggregator)

        # The RPC plane's scope: breakers + RpcStats + client latency
        # histogram don't live under one registry prefix, so a provider
        # assembles them (published from the aggregator's host).
        resilience = self.ctx.resilience
        metrics = self.ctx.obs.metrics

        def rpc_provider():
            counters, gauges, histograms = metrics.export_scope("rpc.")
            counters.update(resilience.stats.snapshot())
            for address, state in resilience.breaker_states().items():
                gauges[f"breaker.{address}"] = float(BREAKER_LEVELS.get(state, 0))
            return counters, gauges, histograms

        self.ctx.obs.register_scope(
            "rpc", "rpc:0", aggregator_host.name, provider=rpc_provider
        )

        # One publisher per host that runs daemons (including the
        # aggregator's own host — it is just another daemon to watch).
        hosts = {d.host.name: d.host for d in self.daemons.values()}
        for host_name in sorted(hosts):
            pub_name = f"telem.{host_name}"
            if pub_name in self.daemons:
                continue
            publisher = TelemetryPublisherDaemon(
                self.ctx, pub_name, hosts[host_name],
                interval=interval, jitter=jitter,
            )
            self.add_daemon(publisher, tier=_TIER_DATABASE)
            self._supervise_if_enabled(publisher)

        def topology():
            info = {
                "store_groups": [
                    [d.name for d in group] for group in self._store_groups
                ],
                "supervisors": {
                    host_name: supervisor.snapshot()
                    for host_name, supervisor in sorted(self.ctx.supervisors.items())
                },
            }
            if self._store_shard_map is not None:
                info["shard_map"] = {
                    "groups": self._store_shard_map.groups,
                    "epoch": self._store_shard_map.epoch,
                }
            return info

        aggregator.topology_provider = topology
        return aggregator

    def _supervise_if_enabled(self, daemon: ACEDaemon) -> None:
        """Enroll a late-added daemon with its host's supervisor, when the
        supervision plane is already on (telemetry daemons are ordinary
        wards — the aggregator's state is soft, so restart is enough).
        Hosts minted after ``enable_supervision()`` — autoscaled store
        groups, ASD replicas — get a fresh supervisor on the spot."""
        supervisor = self.ctx.supervisors.get(daemon.host.name)
        if supervisor is None:
            if self._supervision_kwargs is None:
                return
            if isinstance(daemon, (ServiceDirectoryDaemon, DirectoryWatcherDaemon)):
                return
            from repro.recovery import SupervisorDaemon

            supervisor = SupervisorDaemon(
                self.ctx, daemon.host, **self._supervision_kwargs
            )
            supervisor.on_restart(self._adopt_restart)
            supervisor.watch(daemon)
            supervisor.start()
            return
        supervisor.watch(daemon)

    def _adopt_restart(self, old: ACEDaemon, new: ACEDaemon) -> None:
        """Supervisor restart hook: swap the reincarnation into every
        environment-level index that held the corpse."""
        if self.daemons.get(old.name) is old:
            self.daemons[old.name] = new
        for group in self._store_groups:
            for i, daemon in enumerate(group):
                if daemon is old:
                    group[i] = new

    def add_directory_watcher(self, host: Optional[Host] = None) -> ACEDaemon:
        """The cache-invalidation listener: subscribes to the directory
        group's register/deregister notifications and purges the shared
        :class:`~repro.core.lookup_cache.LookupCache` entries they touch."""
        if host is None:
            host = self.daemons["asd"].host
        return self.add_daemon(
            DirectoryWatcherDaemon(self.ctx, "dirwatch", host, room=host.room),
            tier=_TIER_DATABASE,
        )

    def add_persistent_store(
        self, replicas: int = 3, *, groups: int = 1, host_prefix: str = "store",
        sync_interval: float = 5.0, bogomips: float = 1200.0, **store_kwargs,
    ) -> List[ACEDaemon]:
        """Fig. 17: a cluster of redundant store servers on separate hosts.

        With ``groups > 1`` the namespace is consistent-hash sharded across
        that many replica-groups of ``replicas`` servers each; every daemon
        (and every :meth:`store_client`) shares one
        :class:`~repro.store.sharding.ShardMap` so keys route locally."""
        from repro.store.server import PersistentStoreDaemon
        from repro.store.sharding import ShardMap

        shard_map = ShardMap(groups) if groups > 1 else None
        self._store_shard_map = shard_map
        self._store_groups = []
        daemons: List[ACEDaemon] = []
        for g in range(groups):
            group_daemons: List[ACEDaemon] = []
            for i in range(replicas):
                if groups == 1:
                    host_name, daemon_name = f"{host_prefix}{i + 1}", f"ps{i + 1}"
                else:
                    host_name = f"{host_prefix}{g + 1}-{i + 1}"
                    daemon_name = f"ps{g + 1}-{i + 1}"
                host = self.add_workstation(
                    host_name, room="machineroom",
                    bogomips=bogomips, monitors=False,
                )
                daemon = PersistentStoreDaemon(
                    self.ctx, daemon_name, host,
                    port=WellKnownPorts.PERSISTENT_STORE + g * replicas + i,
                    room="machineroom", sync_interval=sync_interval,
                    shard_map=shard_map, group_index=g, **store_kwargs,
                )
                self.add_daemon(daemon, tier=_TIER_DATABASE)
                group_daemons.append(daemon)
                daemons.append(daemon)
            addresses = [d.address for d in group_daemons]
            for daemon in group_daemons:
                daemon.set_peers(addresses)
            self._store_groups.append(group_daemons)
        self._store_group_serial = groups
        self._refresh_store_topology()
        return daemons

    def _store_group_addresses(self) -> Dict[int, List[Address]]:
        return {
            g: [d.address for d in grp]
            for g, grp in enumerate(self._store_groups)
        }

    def _refresh_store_topology(self) -> None:
        """Recompute ctx.store_addresses + every daemon's group map."""
        group_addresses = self._store_group_addresses()
        self.ctx.store_addresses = sorted(
            (a for addrs in group_addresses.values() for a in addrs), key=str
        )
        for grp in self._store_groups:
            for daemon in grp:
                daemon.group_addresses = dict(group_addresses)

    def add_store_group(
        self, replicas: Optional[int] = None, *, host_prefix: str = "store",
        sync_interval: float = 5.0, bogomips: float = 1200.0, **store_kwargs,
    ) -> List[ACEDaemon]:
        """Grow the sharded store by one replica-group: a new ShardMap epoch
        is installed everywhere and existing groups stream the objects they
        no longer own to the new group (the rebalance path)."""
        from repro.store.server import PersistentStoreDaemon
        from repro.store.sharding import ShardMap

        if not self._store_groups:
            raise RuntimeError("add_persistent_store() first")
        old_map = self._store_shard_map or ShardMap(1)
        new_map = old_map.grown()
        g = len(self._store_groups)
        # Name by serial, not group index: a drained group's hosts stay in
        # the network, so index-based names would collide on re-add.  With
        # no drains the serial equals the index and names are unchanged.
        serial = self._store_group_serial
        self._store_group_serial += 1
        if replicas is None:
            replicas = len(self._store_groups[0])
        group_daemons: List[ACEDaemon] = []
        for i in range(replicas):
            host = self.add_workstation(
                f"{host_prefix}{serial + 1}-{i + 1}", room="machineroom",
                bogomips=bogomips, monitors=False,
            )
            daemon = PersistentStoreDaemon(
                self.ctx, f"ps{serial + 1}-{i + 1}", host,
                port=WellKnownPorts.PERSISTENT_STORE + serial * replicas + i,
                room="machineroom", sync_interval=sync_interval,
                shard_map=new_map, group_index=g, **store_kwargs,
            )
            self.add_daemon(daemon, tier=_TIER_DATABASE)
            group_daemons.append(daemon)
        addresses = [d.address for d in group_daemons]
        for daemon in group_daemons:
            daemon.set_peers(addresses)
        self._store_groups.append(group_daemons)
        self._store_shard_map = new_map
        self._refresh_store_topology()
        group_addresses = self._store_group_addresses()
        for grp in self._store_groups[:-1]:
            for daemon in grp:
                daemon.install_shard_map(new_map, group_addresses)
        for daemon in group_daemons:
            self._supervise_if_enabled(daemon)
            self._publish_host_if_telemetry(daemon.host)
        return group_daemons

    def drain_store_group(self, *, grace: float = 5.0):
        """Shrink the sharded store by its newest replica-group (the E28
        scale-down path, the mirror of :meth:`add_store_group`).

        The surviving groups adopt the shrunk map first, then the
        departing group does — its rebalance streams *everything* it
        holds to the new owners, while writes that still land on it
        (stale clients, in-flight commands) ride the misroute-forward
        path and never apply locally.  After the handoff the departing
        daemons stay up for ``grace`` seconds as pure forwarders, so
        straggler clients still holding the old map drain off before the
        sockets close.  Returns the drain process, which completes after
        the grace window when the drained daemons are stopped and
        removed from the environment."""
        if len(self._store_groups) <= 1:
            raise RuntimeError("cannot drain the last store group")
        if self._store_shard_map is None:
            raise RuntimeError("store is not sharded")
        new_map = self._store_shard_map.shrunk()
        drained = self._store_groups[-1]
        self._store_groups = self._store_groups[:-1]
        self._store_shard_map = new_map
        # New clients (and topology-provider clients) route away from the
        # drained group from this instant.
        self._refresh_store_topology()
        group_addresses = self._store_group_addresses()
        for grp in self._store_groups:
            for daemon in grp:
                daemon.install_shard_map(new_map, group_addresses)
        handoffs = [
            daemon.install_shard_map(new_map, group_addresses)
            for daemon in drained
        ]

        def _finish() -> Generator:
            yield self.sim.all_of(handoffs)
            if grace > 0:
                yield self.sim.timeout(grace)
            for daemon in drained:
                supervisor = self.ctx.supervisors.get(daemon.host.name)
                if supervisor is not None:
                    supervisor.unwatch(daemon.name)
                self.ctx.obs.telemetry_scopes.pop(
                    (daemon.name, f"{daemon.host.name}:{daemon.port}"), None
                )
                if daemon.running:
                    yield daemon.stop()
                self.daemons.pop(daemon.name, None)
                self._tiers.pop(daemon.name, None)
            self.trace.emit(
                self.sim.now, "env", "store-group-drained",
                groups=new_map.groups, epoch=new_map.epoch,
            )

        return self.sim.process(_finish(), name="store-drain")

    def store_client(self, host: Host, principal: str = "store-client", **kwargs):
        from repro.store.client import StoreClient

        if self._store_shard_map is not None and self._store_groups:
            kwargs.setdefault("shard_map", self._store_shard_map)
            kwargs.setdefault(
                "groups", [[d.address for d in grp] for grp in self._store_groups]
            )
        if self._store_groups:
            # Follow autoscaling topology changes (grown/drained groups)
            # instead of routing on the map frozen at construction.  Also
            # attached to clients of a store that is *not yet* sharded, so
            # they pick up the shard map the moment the controller grows
            # the single seed group.
            kwargs.setdefault("topology_provider", lambda: (
                self._store_shard_map,
                [[d.address for d in grp] for grp in self._store_groups],
            ))
        replicas = sorted(
            (d.address for d in self.daemons.values()
             if type(d).__name__ == "PersistentStoreDaemon"),
            key=str,
        )
        return StoreClient(self.ctx, host, replicas, principal=principal, **kwargs)

    # ------------------------------------------------------------------
    # Directory scale knobs (E28)
    # ------------------------------------------------------------------
    def _directory_daemons(self) -> List[ServiceDirectoryDaemon]:
        return [
            d for d in self.daemons.values()
            if isinstance(d, ServiceDirectoryDaemon)
        ]

    def add_asd_replica(self) -> ACEDaemon:
        """Grow the directory group by one replica on its own host.

        The newcomer is constructed *with* the group, so its anti-entropy
        loop spawns at start and pulls the primary's records; existing
        members learn the widened group and start pushing dirReplicate
        to it on every write."""
        primary = self.daemons.get("asd")
        if primary is None:
            raise RuntimeError("add_infrastructure() first")
        existing = self._directory_daemons()
        index = 1 + max(
            (int(d.name[3:]) for d in existing if d.name[3:].isdigit()),
            default=1,
        )
        host_name = f"{primary.host.name}-asd{index}"
        if host_name in self.net.hosts:
            # A previously-retired replica's machine: re-add the daemon to
            # it instead of minting a colliding host.
            host = self.net.host(host_name)
        else:
            host = self.add_workstation(
                host_name, room=primary.room,
                bogomips=primary.host.bogomips, cores=primary.host.cores,
                monitors=False,
            )
        addresses = self.ctx.directory_addresses() or [primary.address]
        new_group = addresses + [Address(host.name, WellKnownPorts.ASD)]
        replica = ServiceDirectoryDaemon(
            self.ctx, f"asd{index}", host, port=WellKnownPorts.ASD,
            room=primary.room, sync_interval=primary.sync_interval,
            group=new_group,
        )
        self.ctx.asd_addresses = list(new_group)
        for daemon in existing:
            daemon.set_group(new_group)
        self.add_daemon(replica, tier=_TIER_BOOTSTRAP)
        self._publish_host_if_telemetry(host)
        self.trace.emit(
            self.sim.now, "env", "asd-replica-added",
            name=replica.name, replicas=len(new_group),
        )
        return replica

    def retire_asd_replica(self, name: Optional[str] = None) -> ACEDaemon:
        """Shrink the directory group by one follower (never the leader).

        The survivors drop the retiree from their group first — writes
        stop replicating to it — then it deregisters and stops.  Clients
        fail over across ``ctx.asd_addresses``, so shrinking the list is
        all they need."""
        addresses = self.ctx.directory_addresses()
        if len(addresses) <= 1:
            raise RuntimeError("no follower replica to retire")
        by_address = {d.address: d for d in self._directory_daemons()}
        if name is None:
            victim = by_address[addresses[-1]]
        else:
            victim = self.daemons[name]
        if victim.address == addresses[0]:
            raise ValueError("cannot retire the directory leader")
        new_group = [a for a in addresses if a != victim.address]
        self.ctx.asd_addresses = list(new_group)
        for daemon in self._directory_daemons():
            if daemon is not victim:
                daemon.set_group(new_group)
        self.ctx.obs.telemetry_scopes.pop(
            (victim.name, f"{victim.host.name}:{victim.port}"), None
        )
        if victim.running:
            victim.stop()
        self.daemons.pop(victim.name, None)
        self._tiers.pop(victim.name, None)
        self.trace.emit(
            self.sim.now, "env", "asd-replica-retired",
            name=victim.name, replicas=len(new_group),
        )
        return victim

    def resize_connection_pools(self, max_idle_per_address: int) -> int:
        """Retarget every live connection pool's idle cap (plus the
        default new pools inherit); returns how many pools changed."""
        if max_idle_per_address < 1:
            raise ValueError("pool size must be >= 1")
        self.ctx.pool_max_idle = max_idle_per_address
        resized = 0
        for pool in list(self.ctx._connection_pools):
            if pool.max_idle_per_address != max_idle_per_address:
                pool.resize(max_idle_per_address)
                resized += 1
        return resized

    def _publish_host_if_telemetry(self, host: Host) -> None:
        """Hosts added after ``enable_telemetry()`` (autoscaled store
        groups, ASD replicas) get their publisher here."""
        if "telemetry" not in self.daemons:
            return
        pub_name = f"telem.{host.name}"
        if pub_name in self.daemons:
            return
        from repro.obs.cluster import TelemetryPublisherDaemon

        aggregator = self.daemons["telemetry"]
        publisher = TelemetryPublisherDaemon(
            self.ctx, pub_name, host, interval=aggregator.interval,
        )
        self.add_daemon(publisher, tier=_TIER_DATABASE)
        self._supervise_if_enabled(publisher)

    # ------------------------------------------------------------------
    # Closed-loop autoscaling (E28)
    # ------------------------------------------------------------------
    def enable_autoscaling(
        self,
        *,
        interval: float = 1.0,
        rules=None,
        host: Optional[Host] = None,
        latency_service: str = "",
        max_store_groups: int = 4,
        max_asd_replicas: int = 3,
        max_pool: int = 16,
        **daemon_kwargs,
    ) -> ACEDaemon:
        """Turn on the E28 closed-loop control plane.

        Requires telemetry (enabled on demand).  Builds one
        :class:`~repro.control.AutoscalerDaemon` wired to this
        environment's scale knobs — store groups
        (:meth:`add_store_group` / :meth:`drain_store_group`), directory
        replicas (:meth:`add_asd_replica` / :meth:`retire_asd_replica`),
        and connection-pool sizing (:meth:`resize_connection_pools`) —
        and registers it like any daemon: ASD-discoverable, traced, and
        supervised when the recovery plane is on.  ``rules`` defaults to
        :func:`~repro.control.default_rules` scaled to the interval."""
        from repro.control import (
            Actuator,
            AutoscalerDaemon,
            SignalReader,
            default_rules,
        )

        if "autoscaler" in self.daemons:
            return self.daemons["autoscaler"]
        aggregator = self.enable_telemetry(interval=interval)
        if host is None:
            host = aggregator.host

        actuators: Dict[str, Actuator] = {}
        if self._store_groups:
            actuators["store_groups"] = Actuator(
                "store_groups",
                level=lambda: len(self._store_groups),
                scale=lambda decision: (
                    self.add_store_group() if decision.direction > 0
                    else self.drain_store_group()
                ),
            )
        if "asd" in self.daemons:
            actuators["asd_replicas"] = Actuator(
                "asd_replicas",
                level=lambda: max(1, len(self.ctx.directory_addresses())),
                scale=lambda decision: (
                    self.add_asd_replica() if decision.direction > 0
                    else self.retire_asd_replica()
                ),
            )
        actuators["pool_size"] = Actuator(
            "pool_size",
            level=lambda: self.ctx.pool_max_idle,
            scale=lambda decision: self.resize_connection_pools(
                decision.to_level
            ),
        )
        if rules is None:
            rules = default_rules(
                interval=interval, max_store_groups=max_store_groups,
                max_asd_replicas=max_asd_replicas, max_pool=max_pool,
            )
        rules = tuple(r for r in rules if r.resource in actuators)
        reader = SignalReader(
            lambda: self.daemons["telemetry"],
            lambda: {
                resource: actuator.level()
                for resource, actuator in actuators.items()
            },
            latency_service=latency_service,
        )
        daemon = AutoscalerDaemon(
            self.ctx, "autoscaler", host, interval=interval, rules=rules,
            reader=reader.read, actuators=actuators, **daemon_kwargs,
        )
        self.add_daemon(daemon, tier=_TIER_DATABASE)
        self._supervise_if_enabled(daemon)
        return daemon

    def add_id_devices(self, host: Host, room: str = "") -> Tuple[ACEDaemon, ACEDaemon]:
        """A fingerprint scanner + iButton reader at an access point."""
        room = room or host.room
        fiu = self.add_device(FingerprintUnitDaemon, f"fiu.{host.name}", host, room=room)
        reader = self.add_device(IButtonReaderDaemon, f"ibutton.{host.name}", host, room=room)
        return fiu, reader

    # ------------------------------------------------------------------
    # Users & policy
    # ------------------------------------------------------------------
    def create_identity(self, username: str, fullname: str = "", password: str = "secret") -> UserIdentity:
        """Mint enrollment material (not yet registered with the AUD)."""
        template = make_template(self.rng.np(f"user.{username}.fingerprint"))
        serial = "ib-%010x" % self.rng.py(f"user.{username}.ibutton").getrandbits(40)
        keypair = None
        if self.ctx.security.mode is not SecurityMode.NONE:
            keypair = KeyPair.generate(self.rng.py(f"user.{username}.key"))
            self.ctx.security.register_principal(keypair.principal(), keypair.public)
        identity = UserIdentity(
            username=username, fullname=fullname, password=password,
            fingerprint_template=template, ibutton_serial=serial, keypair=keypair,
        )
        self.users[username] = identity
        return identity

    def register_user_direct(self, identity: UserIdentity) -> None:
        """Fast path: insert into the AUD without the wire (boot-time setup).
        Scenario 1 shows the over-the-wire admin flow instead."""
        from repro.services.aud import UserRecord

        aud = self.daemons.get("aud")
        if aud is None:
            raise RuntimeError("add_infrastructure() first")
        aud.users[identity.username] = UserRecord(
            username=identity.username,
            fullname=identity.fullname,
            password_hash=aud.hash_password(identity.password),
            ibutton_serial=identity.ibutton_serial,
            fingerprint_template=identity.fingerprint_template,
            public_key=identity.keypair.public if identity.keypair else 0,
        )

    def admin_keypair(self) -> KeyPair:
        """The installation administrator's signing key (lazy, with a
        POLICY assertion trusting it)."""
        if self._admin_keypair is None:
            self._admin_keypair = KeyPair.generate(self.rng.py("env.admin"))
            self.ctx.security.register_principal(
                self._admin_keypair.principal(), self._admin_keypair.public
            )
            self.ctx.security.policies.append(
                Assertion("POLICY", f'"{self._admin_keypair.principal()}"',
                          'app_domain == "ace"')
            )
        return self._admin_keypair

    def trust_all_services(self) -> None:
        """Policy: every service principal may command every service.

        Installed automatically at boot in SSL_KEYNOTE mode — inter-daemon
        calls (notifications, SAL→HAL, ...) must flow."""
        principals = [
            d.keypair.principal() for d in self.daemons.values() if d.keypair is not None
        ]
        if principals:
            licensees = " || ".join(f'"{p}"' for p in principals)
            self.ctx.security.policies.append(
                Assertion("POLICY", licensees, 'app_domain == "ace"')
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def boot(self, settle: float = 2.0) -> "ACEEnvironment":
        """Start all daemons tier by tier and let registrations settle."""
        if self._booted:
            raise RuntimeError("environment already booted")
        self._booted = True
        if self.ctx.security.mode is SecurityMode.SSL_KEYNOTE:
            self.trust_all_services()
        for tier in range(_TIER_SERVICE + 1):
            for name, daemon in self.daemons.items():
                if self._tiers[name] == tier:
                    daemon.start()
            self.sim.run(until=self.sim.now + settle / 4)
            if tier == _TIER_BOOTSTRAP and self.rooms and "roomdb" in self.daemons:
                # Administrative room setup happens right after the RoomDB
                # is up, before any room-aware daemon starts.
                self.sim.run_process(self._register_rooms(), timeout=30.0)
        self.sim.run(until=self.sim.now + settle)
        if self._obs_export and "netlogger" in self.daemons:
            from repro.obs import NetLoggerExporter

            self.exporter = NetLoggerExporter(
                self.ctx, self.daemons["netlogger"].host, **self._obs_export_kwargs
            )
            self.exporter.start()
        return self

    def boot_async(self, settle: float = 2.0) -> Generator:
        """Generator-form boot, for sharded runs (E29).

        Same tiered sequence as :meth:`boot`, expressed as a kernel
        process because a shard may not free-run its own clock — the
        :class:`~repro.sim.parallel.ShardedSimulator` coordinator owns
        time.  Two deliberate differences from :meth:`boot`:

        * daemon starts within a tier are staggered by a deterministic
          per-name sub-millisecond offset (:func:`_boot_stagger`), which
          breaks same-instant registration ties so the merged trace is
          shard-count invariant;
        * room registration runs inline in this process instead of via
          ``run_process``.

        The whole sequence spans ``2.25 * settle`` plus the staggers, so
        callers should run the simulation at least that far.
        """
        if self._booted:
            raise RuntimeError("environment already booted")
        self._booted = True
        if self.ctx.security.mode is SecurityMode.SSL_KEYNOTE:
            self.trust_all_services()
        for tier in range(_TIER_SERVICE + 1):
            for name, daemon in self.daemons.items():
                if self._tiers[name] == tier:
                    self.sim.process(self._staggered_start(daemon),
                                     name=f"boot:{name}")
            yield self.sim.timeout(settle / 4)
            if tier == _TIER_BOOTSTRAP and self.rooms and "roomdb" in self.daemons:
                yield from self._register_rooms()
        yield self.sim.timeout(settle)
        if self._obs_export and "netlogger" in self.daemons:
            from repro.obs import NetLoggerExporter

            self.exporter = NetLoggerExporter(
                self.ctx, self.daemons["netlogger"].host, **self._obs_export_kwargs
            )
            self.exporter.start()

    def _staggered_start(self, daemon: ACEDaemon) -> Generator:
        yield self.sim.timeout(_boot_stagger(daemon.name))
        daemon.start()

    def _register_rooms(self) -> Generator:
        from repro.lang import ACECmdLine

        client = self.client(self.daemons["roomdb"].host, principal="env-admin")
        for name, building, dims in self.rooms:
            yield from client.call_once(
                self.ctx.roomdb_address,
                ACECmdLine("registerRoom", room=name, building=building,
                           dims=tuple(dims) if any(dims) else (1.0, 1.0, 1.0)),
            )

    def client(self, host: Host, principal: str = "anonymous",
               keypair: Optional[KeyPair] = None) -> ServiceClient:
        return ServiceClient(self.ctx, host, principal=principal, keypair=keypair)

    def authorized_client(self, host: Host, name: str,
                          conditions: str = 'app_domain == "ace"') -> ServiceClient:
        """A client with a fresh keypair that POLICY trusts directly.

        The SSL_KEYNOTE convenience for tools/GUIs: mints a keypair,
        registers the principal, installs a POLICY assertion with the given
        conditions, and returns a signing ServiceClient."""
        keypair = KeyPair.generate(self.rng.py(f"authorized.{name}"))
        self.ctx.security.register_principal(keypair.principal(), keypair.public)
        self.ctx.security.policies.append(
            Assertion("POLICY", f'"{keypair.principal()}"', conditions)
        )
        return ServiceClient(self.ctx, host, principal=keypair.principal(),
                             keypair=keypair)

    def user_client(self, host: Host, identity: UserIdentity) -> ServiceClient:
        return ServiceClient(
            self.ctx, host, principal=identity.principal, keypair=identity.keypair
        )

    def run(self, generator: Generator, timeout: float = 300.0):
        """Run a scenario coroutine to completion; returns its value."""
        return self.sim.run_process(generator, timeout=timeout)

    def run_for(self, seconds: float) -> None:
        self.sim.run(until=self.sim.now + seconds)

    def daemon(self, name: str) -> ACEDaemon:
        return self.daemons[name]

    @property
    def asd_address(self) -> Address:
        assert self.ctx.asd_address is not None
        return self.ctx.asd_address


def _boot_stagger(name: str) -> float:
    """Deterministic sub-millisecond start offset for a daemon name.

    Depends only on the name, never on shard layout, so the offset — and
    therefore same-tier start order — is identical at every shard count.
    The large prime modulus (nanosecond steps below 1 ms) makes two
    daemons colliding on the same offset vanishingly rare, which is what
    keeps registration traffic tie-free.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return (int.from_bytes(digest, "big") % 999983) * 1e-9
