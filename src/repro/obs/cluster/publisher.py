"""Per-host telemetry publisher: delta push + scrape endpoint.

One :class:`TelemetryPublisherDaemon` runs on every host that runs
daemons.  On a jittered interval it captures the host's registered
telemetry scopes, rebases any scope whose incarnation changed (the
restart seam: the shared instruments never reset in-sim, so a fresh
series is current-minus-last-published-of-the-corpse), and pushes the
sparse delta vs the last *acknowledged* state to the aggregator.  The
aggregator replies ``resync=1`` when it cannot apply a delta (it
restarted, or missed pushes across a partition); the publisher then
forgets its ack state and the very next push carries full snapshots —
which bounds the post-failure blind spot to about one push interval.

``obsScrape`` is the pull fallback: it returns full scope snapshots and
is side-effect free, so the aggregator can scrape hosts whose pushes
have gone stale without disturbing the delta stream.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.core.client import CallError, ServiceClient
from repro.core.daemon import ACEDaemon, Request
from repro.core.policy import CallPolicy
from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics
from repro.net import ConnectionClosed, ConnectionRefused
from repro.obs.cluster.merge import (
    MODE_DELTA,
    MODE_FULL,
    MODE_SAME,
    ScopeSnapshot,
    encode_scope,
)

#: push RPC budget: strictly best-effort, never longer than one interval,
#: breaker disabled so telemetry cannot poison the shared breaker table
def _push_policy(interval: float) -> CallPolicy:
    return CallPolicy(
        deadline=max(interval * 0.8, 0.2), attempt_timeout=max(interval * 0.4, 0.1),
        max_attempts=2, backoff_base=0.02, backoff_max=0.1, breaker_threshold=0,
    )


class TelemetryPublisherDaemon(ACEDaemon):
    """Pushes this host's telemetry scopes to the cluster aggregator."""

    service_type = "TelemetryPublisher"

    def __init__(self, ctx, name, host, *, interval: float = 1.0,
                 jitter: float = 0.2, **kwargs):
        kwargs.setdefault("authorize_commands", False)  # infrastructure plane
        super().__init__(ctx, name, host, **kwargs)
        self.interval = interval
        self.jitter = jitter
        self._push_rng = ctx.rng.py(f"telemetry.push.{host.name}")
        self._policy = _push_policy(interval)
        self._client: Optional[ServiceClient] = None
        #: series key -> last snapshot the aggregator acknowledged
        self._acked: Dict[Tuple[str, str, int], ScopeSnapshot] = {}
        #: scope (service, address) -> (incarnation, base, last raw capture)
        self._bases: Dict[Tuple[str, str], Tuple[int, Optional[ScopeSnapshot], ScopeSnapshot]] = {}
        self._seq = 0
        self.pushes = 0
        self.push_failures = 0
        self.resyncs = 0
        ctx.obs.metrics.register_view(f"telemetry.pub.{host.name}", self.stats)

    def stats(self) -> dict:
        return {
            "pushes": self.pushes,
            "push_failures": self.push_failures,
            "resyncs": self.resyncs,
            "seq": self._seq,
        }

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "obsScrape",
            description="pull full telemetry scope snapshots for this host",
        )

    def on_started(self) -> None:
        self._spawn(self._push_loop(), "push")

    def _respawn_kwargs(self) -> dict:
        return {"interval": self.interval, "jitter": self.jitter}

    # ------------------------------------------------------------------
    # Capture (with incarnation rebasing)
    # ------------------------------------------------------------------
    def _capture(self) -> List[ScopeSnapshot]:
        """Freeze every scope on this host, rebased per incarnation."""
        metrics = self.ctx.obs.metrics
        out: List[ScopeSnapshot] = []
        for scope in self.ctx.obs.scopes_on(self.host.name):
            raw = ScopeSnapshot.capture(scope, metrics)
            rec = self._bases.get(scope.key)
            if rec is None:
                base: Optional[ScopeSnapshot] = None
            elif rec[0] != scope.incarnation:
                # Restart seam: freeze the corpse's last published values
                # as the new incarnation's base, so the old series stops
                # here and the new one starts near zero.
                base = rec[2]
            else:
                base = rec[1]
            self._bases[scope.key] = (scope.incarnation, base, raw)
            out.append(raw.rebase(base) if base is not None else raw)
        return out

    def cmd_obsScrape(self, request: Request) -> dict:
        rows: List[str] = []
        for snap in self._capture():
            rows.extend(encode_scope(snap, MODE_FULL))
        if not rows:
            return {"count": 0}
        return {"count": len(rows), "scopes": tuple(rows)}

    # ------------------------------------------------------------------
    # Delta push loop
    # ------------------------------------------------------------------
    def _collect(self) -> Tuple[List[str], Dict[Tuple[str, str, int], ScopeSnapshot]]:
        rows: List[str] = []
        pending: Dict[Tuple[str, str, int], ScopeSnapshot] = {}
        for snap in self._capture():
            prev = self._acked.get(snap.key)
            if prev is None:
                rows.extend(encode_scope(snap, MODE_FULL))
            else:
                delta = snap.diff(prev)
                if delta is None:
                    # Header-only heartbeat keeps the series fresh at the
                    # aggregator without resending unchanged values.
                    rows.append(encode_scope(
                        ScopeSnapshot(snap.service, snap.address, snap.incarnation),
                        MODE_SAME,
                    )[0])
                    continue
                rows.extend(encode_scope(delta, MODE_DELTA))
            pending[snap.key] = snap
        return rows, pending

    def _push_loop(self) -> Generator:
        sim = self.ctx.sim
        while self.running:
            delay = self.interval
            if self.jitter > 0:
                delay *= 1.0 + self.jitter * (self._push_rng.random() - 0.5)
            yield sim.timeout(delay)
            target = self.ctx.telemetry_address
            if target is None or not self.running:
                continue
            rows, pending = self._collect()
            if not rows:
                continue
            if self._client is None:
                self._client = ServiceClient(
                    self.ctx, self.host, principal=self.name
                )
            self._seq += 1
            command = ACECmdLine(
                "obsPush", host=self.host.name, port=self.port,
                seq=self._seq, scopes=tuple(rows),
            )
            try:
                reply = yield from self._client.call_resilient(
                    target, command, policy=self._policy
                )
            except (CallError, ConnectionClosed, ConnectionRefused):
                self.push_failures += 1
                continue
            self.pushes += 1
            if reply.int("resync", 0):
                # The aggregator lost (or never had) our series: forget
                # the ack state so the next push carries full snapshots.
                self._acked.clear()
                self.resyncs += 1
            else:
                self._acked.update(pending)
