"""The cluster telemetry aggregator daemon (E27 tentpole).

An ordinary :class:`~repro.core.daemon.ACEDaemon`: it listens on the
well-known telemetry port, registers with the ASD, and is supervisable by
the PR 6 recovery plane (state is soft — after a restart every publisher
gets ``resync=1`` on its next push and re-sends full snapshots, so the
blind spot is bounded by one push interval).

State is the series map ``(service, address, incarnation) ->
ScopeSnapshot``, fed by ``obsPush`` deltas with an ``obsScrape`` pull
fallback for hosts whose pushes go stale.  On top of it:

* **rollups** — exact cross-daemon histogram merges (identical bounds,
  summed buckets) for cluster p50/p95/p99, with trace-exemplar ids
  surviving the merge so "p99 spiked" links to a concrete span tree;
* **SLO engine** — burn-rate evaluation each tick; alerts are recorded,
  counted, and re-emitted as self-executed ``obsAlert`` commands, so the
  existing notification plane (``addNotification obsAlert ...``) fans
  them out to any listener daemon;
* **obsSummary** — a wire-level operator view (the programmatic one is
  :class:`~repro.obs.cluster.snapshot.ClusterSnapshot`).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.core.client import CallError, ServiceClient
from repro.core.daemon import ACEDaemon, Request
from repro.core.policy import CallPolicy
from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics
from repro.lang.wire import join_wire
from repro.net import Address, ConnectionClosed, ConnectionRefused
from repro.obs.cluster.merge import (
    MODE_DELTA,
    MODE_SAME,
    HistogramData,
    MergeError,
    ScopeSnapshot,
    decode_scopes,
    merge_histograms,
)
from repro.obs.cluster.alerts import alert_to_command
from repro.obs.cluster.slo import SLOEngine, SLOSpec, split_histogram


class TelemetryAggregatorDaemon(ACEDaemon):
    """Collects per-daemon metric scopes into cluster-wide rollups."""

    service_type = "TelemetryAggregator"

    def __init__(self, ctx, name, host, *, interval: float = 1.0,
                 stale_factor: float = 1.5, slos: Tuple[SLOSpec, ...] = (),
                 **kwargs):
        kwargs.setdefault("authorize_commands", False)  # infrastructure plane
        super().__init__(ctx, name, host, **kwargs)
        self.interval = interval
        self.stale_factor = stale_factor
        #: how stale a host's push stream may get before we scrape it
        self.stale_after = stale_factor * interval
        self._slo_specs = tuple(slos)
        self.slo_engine = SLOEngine(self._slo_specs)
        #: (service, address, incarnation) -> latest merged snapshot
        self.series: Dict[Tuple[str, str, int], ScopeSnapshot] = {}
        self.last_seen: Dict[Tuple[str, str, int], float] = {}
        #: publisher host name -> (publisher address, last push seq)
        self.publishers: Dict[str, Address] = {}
        self._pub_seq: Dict[str, int] = {}
        self.last_push: Dict[str, float] = {}
        self.alerts: List[dict] = []
        #: optional in-process callable returning topology facts (shard
        #: map, store groups, supervisors) for ClusterSnapshot
        self.topology_provider = None
        self._scrape_client: Optional[ServiceClient] = None
        metrics = ctx.obs.metrics
        self._m_pushes = metrics.counter("telemetry.pushes")
        self._m_rows = metrics.counter("telemetry.rows")
        self._m_resyncs = metrics.counter("telemetry.resyncs")
        self._m_scrapes = metrics.counter("telemetry.scrapes")
        self._m_alerts = metrics.counter("telemetry.alerts")
        self._m_series = metrics.gauge("telemetry.series")

    def build_semantics(self, sem: CommandSemantics) -> None:
        sem.define(
            "obsPush",
            ArgSpec("host", ArgType.STRING),
            ArgSpec("port", ArgType.INTEGER),
            ArgSpec("seq", ArgType.INTEGER),
            ArgSpec("scopes", ArgType.VECTOR),
            description="delta-encoded metric scope push from a publisher",
        )
        sem.define(
            "obsSummary",
            ArgSpec("topk", ArgType.INTEGER, required=False, default=5),
            description="cluster rollups, SLO burn, and top-k slow ops",
        )
        sem.define(
            "obsAlert",
            ArgSpec("slo", ArgType.STRING),
            ArgSpec("severity", ArgType.STRING),
            ArgSpec("burn_long", ArgType.NUMBER),
            ArgSpec("burn_short", ArgType.NUMBER),
            # E28: escaped kind|objective|long_window|short_window record
            # (repro.obs.cluster.alerts); optional so pre-E28 alert forms
            # still validate and old listeners ignore it.
            ArgSpec("detail", ArgType.STRING, required=False, default=""),
            description="SLO burn-rate alert (watch via addNotification)",
        )

    def on_started(self) -> None:
        self._spawn(self._eval_loop(), "slo")
        self._spawn(self._scrape_loop(), "scrape")

    def _respawn_kwargs(self) -> dict:
        return {
            "interval": self.interval, "stale_factor": self.stale_factor,
            "slos": self._slo_specs,
        }

    # ------------------------------------------------------------------
    # Ingest: push + scrape fallback
    # ------------------------------------------------------------------
    def _apply(self, decoded, now: float) -> int:
        """Apply decoded (mode, snapshot) pairs; returns resync flag."""
        resync = 0
        for mode, snap in decoded:
            if mode == MODE_SAME:
                if snap.key in self.series:
                    self.last_seen[snap.key] = now
                else:
                    resync = 1
                continue
            if mode == MODE_DELTA:
                current = self.series.get(snap.key)
                if current is None:
                    # We never saw this series' base (restart / missed
                    # pushes): ask the publisher to start over with fulls.
                    resync = 1
                    continue
                current.apply(snap)
            else:
                self.series[snap.key] = snap.copy()
            self.last_seen[snap.key] = now
        self._m_series.set(len(self.series))
        return resync

    def cmd_obsPush(self, request: Request) -> dict:
        cmd = request.command
        host, port, seq = cmd.str("host"), cmd.int("port"), cmd.int("seq")
        now = self.ctx.sim.now
        self.publishers[host] = Address(host, port)
        expected = self._pub_seq.get(host)
        if expected is not None and seq <= expected:
            return {"resync": 0, "dup": 1}  # replayed push; already applied
        try:
            decoded = decode_scopes(cmd.get("scopes") or ())
        except (MergeError, ValueError) as exc:
            return {"resync": 1, "error": str(exc)}
        resync = self._apply(decoded, now)
        if expected is not None and seq != expected + 1:
            resync = 1  # gap: deltas were lost in between
        self._pub_seq[host] = seq
        self.last_push[host] = now
        self._m_pushes.inc()
        self._m_rows.inc(len(cmd.get("scopes") or ()))
        if resync:
            self._m_resyncs.inc()
        return {"resync": resync}

    def _scrape_loop(self) -> Generator:
        """Pull fallback: scrape publishers whose push stream went stale."""
        sim = self.ctx.sim
        policy = CallPolicy(
            deadline=self.interval, attempt_timeout=self.interval / 2,
            max_attempts=2, breaker_threshold=0,
        )
        while self.running:
            yield sim.timeout(self.interval)
            stale = [
                host for host, at in self.last_push.items()
                if sim.now - at > self.stale_after
            ]
            for host in stale:
                if not self.running:
                    return
                if self._scrape_client is None:
                    self._scrape_client = ServiceClient(
                        self.ctx, self.host, principal=self.name
                    )
                try:
                    reply = yield from self._scrape_client.call_resilient(
                        self.publishers[host], ACECmdLine("obsScrape"),
                        policy=policy,
                    )
                except (CallError, ConnectionClosed, ConnectionRefused):
                    continue
                rows = reply.get("scopes") or ()
                if rows:
                    try:
                        self._apply(decode_scopes(rows), sim.now)
                    except (MergeError, ValueError):
                        continue
                    self.last_push[host] = sim.now
                    self._m_scrapes.inc()

    # ------------------------------------------------------------------
    # Rollups
    # ------------------------------------------------------------------
    def fresh(self, key: Tuple[str, str, int]) -> bool:
        return (
            self.ctx.sim.now - self.last_seen.get(key, -1e18) <= self.stale_after
        )

    def rollup_histogram(
        self, metric: str, service: str = ""
    ) -> Optional[HistogramData]:
        """Exact cluster-wide merge of ``metric`` over matching series."""
        parts = [
            snap.histograms[metric]
            for key, snap in self.series.items()
            if metric in snap.histograms
            and (not service or key[0] == service
                 or key[0].startswith(service + "."))
        ]
        return merge_histograms(parts)

    def rollup_counter(self, name: str, service: str = "") -> float:
        return sum(
            snap.counters[name]
            for key, snap in self.series.items()
            if name in snap.counters
            and (not service or key[0] == service
                 or key[0].startswith(service + "."))
        )

    def histogram_names(self) -> List[str]:
        names = set()
        for snap in self.series.values():
            names.update(snap.histograms)
        return sorted(names)

    def top_slow(self, metric: str = "service_time_s", k: int = 5) -> List[dict]:
        """Per-service p99 of ``metric``, slowest first, with the exemplar
        trace id from the highest occupied bucket."""
        rows = []
        for key, snap in self.series.items():
            hist = snap.histograms.get(metric)
            if hist is None or hist.count == 0:
                continue
            exemplar = hist.slowest_exemplar()
            rows.append({
                "service": key[0], "address": key[1], "incarnation": key[2],
                "count": hist.count, "p50": hist.percentile(0.50),
                "p99": hist.percentile(0.99), "max": hist.maximum,
                "exemplar": exemplar[0] if exemplar else "",
            })
        rows.sort(key=lambda r: (-r["p99"], -r["max"], r["service"]))
        return rows[:k]

    # ------------------------------------------------------------------
    # SLO evaluation
    # ------------------------------------------------------------------
    def _slo_totals(self, spec: SLOSpec) -> Tuple[float, float]:
        if spec.kind == "availability":
            return (
                self.rollup_counter(spec.good, spec.service),
                self.rollup_counter(spec.bad, spec.service),
            )
        if spec.kind == "rate":
            return 0.0, self.rollup_counter(spec.metric, spec.service)
        merged = self.rollup_histogram(spec.metric, spec.service)
        if merged is None:
            return 0.0, 0.0
        good, bad = split_histogram(merged.bounds, merged.counts, spec.threshold)
        return float(good), float(bad)

    def _eval_loop(self) -> Generator:
        sim = self.ctx.sim
        while self.running:
            yield sim.timeout(self.interval)
            if not self.running:
                return
            alerts = self.slo_engine.evaluate(sim.now, self._slo_totals)
            for alert in alerts:
                self.alerts.append(alert)
                self._m_alerts.inc()
                self.ctx.trace.emit(
                    sim.now, self.name, "slo-alert", slo=alert["slo"],
                    severity=alert["severity"],
                    burn_long=round(alert["burn_long"], 3),
                )
                # Route through the notification plane: executing our own
                # obsAlert fires addNotification watchers on the verb.
                try:
                    yield from self.self_execute(alert_to_command(alert))
                except (CallError, ConnectionClosed, ConnectionRefused):
                    pass

    def cmd_obsAlert(self, request: Request) -> dict:
        # The alert event itself: state lives with the SLO engine; this
        # exists so the command validates, executes, and notifies.
        return {}

    # ------------------------------------------------------------------
    # Operator wire surface
    # ------------------------------------------------------------------
    def cmd_obsSummary(self, request: Request) -> dict:
        k = request.command.int("topk", 5)
        rows = []
        for name in self.histogram_names():
            merged = self.rollup_histogram(name)
            if merged is None or merged.count == 0:
                continue
            rows.append(join_wire((
                "R", name, str(merged.count), repr(merged.mean),
                repr(merged.percentile(0.50)), repr(merged.percentile(0.95)),
                repr(merged.percentile(0.99)),
            )))
        for slo in self.slo_engine.status_rows():
            rows.append(join_wire((
                "O", slo["slo"], repr(slo["burn_long"]), repr(slo["burn_short"]),
                str(int(slo["alerting"])), str(slo["fired"]),
            )))
        for row in self.top_slow(k=k):
            rows.append(join_wire((
                "T", row["service"], row["address"], str(row["incarnation"]),
                repr(row["p99"]), row["exemplar"],
            )))
        out = {"series": len(self.series), "alerts": len(self.alerts)}
        if rows:
            out["rows"] = tuple(rows)
        return out
