"""The ``obsAlert`` wire codec.

E27's alerts carried only ``(slo, severity, burn_long, burn_short)`` on
the wire — enough to page a human, not enough for a controller: telling
a *fast* burn (short windows, act now) from a *slow* one (long windows,
a ticket) needs the spec's kind and window lengths, which never left the
aggregator.  E28 extends the form with one optional ``detail`` argument
— an escaped ``kind|objective|long_window|short_window`` record built
with the house :mod:`repro.lang.wire` helpers — so the extension is
backward-compatible in both directions: pre-E28 alerts decode with the
detail fields absent, and pre-E28 listeners simply ignore the extra
argument.
"""

from __future__ import annotations

from typing import Optional

from repro.lang import ACECmdLine, ACELanguageError, parse_command
from repro.lang.wire import join_wire, split_wire

#: detail-record fields, wire order
ALERT_DETAIL_FIELDS = ("kind", "objective", "long_window", "short_window")


def alert_to_command(alert: dict) -> ACECmdLine:
    """Encode an SLO-engine alert dict as an ``obsAlert`` command."""
    command = ACECmdLine(
        "obsAlert",
        slo=str(alert["slo"]),
        severity=str(alert.get("severity", "page")),
        burn_long=round(float(alert.get("burn_long", 0.0)), 6),
        burn_short=round(float(alert.get("burn_short", 0.0)), 6),
    )
    if any(key in alert for key in ALERT_DETAIL_FIELDS):
        command = command.with_args(detail=join_wire((
            str(alert.get("kind", "")),
            repr(float(alert.get("objective", 0.0))),
            repr(float(alert.get("long_window", 0.0))),
            repr(float(alert.get("short_window", 0.0))),
        )))
    return command


def alert_from_command(command: ACECmdLine) -> dict:
    """Decode an ``obsAlert`` command (old or new form) into a dict."""
    alert = {
        "slo": command.str("slo", ""),
        "severity": command.str("severity", "page"),
        "burn_long": command.float("burn_long", 0.0),
        "burn_short": command.float("burn_short", 0.0),
    }
    detail = command.str("detail", "")
    if detail:
        fields = split_wire(detail)
        if len(fields) == len(ALERT_DETAIL_FIELDS):
            try:
                alert["kind"] = fields[0]
                alert["objective"] = float(fields[1])
                alert["long_window"] = float(fields[2])
                alert["short_window"] = float(fields[3])
            except ValueError:
                alert.pop("kind", None)
                alert.pop("objective", None)
    return alert


def alert_from_payload(payload: str) -> Optional[dict]:
    """Decode a notification callback's forwarded payload (the original
    ``obsAlert`` command text); ``None`` when it is not one."""
    try:
        command = parse_command(payload)
    except ACELanguageError:
        return None
    if command.name != "obsAlert":
        return None
    return alert_from_command(command)


def is_fast_burn(alert: dict, horizon: float) -> bool:
    """A *fast* burn watches short windows: its long window fits inside
    ``horizon`` seconds.  Alerts without window info are never fast —
    a controller should not take emergency action on a legacy alert."""
    long_window = alert.get("long_window")
    return long_window is not None and float(long_window) <= horizon
