"""`repro.obs.cluster` — the E27 cluster telemetry plane.

PR 2 gave every daemon local counters and causal traces; this package is
the layer that can see the *cluster*.  A per-host
:class:`~repro.obs.cluster.publisher.TelemetryPublisherDaemon` captures
the host's :class:`~repro.obs.TelemetryScope` slices of the shared
metrics registry and delta-pushes them (jittered interval, sparse
changed-only rows) to the
:class:`~repro.obs.cluster.aggregator.TelemetryAggregatorDaemon` — an
ordinary ACE daemon, discoverable via the ASD and supervisable via the
PR 6 recovery plane — which keeps per-(service, address, incarnation)
series, merges histograms exactly (identical bucket bounds, summed
counts), evaluates declarative :class:`~repro.obs.cluster.slo.SLOSpec`
objectives with multi-window burn-rate alerting routed through the
notification plane, and serves the whole picture to operators as a
:class:`~repro.obs.cluster.snapshot.ClusterSnapshot`
(``python -m repro.obs.status``).

Everything rides the existing wire protocol (``obsPush``/``obsScrape``/
``obsSummary``/``obsAlert`` commands with :mod:`repro.lang.wire` encoded
rows); with telemetry off nothing here is constructed and the wire is
byte-identical to pre-E27 traffic.
"""

from repro.obs.cluster.alerts import (
    alert_from_command,
    alert_from_payload,
    alert_to_command,
    is_fast_burn,
)
from repro.obs.cluster.merge import (
    HistogramData,
    MergeError,
    ScopeSnapshot,
    decode_scopes,
    encode_scope,
    merge_histograms,
)
from repro.obs.cluster.publisher import TelemetryPublisherDaemon
from repro.obs.cluster.aggregator import TelemetryAggregatorDaemon
from repro.obs.cluster.slo import SLOEngine, SLOSpec, default_slos
from repro.obs.cluster.snapshot import ClusterSnapshot

__all__ = [
    "ClusterSnapshot",
    "HistogramData",
    "MergeError",
    "SLOEngine",
    "SLOSpec",
    "ScopeSnapshot",
    "TelemetryAggregatorDaemon",
    "TelemetryPublisherDaemon",
    "alert_from_command",
    "alert_from_payload",
    "alert_to_command",
    "decode_scopes",
    "default_slos",
    "encode_scope",
    "is_fast_burn",
    "merge_histograms",
]
