"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SLOSpec` names a good/bad event split over the aggregated
cluster series; the :class:`SLOEngine` samples cumulative totals each
evaluation tick and computes the *burn rate* — the observed bad fraction
divided by the error budget ``1 - objective`` — over a long and a short
window (the SRE multi-window pattern: the long window proves the burn is
sustained, the short window proves it is still happening, so alerts are
both fast and flap-resistant).  An alert fires on the closed-to-open
transition when both windows exceed ``burn_threshold``; it clears when
the short window drops back under.

Spec kinds:

* ``availability`` — ``good``/``bad`` are counter names summed over the
  matching series (e.g. RPC ``successes``/``failures``).
* ``latency`` — ``metric`` is a histogram; observations at or under
  ``threshold`` are good, above are bad.  ``threshold`` should sit on a
  bucket bound — bounds are explicit and registry-enforced, so the split
  is exact.  Also covers MTTR budgets (the ``recovery.mttr_ms``
  histogram).
* ``rate`` — ``metric`` is a counter whose per-second rate is budgeted
  at ``threshold``; burn = observed rate / budget (replication-lag
  drops, notification failures, ...).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective over the aggregated cluster series."""

    name: str
    kind: str                      # availability | latency | rate
    objective: float = 0.99        # fraction of events that must be good
    #: series filter: exact service name, or a prefix matching
    #: ``<service>.<anything>`` (e.g. ``store`` matches ``store.ps1``);
    #: empty matches every series
    service: str = ""
    good: str = ""                 # availability: good-event counter
    bad: str = ""                  # availability: bad-event counter
    metric: str = ""               # latency histogram / rate counter
    threshold: float = 0.0         # latency split point / rate budget per s
    long_window: float = 60.0
    short_window: float = 5.0
    burn_threshold: float = 2.0
    severity: str = "page"

    def __post_init__(self):
        if self.kind not in ("availability", "latency", "rate"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.short_window >= self.long_window:
            raise ValueError("short_window must be below long_window")

    def matches(self, service: str) -> bool:
        return (
            not self.service
            or service == self.service
            or service.startswith(self.service + ".")
        )


def split_histogram(bounds: Tuple[float, ...], counts, threshold: float) -> Tuple[int, int]:
    """(good, bad) observation counts at an exact bucket-bound split."""
    idx = bisect_right(bounds, threshold)
    good = sum(counts[:idx])
    return good, sum(counts) - good


@dataclass
class SLOState:
    """Mutable evaluation state for one spec."""

    spec: SLOSpec
    #: (time, good_total, bad_total) cumulative samples, oldest first
    samples: Deque[Tuple[float, float, float]] = field(default_factory=deque)
    alerting: bool = False
    fired: int = 0
    burn_long: float = 0.0
    burn_short: float = 0.0
    last_alert_at: Optional[float] = None

    def _window_burn(self, now: float, window: float) -> float:
        if not self.samples:
            return 0.0
        newest = self.samples[-1]
        anchor = self.samples[0]
        for sample in self.samples:
            if sample[0] <= now - window:
                anchor = sample
            else:
                break
        dgood = newest[1] - anchor[1]
        dbad = newest[2] - anchor[2]
        if self.spec.kind == "rate":
            dt = max(newest[0] - anchor[0], 1e-9)
            return (dbad / dt) / self.spec.threshold if self.spec.threshold else 0.0
        total = dgood + dbad
        if total <= 0:
            return 0.0
        return (dbad / total) / (1.0 - self.spec.objective)

    def observe(self, now: float, good: float, bad: float) -> Optional[dict]:
        """Record a sample; returns an alert dict when one fires."""
        self.samples.append((now, good, bad))
        horizon = now - self.spec.long_window - 1e-9
        while len(self.samples) > 2 and self.samples[1][0] <= horizon:
            self.samples.popleft()
        self.burn_long = self._window_burn(now, self.spec.long_window)
        self.burn_short = self._window_burn(now, self.spec.short_window)
        over = (
            self.burn_long > self.spec.burn_threshold
            and self.burn_short > self.spec.burn_threshold
        )
        if over and not self.alerting:
            self.alerting = True
            self.fired += 1
            self.last_alert_at = now
            return {
                "slo": self.spec.name,
                "severity": self.spec.severity,
                "time": now,
                "burn_long": self.burn_long,
                "burn_short": self.burn_short,
                # E28: the controller-facing fields a listener needs to
                # tell a fast burn from a slow one (they ride the wire in
                # the obsAlert ``detail`` record — repro.obs.cluster.alerts)
                "kind": self.spec.kind,
                "objective": self.spec.objective,
                "long_window": self.spec.long_window,
                "short_window": self.spec.short_window,
            }
        if self.alerting and self.burn_short <= self.spec.burn_threshold:
            self.alerting = False
        return None


class SLOEngine:
    """Evaluates a set of specs against a totals reader each tick."""

    def __init__(self, specs):
        self.states: Dict[str, SLOState] = {}
        for spec in specs:
            if spec.name in self.states:
                raise ValueError(f"duplicate SLO name {spec.name!r}")
            self.states[spec.name] = SLOState(spec)

    @property
    def specs(self) -> List[SLOSpec]:
        return [state.spec for state in self.states.values()]

    def evaluate(
        self, now: float,
        totals: Callable[[SLOSpec], Tuple[float, float]],
    ) -> List[dict]:
        """One tick: sample ``totals(spec) -> (good, bad)`` cumulative
        counts for every spec; returns the alerts that fired."""
        alerts = []
        for state in self.states.values():
            good, bad = totals(state.spec)
            alert = state.observe(now, good, bad)
            if alert is not None:
                alerts.append(alert)
        return alerts

    def status_rows(self) -> List[dict]:
        return [
            {
                "slo": state.spec.name,
                "kind": state.spec.kind,
                "objective": state.spec.objective,
                "burn_long": round(state.burn_long, 3),
                "burn_short": round(state.burn_short, 3),
                "alerting": state.alerting,
                "fired": state.fired,
            }
            for state in self.states.values()
        ]


def default_slos(interval: float = 1.0) -> Tuple[SLOSpec, ...]:
    """The stock objectives ``env.enable_telemetry()`` installs.

    Windows are scaled to the push interval so a sustained gray failure
    trips its alert within two push intervals of the bad counters
    landing at the aggregator (the E27 acceptance bound).
    """
    return (
        SLOSpec(
            "rpc-availability", kind="availability", service="rpc",
            good="successes", bad="failures", objective=0.99,
            long_window=4.0 * interval, short_window=1.0 * interval,
            burn_threshold=5.0,
        ),
        SLOSpec(
            "service-latency", kind="latency", metric="service_time_s",
            objective=0.95, threshold=0.25,
            long_window=8.0 * interval, short_window=2.0 * interval,
            burn_threshold=4.0, severity="ticket",
        ),
        SLOSpec(
            "store-replication", kind="rate", service="store",
            metric="replication_lag_dropped", objective=0.99, threshold=2.0,
            long_window=8.0 * interval, short_window=2.0 * interval,
            burn_threshold=1.0, severity="ticket",
        ),
        SLOSpec(
            "recovery-mttr", kind="latency", service="recovery",
            metric="mttr_ms", objective=0.5, threshold=8000.0,
            long_window=16.0 * interval, short_window=4.0 * interval,
            burn_threshold=1.5, severity="ticket",
        ),
    )
