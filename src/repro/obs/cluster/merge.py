"""Mergeable metric snapshots, delta codec, and exact histogram merging.

The unit of transfer is the *scope snapshot*: every instrument under one
:class:`~repro.obs.TelemetryScope`, captured with values frozen, keyed by
``(service, address, incarnation)``.  Snapshots encode to ``|``-escaped
:mod:`repro.lang.wire` rows carried as a VECTOR argument of the
``obsPush``/``obsScrape`` commands:

* ``S|service|address|incarnation|mode`` — scope header
  (``full``/``delta``/``same``; ``same`` is a header-only heartbeat)
* ``C|name|value`` — counter (absolute value)
* ``G|name|value`` — gauge
* ``H|name|bounds|counts|total|min|max|exemplars`` — histogram with
  explicit bucket bounds, per-bucket counts, and ``idx:trace:value``
  exemplar triples

Delta encoding is *sparse-absolute*: a delta row set carries only the
instruments that changed since the last acknowledged push, each with its
absolute value.  Applying deltas in order over a full snapshot therefore
reproduces the current state exactly — including counter resets, which
are just absolute values lower than before (no increment arithmetic to
get wrong).  Histogram merging requires identical bucket bounds (the
registry enforces them per-name) and is exact: counts add, no
interpolation.
"""

from __future__ import annotations

from math import inf, isinf
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lang.wire import join_wire, split_wire

MODE_FULL = "full"
MODE_DELTA = "delta"
#: header-only heartbeat: "this series is unchanged but still alive", so
#: aggregator freshness tracks publisher liveness, not metric churn
MODE_SAME = "same"


class MergeError(ValueError):
    """Incompatible snapshots (mismatched bucket bounds, bad rows)."""


def _num(value) -> str:
    """Round-trippable numeric text (ints stay ints)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _parse_num(text: str):
    try:
        return int(text)
    except ValueError:
        return float(text)


class HistogramData:
    """A frozen, mergeable histogram value (bounds + counts + extrema)."""

    __slots__ = ("bounds", "counts", "total", "minimum", "maximum", "exemplars")

    def __init__(self, bounds, counts=None, total=0.0, minimum=inf,
                 maximum=-inf, exemplars=None):
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = (
            list(counts) if counts is not None else [0] * (len(self.bounds) + 1)
        )
        if len(self.counts) != len(self.bounds) + 1:
            raise MergeError("histogram counts/bounds length mismatch")
        self.total = float(total)
        self.minimum = minimum
        self.maximum = maximum
        #: bucket index -> (trace_id, value)
        self.exemplars: Dict[int, Tuple[str, float]] = dict(exemplars or {})

    @classmethod
    def from_instrument(cls, hist) -> "HistogramData":
        """Freeze a live :class:`~repro.obs.Histogram`."""
        return cls(
            hist.bounds, list(hist.counts), hist.total, hist.minimum,
            hist.maximum, dict(hist.exemplars) if hist.exemplars else None,
        )

    @property
    def count(self) -> int:
        return sum(self.counts)

    @property
    def mean(self) -> float:
        n = self.count
        return self.total / n if n else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-resolution quantile, same convention as the live
        instrument: the upper bound of the bucket holding the q-th
        observation, the observed max for the overflow bucket."""
        n = self.count
        if n == 0:
            return 0.0
        target = q * n
        running = 0
        for i, c in enumerate(self.counts):
            running += c
            if running >= target:
                return self.bounds[i] if i < len(self.bounds) else self.maximum
        return self.maximum

    def merge(self, other: "HistogramData") -> "HistogramData":
        """Add ``other`` into this histogram (exact; bounds must match)."""
        if other.bounds != self.bounds:
            raise MergeError(
                f"cannot merge histograms with bounds {self.bounds} "
                f"and {other.bounds}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        # Latest write wins per bucket; any exemplar beats none.
        self.exemplars.update(other.exemplars)
        return self

    def subtract_base(self, base: "HistogramData") -> "HistogramData":
        """This histogram minus a frozen base (the incarnation-seam
        rebasing: shared instruments never reset in-sim, so a restarted
        daemon's fresh series is current-minus-base).  Extrema cannot be
        un-observed; they stay as currently observed."""
        if base.bounds != self.bounds:
            raise MergeError("rebase with mismatched bounds")
        counts = [max(c - b, 0) for c, b in zip(self.counts, base.counts)]
        return HistogramData(
            self.bounds, counts, max(self.total - base.total, 0.0),
            self.minimum, self.maximum, dict(self.exemplars),
        )

    def copy(self) -> "HistogramData":
        return HistogramData(
            self.bounds, list(self.counts), self.total, self.minimum,
            self.maximum, dict(self.exemplars),
        )

    def slowest_exemplar(self) -> Optional[Tuple[str, float]]:
        """The exemplar pinned to the highest occupied bucket, if any."""
        for idx in sorted(self.exemplars, reverse=True):
            return self.exemplars[idx]
        return None

    def same_values(self, other: "HistogramData") -> bool:
        return (
            self.bounds == other.bounds
            and self.counts == other.counts
            and self.total == other.total
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, HistogramData)
            and self.same_values(other)
            and self.exemplars == other.exemplars
        )

    def __repr__(self) -> str:
        return f"HistogramData(count={self.count}, total={self.total:.6g})"


def merge_histograms(items: Iterable[HistogramData]) -> Optional[HistogramData]:
    """Exactly merge histograms (same bounds) into one; None when empty."""
    merged: Optional[HistogramData] = None
    for item in items:
        if merged is None:
            merged = item.copy()
        else:
            merged.merge(item)
    return merged


class ScopeSnapshot:
    """Every instrument of one telemetry scope, values frozen, identity
    tagged ``(service, address, incarnation)``."""

    __slots__ = ("service", "address", "incarnation", "counters", "gauges",
                 "histograms")

    def __init__(self, service: str, address: str, incarnation: int,
                 counters=None, gauges=None, histograms=None):
        self.service = service
        self.address = address
        self.incarnation = incarnation
        self.counters: Dict[str, float] = dict(counters or {})
        self.gauges: Dict[str, float] = dict(gauges or {})
        self.histograms: Dict[str, HistogramData] = dict(histograms or {})

    @property
    def key(self) -> Tuple[str, str, int]:
        return (self.service, self.address, self.incarnation)

    @classmethod
    def capture(cls, scope, registry) -> "ScopeSnapshot":
        """Freeze the current values of ``scope`` out of ``registry``."""
        if scope.provider is not None:
            counters, gauges, live = scope.provider()
        else:
            counters, gauges, live = registry.export_scope(scope.prefix)
        return cls(
            scope.service, scope.address, scope.incarnation,
            dict(counters), dict(gauges),
            {name: HistogramData.from_instrument(h) for name, h in live.items()},
        )

    def copy(self) -> "ScopeSnapshot":
        return ScopeSnapshot(
            self.service, self.address, self.incarnation,
            dict(self.counters), dict(self.gauges),
            {name: h.copy() for name, h in self.histograms.items()},
        )

    def rebase(self, base: "ScopeSnapshot") -> "ScopeSnapshot":
        """Subtract a frozen previous-incarnation ``base`` so this series
        starts near zero (gauges are instantaneous — not rebased)."""
        counters = {
            name: value - base.counters.get(name, 0)
            for name, value in self.counters.items()
        }
        histograms = {}
        for name, hist in self.histograms.items():
            old = base.histograms.get(name)
            histograms[name] = (
                hist.subtract_base(old)
                if old is not None and old.bounds == hist.bounds else hist.copy()
            )
        return ScopeSnapshot(
            self.service, self.address, self.incarnation,
            counters, dict(self.gauges), histograms,
        )

    def diff(self, prev: "ScopeSnapshot") -> Optional["ScopeSnapshot"]:
        """Sparse delta vs ``prev``: only changed instruments, absolute
        values.  None when nothing changed."""
        counters = {
            n: v for n, v in self.counters.items() if prev.counters.get(n) != v
        }
        gauges = {
            n: v for n, v in self.gauges.items() if prev.gauges.get(n) != v
        }
        histograms = {}
        for name, hist in self.histograms.items():
            old = prev.histograms.get(name)
            if old is None or not old.same_values(hist) or old.exemplars != hist.exemplars:
                histograms[name] = hist
        if not counters and not gauges and not histograms:
            return None
        return ScopeSnapshot(
            self.service, self.address, self.incarnation,
            counters, gauges, histograms,
        )

    def apply(self, delta: "ScopeSnapshot") -> None:
        """Overwrite with a sparse delta (absolute values, so counter
        resets apply correctly)."""
        self.counters.update(delta.counters)
        self.gauges.update(delta.gauges)
        for name, hist in delta.histograms.items():
            self.histograms[name] = hist.copy()

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ScopeSnapshot)
            and self.key == other.key
            and self.counters == other.counters
            and self.gauges == other.gauges
            and self.histograms == other.histograms
        )

    def __repr__(self) -> str:
        return (
            f"ScopeSnapshot({self.service}@{self.address}#{self.incarnation}: "
            f"{len(self.counters)}c/{len(self.gauges)}g/{len(self.histograms)}h)"
        )


# ---------------------------------------------------------------------------
# Wire codec
# ---------------------------------------------------------------------------
def _hist_to_row(name: str, hist: HistogramData) -> str:
    # ``idx:trace:value`` triples; trace ids are deterministic ``t<n>``
    # tokens but parsing still tolerates embedded ``:`` via split-once /
    # rsplit-once on the numeric ends.
    exemplars = " ".join(
        f"{i}:{trace}:{_num(value)}"
        for i, (trace, value) in sorted(hist.exemplars.items())
    )
    return join_wire((
        "H", name,
        " ".join(_num(b) for b in hist.bounds),
        " ".join(str(c) for c in hist.counts),
        _num(hist.total),
        "" if isinf(hist.minimum) else _num(hist.minimum),
        "" if isinf(hist.maximum) else _num(hist.maximum),
        exemplars,
    ))


def _hist_from_row(fields: List[str]) -> Tuple[str, HistogramData]:
    name, bounds, counts, total, minimum, maximum, exemplars = fields
    ex: Dict[int, Tuple[str, float]] = {}
    if exemplars:
        for triple in exemplars.split(" "):
            idx, rest = triple.split(":", 1)
            trace, value = rest.rsplit(":", 1)
            ex[int(idx)] = (trace, float(_parse_num(value)))
    return name, HistogramData(
        tuple(float(b) for b in bounds.split(" ")) if bounds else (),
        [int(c) for c in counts.split(" ")],
        _parse_num(total),
        inf if minimum == "" else _parse_num(minimum),
        -inf if maximum == "" else _parse_num(maximum),
        ex,
    )


def encode_scope(snap: ScopeSnapshot, mode: str = MODE_FULL) -> List[str]:
    """One scope snapshot as wire rows (header + one row per instrument)."""
    rows = [join_wire(("S", snap.service, snap.address,
                       str(snap.incarnation), mode))]
    for name in sorted(snap.counters):
        rows.append(join_wire(("C", name, _num(snap.counters[name]))))
    for name in sorted(snap.gauges):
        rows.append(join_wire(("G", name, _num(snap.gauges[name]))))
    for name in sorted(snap.histograms):
        rows.append(_hist_to_row(name, snap.histograms[name]))
    return rows


def decode_scopes(rows: Iterable[str]) -> List[Tuple[str, ScopeSnapshot]]:
    """Parse wire rows back into ``[(mode, ScopeSnapshot), ...]``."""
    out: List[Tuple[str, ScopeSnapshot]] = []
    current: Optional[ScopeSnapshot] = None
    for row in rows:
        fields = split_wire(row)
        tag = fields[0]
        if tag == "S":
            if len(fields) != 5:
                raise MergeError(f"malformed scope header ({len(fields)} fields)")
            current = ScopeSnapshot(fields[1], fields[2], int(fields[3]))
            out.append((fields[4], current))
        elif current is None:
            raise MergeError("metric row before scope header")
        elif tag == "C":
            current.counters[fields[1]] = _parse_num(fields[2])
        elif tag == "G":
            current.gauges[fields[1]] = _parse_num(fields[2])
        elif tag == "H":
            name, hist = _hist_from_row(fields[1:])
            current.histograms[name] = hist
        else:
            raise MergeError(f"unknown telemetry row tag {tag!r}")
    return out
