"""`ClusterSnapshot` — the programmatic operator view of a live ACE.

Captured in-process from a
:class:`~repro.obs.cluster.aggregator.TelemetryAggregatorDaemon`, it is
the structured answer to "what is the cluster doing right now": live
daemons with address/incarnation/freshness, per-address breaker states,
exact cross-daemon latency rollups, SLO burn, top-k slow operations with
exemplar trace ids, and the data-plane topology (shard map, store
groups, supervisors) when the environment wired a provider in.

``to_json()`` is the CI artifact; :meth:`tables` renders the same data
as the ``python -m repro.obs.status`` terminal surface.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.metrics import ResultTable

#: numeric breaker-state encoding used by the rpc telemetry scope
BREAKER_LEVELS = {"closed": 0, "half-open": 1, "open": 2}
_BREAKER_NAMES = {v: k for k, v in BREAKER_LEVELS.items()}


class ClusterSnapshot:
    """A frozen, JSON-able view of the aggregated cluster state."""

    def __init__(self, data: dict):
        self.data = data

    @classmethod
    def capture(cls, aggregator, *, topk: int = 5) -> "ClusterSnapshot":
        now = aggregator.ctx.sim.now
        daemons: List[dict] = []
        breakers: Dict[str, str] = {}
        for key in sorted(aggregator.series):
            service, address, incarnation = key
            snap = aggregator.series[key]
            if service == "rpc":
                for name, level in sorted(snap.gauges.items()):
                    if name.startswith("breaker."):
                        breakers[name[len("breaker."):]] = _BREAKER_NAMES.get(
                            int(level), str(level)
                        )
                continue
            commands = sum(
                v for n, v in snap.counters.items() if n.startswith("cmd.")
            )
            service_time = snap.histograms.get("service_time_s")
            daemons.append({
                "service": service,
                "address": address,
                "incarnation": incarnation,
                "fresh": aggregator.fresh(key),
                "age_s": round(now - aggregator.last_seen.get(key, now), 3),
                "queue_depth": snap.gauges.get("queue_depth", 0.0),
                "commands": commands,
                "lease_renewals": snap.counters.get("lease_renewals", 0),
                "p99_s": service_time.percentile(0.99) if service_time else None,
            })
        rollups = {}
        for name in aggregator.histogram_names():
            merged = aggregator.rollup_histogram(name)
            if merged is None or merged.count == 0:
                continue
            exemplar = merged.slowest_exemplar()
            rollups[name] = {
                "count": merged.count,
                "mean": merged.mean,
                "p50": merged.percentile(0.50),
                "p95": merged.percentile(0.95),
                "p99": merged.percentile(0.99),
                "max": merged.maximum,
                "exemplar": exemplar[0] if exemplar else "",
            }
        topology = (
            aggregator.topology_provider()
            if aggregator.topology_provider is not None else {}
        )
        return cls({
            "captured_at": now,
            "series": len(aggregator.series),
            "publishers": {
                host: str(addr) for host, addr in sorted(aggregator.publishers.items())
            },
            "daemons": daemons,
            "breakers": breakers,
            "rollups": rollups,
            "slos": aggregator.slo_engine.status_rows(),
            "alerts": list(aggregator.alerts),
            "top_slow": aggregator.top_slow(k=topk),
            "topology": topology,
        })

    def __getitem__(self, key):
        return self.data[key]

    def get(self, key, default=None):
        return self.data.get(key, default)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.data, indent=indent, sort_keys=True)

    # ------------------------------------------------------------------
    # Terminal rendering (the status CLI surface)
    # ------------------------------------------------------------------
    def tables(self) -> List[ResultTable]:
        out: List[ResultTable] = []

        daemons = ResultTable(
            f"cluster daemons @ t={self.data['captured_at']:.2f}s "
            f"({self.data['series']} series)",
            ["service", "address", "inc", "fresh", "queue", "cmds", "p99_s"],
        )
        for row in self.data["daemons"]:
            daemons.add(
                row["service"], row["address"], row["incarnation"],
                "yes" if row["fresh"] else f"stale {row['age_s']:.1f}s",
                int(row["queue_depth"]), row["commands"],
                f"{row['p99_s']:.4f}" if row["p99_s"] is not None else "-",
            )
        out.append(daemons)

        if self.data["rollups"]:
            rollups = ResultTable(
                "cluster rollups (exact cross-daemon merge)",
                ["metric", "count", "mean", "p50", "p95", "p99", "exemplar"],
            )
            for name, r in sorted(self.data["rollups"].items()):
                rollups.add(
                    name, r["count"], f"{r['mean']:.5f}", f"{r['p50']:.5f}",
                    f"{r['p95']:.5f}", f"{r['p99']:.5f}", r["exemplar"] or "-",
                )
            out.append(rollups)

        slos = ResultTable(
            "SLO burn", ["slo", "kind", "objective", "burn_long",
                         "burn_short", "alerting", "fired"],
        )
        for row in self.data["slos"]:
            slos.add(
                row["slo"], row["kind"], row["objective"], row["burn_long"],
                row["burn_short"], "ALERT" if row["alerting"] else "ok",
                row["fired"],
            )
        out.append(slos)

        if self.data["top_slow"]:
            top = ResultTable(
                "top slow operations (service_time_s p99)",
                ["service", "address", "inc", "p99_s", "trace"],
            )
            for row in self.data["top_slow"]:
                top.add(
                    row["service"], row["address"], row["incarnation"],
                    f"{row['p99']:.4f}", row["exemplar"] or "-",
                )
            out.append(top)

        if self.data["breakers"]:
            breakers = ResultTable("circuit breakers", ["address", "state"])
            for address, state in sorted(self.data["breakers"].items()):
                breakers.add(address, state)
            out.append(breakers)
        return out

    def render(self) -> str:
        return "\n\n".join(table.render() for table in self.tables())
