"""``python -m repro.obs.status`` — live cluster status from the E27
telemetry plane.

Builds a representative environment (infrastructure + replicated store +
echo service), enables supervision and telemetry, drives a short
closed-loop workload, then renders the aggregator's
:class:`~repro.obs.cluster.ClusterSnapshot`: live daemons with
incarnations and freshness, exact cross-daemon latency rollups, SLO
burn, top-k slow operations with exemplar trace ids, breaker states, and
the store topology.  ``--json PATH`` additionally writes the snapshot as
JSON (the CI artifact).

An existing environment can do the same programmatically::

    aggregator = env.enable_telemetry()
    env.run_for(5.0)
    snapshot = ClusterSnapshot.capture(aggregator)
    print(snapshot.render())
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.lang import ACECmdLine, ArgSpec, ArgType, CommandSemantics


def _make_echo_daemon(ctx, name, host, room):
    from repro.core.daemon import ACEDaemon

    class StatusEchoDaemon(ACEDaemon):
        """Minimal demo service the status workload calls."""

        service_type = "Echo"

        def build_semantics(self, sem: CommandSemantics) -> None:
            sem.define("echo", ArgSpec("text", ArgType.STRING))

        def cmd_echo(self, request):
            return {"text": request.command.str("text"), "by": self.name}

    return StatusEchoDaemon(ctx, name, host, room=room)


def build_demo_environment(seed: int = 7, *, interval: float = 1.0,
                           control: bool = False):
    """The demo cluster the CLI (and the CI smoke job) drives."""
    from repro.env import ACEEnvironment

    env = ACEEnvironment(seed=seed, lease_duration=4.0)
    env.add_infrastructure()
    env.add_directory_watcher()
    env.add_persistent_store(replicas=2)
    lab = env.add_workstation("lab1", room="lab", monitors=False)
    env.add_daemon(_make_echo_daemon(env.ctx, "echo", lab, "lab"))
    env.boot()
    env.enable_supervision(
        suspicion_window=3.0, check_interval=0.5, checkpoint_interval=1.0
    )
    env.enable_telemetry(interval=interval)
    if control:
        env.enable_autoscaling(interval=interval, latency_service="echo")
    return env


def render_control(control: dict) -> str:
    """Terminal tables for the E28 controller's :meth:`snapshot`."""
    from repro.metrics import ResultTable

    out = []
    rules = ResultTable(
        f"autoscaler rules (interval={control['interval']:g}s, "
        f"ticks={control['ticks']}, executed={control['executed']})",
        ["rule", "signal", "resource", "band", "bounds", "actions", "cooldown"],
    )
    for row in control["rules"]:
        rules.add(
            row["rule"], row["signal"], row["resource"],
            f"{row['low']:g}..{row['high']:g}",
            f"{row['min']}..{row['max']}", row["actions"],
            f"{row['cooldown_remaining']:g}s",
        )
    out.append(rules.render())

    decisions = ResultTable(
        "recent scaling decisions",
        ["id", "resource", "dir", "level", "at", "status"],
    )
    for d in control["decisions"]:
        decisions.add(
            d["id"], d["resource"], "up" if d["direction"] > 0 else "down",
            f"{d['from_level']}->{d['to_level']}", f"{d['at']:.2f}s",
            d["status"],
        )
    out.append(decisions.render())

    blocked = control["blocked"]
    out.append(
        "blocked: "
        + "  ".join(f"{k}={blocked[k]}" for k in sorted(blocked))
    )
    if control["alerts"]:
        alerts = ResultTable(
            "alerts seen", ["slo", "severity", "kind", "received"]
        )
        for alert in control["alerts"]:
            alerts.add(
                alert.get("slo", "?"), alert.get("severity", "?"),
                alert.get("kind", "-"), f"{alert['received_at']:.2f}s",
            )
        out.append(alerts.render())
    return "\n\n".join(out)


def _echo_workload(env, *, duration: float, n_clients: int) -> None:
    from repro.workloads import closed_loop_clients

    closed_loop_clients(
        env,
        n_clients=n_clients,
        duration=duration,
        target=env.daemons["echo"].address,
        make_command=lambda i, n: ACECmdLine("echo", text=f"status-{i}-{n}"),
        think_time=0.05,
        trace_name="status",
    )
    env.run_for(duration + 2.0)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.status",
        description="render a live ClusterSnapshot from the telemetry plane",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--duration", type=float, default=8.0,
                        help="workload length, sim-seconds")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--interval", type=float, default=1.0,
                        help="telemetry push interval, sim-seconds")
    parser.add_argument("--topk", type=int, default=5)
    parser.add_argument("--control", action="store_true",
                        help="enable the E28 autoscaler and show its rules, "
                             "recent decisions, and cooldown state")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the snapshot as JSON")
    args = parser.parse_args(argv)

    from repro.obs.cluster import ClusterSnapshot

    env = build_demo_environment(args.seed, interval=args.interval,
                                 control=args.control)
    _echo_workload(env, duration=args.duration, n_clients=args.clients)

    snapshot = ClusterSnapshot.capture(env.daemons["telemetry"], topk=args.topk)
    print(snapshot.render())
    if args.control:
        control = env.daemons["autoscaler"].snapshot(topk=args.topk)
        snapshot.data["control"] = control
        print("\n" + render_control(control))
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(snapshot.to_json())
            fh.write("\n")
        print(f"\nsnapshot written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
